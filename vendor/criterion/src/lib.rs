//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the real crate's API that this workspace's
//! benches use — [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measuring mean
//! wall-clock time per iteration with `std::time::Instant`. There is no
//! warm-up, outlier analysis or HTML report; the point is that
//! `cargo bench` compiles and exercises every benched code path and
//! prints a comparable ns/iter figure.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: runs named closures and reports mean time.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
            completed: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.completed == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.completed as f64
        };
        println!(
            "{name:<44} {per_iter:>14.0} ns/iter ({} iterations)",
            bencher.completed
        );
        self
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    completed: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.completed += 1;
            drop(black_box(out));
        }
    }
}

/// Declares a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }
}
