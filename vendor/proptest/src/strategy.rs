//! Input-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a follow-up strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    #[allow(clippy::cast_possible_wrap)]
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy for the whole domain of `T` (the real crate's `any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// Creates the whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+
    };
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )+
    };
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boxed generator function; the element type of [`Union`].
pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Erases a strategy into a boxed generator (used by `prop_oneof!`).
pub fn boxed_gen<S>(strategy: S) -> BoxedGen<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| strategy.generate(rng))
}

/// Uniform choice among same-typed strategies (the `prop_oneof!` macro).
pub struct Union<V> {
    variants: Vec<BoxedGen<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given variants.
    ///
    /// # Panics
    ///
    /// Panics if no variants are given.
    #[must_use]
    pub fn new(variants: Vec<BoxedGen<V>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Self { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.variants.len() as u64) as usize;
        (self.variants[pick])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-2.0f64..5.0).generate(&mut rng);
            assert!((-2.0..5.0).contains(&y));
            let z = (-5i32..-1).generate(&mut rng);
            assert!((-5..-1).contains(&z));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(2);
        let doubled = (1u32..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = dependent.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_draws_every_variant() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![boxed_gen(Just(1u8)), boxed_gen(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
