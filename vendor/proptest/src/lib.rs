//! Minimal offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of the real crate used by this workspace:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with range, tuple, [`strategy::Just`],
//!   [`strategy::any`], `prop_map`, `prop_flat_map` and [`prop_oneof!`],
//! * [`collection::vec`] with `usize` / `Range` / `RangeInclusive` sizes,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//! * [`test_runner::ProptestConfig`].
//!
//! Unlike the real crate there is no shrinking and no persistence file:
//! inputs are drawn from a splitmix64 stream seeded deterministically from
//! the test's module path and name, so failures are reproducible run to
//! run. Assertions panic directly (the enclosing `#[test]` reports them);
//! `prop_assume!` rejects the current case and draws a fresh one.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares a block of property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]` function that evaluates the body over
/// [`test_runner::ProptestConfig::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands the individual test items of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        { $body }
                        Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted > 0,
                "prop_assume! rejected every generated input ({attempts} attempts)"
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Rejects the current generated case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed_gen($strategy) ),+
        ])
    };
}
