//! Test configuration and the deterministic input stream.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` to reject the current case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// A small deterministic generator (splitmix64) for drawing test inputs.
///
/// Every property seeds its own stream from its module path and name, so
/// runs are reproducible and independent of test execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test's fully qualified name
    /// (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(hash)
    }

    /// Next 64 uniformly distributed bits (one splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
