//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::new(5);
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0u8..10, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
        let inclusive = vec(0u8..10, 6..=6);
        assert_eq!(inclusive.generate(&mut rng).len(), 6);
    }
}
