//! Umbrella crate re-exporting the full DSA reproduction stack.
//!
//! See the individual crates for documentation:
//! [`dsa_core`], [`dsa_swarm`], [`dsa_gametheory`], [`dsa_btsim`],
//! [`dsa_stats`], [`dsa_workloads`], [`dsa_gossip`].

pub use dsa_btsim as btsim;
pub use dsa_core as core;
pub use dsa_gametheory as gametheory;
pub use dsa_gossip as gossip;
pub use dsa_stats as stats;
pub use dsa_swarm as swarm;
pub use dsa_workloads as workloads;
