//! Umbrella crate re-exporting the full DSA reproduction stack.
//!
//! See the individual crates for documentation:
//! [`dsa_core`], [`dsa_swarm`], [`dsa_gametheory`], [`dsa_btsim`],
//! [`dsa_stats`], [`dsa_workloads`], [`dsa_gossip`],
//! [`dsa_reputation`], [`dsa_attacks`], [`dsa_evolution`],
//! [`dsa_attribution`].
//!
//! Three DSA domains are provided: file swarming ([`swarm`], the paper's
//! space), gossip dissemination ([`gossip`], §3.1's example) and
//! reputation-mediated sharing ([`reputation`], the §7 "other domains"
//! future work). [`attacks`] layers a cross-domain adversary subsystem
//! over all of them: parameterized attack models (Sybil, collusion,
//! whitewash schedules, adaptive defection) that re-quantify the
//! Robustness axis under a tunable attacker budget. [`evolution`] adds
//! the population-dynamics layer: empirical payoff matrices over mixed
//! multi-protocol populations, ESS/basin analysis and the evolutionary
//! price of anarchy per domain. [`attribution`] closes the loop: every
//! response surface the system can measure (PRA axes, robustness under
//! attack, evolutionary outcomes) it can now *explain*, through
//! per-dimension regressions, effect sizes, interaction maps and a
//! dimension-flip navigator.

pub use dsa_attacks as attacks;
pub use dsa_attribution as attribution;
pub use dsa_btsim as btsim;
pub use dsa_core as core;
pub use dsa_evolution as evolution;
pub use dsa_gametheory as gametheory;
pub use dsa_gossip as gossip;
pub use dsa_reputation as reputation;
pub use dsa_stats as stats;
pub use dsa_swarm as swarm;
pub use dsa_workloads as workloads;
