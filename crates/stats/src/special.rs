//! Special functions: log-gamma, regularized incomplete beta, erf.
//!
//! These are the numerical kernels behind the Student-t distribution used
//! for Table 3's significance tests ("OK if p < 0.001") and the 95%
//! confidence intervals of Figures 9–10. Implementations follow the
//! standard Lanczos (log-gamma) and Lentz continued-fraction (incomplete
//! beta) formulations; accuracy is ~1e-12 over the parameter ranges the
//! workspace uses, verified against known closed-form values in the tests.

/// Natural log of the gamma function for `x > 0` (Lanczos approximation,
/// g = 7, n = 9 coefficients).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g=7, from the canonical Lanczos table.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`, via the Lentz continued fraction.
#[must_use]
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Front factor x^a (1-x)^b / (a B(a,b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_gamma_front(b, a, 1.0 - x) * beta_cf(b, a, 1.0 - x) / b
    }
}

fn ln_gamma_front(a: f64, b: f64, x: f64) -> f64 {
    (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp()
}

/// Modified Lentz evaluation of the incomplete-beta continued fraction.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation refined with one series term; |error| < 1.2e-7, which is
/// ample for the normal-CDF uses in this workspace.
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let cases = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3_628_800.0),
        ];
        for (x, fact) in cases {
            let got: f64 = ln_gamma(x);
            let want = f64::ln(fact);
            assert!((got - want).abs() < 1e-10, "Γ({x}): {got} vs {want}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π).
        let want = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        // Γ(3/2) = sqrt(π)/2.
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a range of x.
        for i in 1..50 {
            let x = i as f64 * 0.37;
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.0, 0.1, 0.5, 0.77, 1.0] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn beta_inc_closed_forms() {
        // I_x(1, b) = 1 - (1-x)^b ; I_x(a, 1) = x^a.
        for x in [0.2, 0.5, 0.9] {
            assert!((beta_inc(1.0, 3.0, x) - (1.0 - (1.0f64 - x).powi(3))).abs() < 1e-10);
            assert!((beta_inc(4.0, 1.0, x) - x.powi(4)).abs() < 1e-10);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for (a, b, x) in [(2.5, 3.5, 0.3), (10.0, 2.0, 0.8), (0.5, 0.5, 0.2)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn beta_inc_monotone_in_x() {
        let mut last = 0.0;
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let v = beta_inc(3.0, 5.0, x);
            assert!(v >= last - 1e-14, "non-monotone at {x}");
            last = v;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_half_symmetric_args() {
        // a = b ⇒ I_{1/2}(a, a) = 1/2.
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((beta_inc(a, a, 0.5) - 0.5).abs() < 1e-10, "a={a}");
        }
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation carries ~1e-7 absolute error.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }
}
