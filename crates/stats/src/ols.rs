//! Ordinary least squares multiple linear regression.
//!
//! Produces exactly what Table 3 of the paper reports for each response
//! (Performance, Robustness, Aggressiveness): per-term coefficient
//! estimates, t-values, a significance flag at the paper's p < 0.001
//! threshold, plus adjusted R² and standard errors.

use crate::dist::student_t_two_sided_p;
use crate::encode::NamedColumn;
use crate::matrix::Matrix;

/// One fitted regression term.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsTerm {
    /// Term name (`"(intercept)"` or the predictor's name).
    pub name: String,
    /// Coefficient estimate.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// t statistic (estimate / std_error).
    pub t_value: f64,
    /// Two-sided p-value against zero.
    pub p_value: f64,
}

impl OlsTerm {
    /// The paper's significance convention: `OK` iff p < 0.001.
    #[must_use]
    pub fn significant(&self) -> bool {
        self.p_value < 0.001
    }
}

/// A fitted OLS model.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Intercept followed by one entry per predictor, in input order.
    pub terms: Vec<OlsTerm>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R² (the figure the paper reports per response).
    pub adj_r_squared: f64,
    /// Residual degrees of freedom (n − p − 1).
    pub df_residual: usize,
    /// Residual standard error.
    pub residual_std_error: f64,
}

/// Errors from [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlsError {
    /// Predictor columns and the response disagree in length.
    LengthMismatch,
    /// Not enough observations for the number of predictors.
    TooFewObservations,
    /// The Gram matrix is singular (e.g. collinear dummies).
    Singular,
}

impl std::fmt::Display for OlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch => write!(f, "predictor/response length mismatch"),
            Self::TooFewObservations => write!(f, "need n > p + 1 observations"),
            Self::Singular => write!(f, "design matrix is singular (collinear predictors?)"),
        }
    }
}

impl std::error::Error for OlsError {}

/// Fits `y ~ 1 + predictors` by ordinary least squares.
///
/// # Errors
///
/// See [`OlsError`].
///
/// # Examples
///
/// ```
/// use dsa_stats::encode::NamedColumn;
/// use dsa_stats::ols::fit;
///
/// // y = 1 + 2x, exactly.
/// let x = NamedColumn::new("x", vec![0.0, 1.0, 2.0, 3.0]);
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = fit(&[x], &y).unwrap();
/// assert!((fit.terms[0].estimate - 1.0).abs() < 1e-10); // intercept
/// assert!((fit.terms[1].estimate - 2.0).abs() < 1e-10); // slope
/// assert!(fit.r_squared > 0.999_999);
/// ```
pub fn fit(predictors: &[NamedColumn], y: &[f64]) -> Result<OlsFit, OlsError> {
    let n = y.len();
    if predictors.iter().any(|c| c.values.len() != n) {
        return Err(OlsError::LengthMismatch);
    }
    let p = predictors.len();
    if n <= p + 1 {
        return Err(OlsError::TooFewObservations);
    }

    // Design matrix with leading intercept column.
    let mut x = Matrix::zeros(n, p + 1);
    for r in 0..n {
        x[(r, 0)] = 1.0;
        for (j, col) in predictors.iter().enumerate() {
            x[(r, j + 1)] = col.values[r];
        }
    }

    let gram = x.gram();
    let xty = x.t_vec_mul(y);
    let gram_inv = gram.inverse_spd().ok_or(OlsError::Singular)?;
    let beta = gram_inv.vec_mul(&xty);

    // Residuals and fit statistics.
    let fitted = x.vec_mul(&beta);
    let y_mean = crate::describe::mean(y);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..n {
        let r = y[i] - fitted[i];
        ss_res += r * r;
        let d = y[i] - y_mean;
        ss_tot += d * d;
    }
    let df_residual = n - (p + 1);
    let sigma2 = ss_res / df_residual as f64;
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        f64::NAN
    };
    let adj_r_squared = if ss_tot > 0.0 {
        1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / df_residual as f64
    } else {
        f64::NAN
    };

    let mut terms = Vec::with_capacity(p + 1);
    for j in 0..=p {
        let se = (sigma2 * gram_inv[(j, j)]).max(0.0).sqrt();
        let t = if se > 0.0 { beta[j] / se } else { f64::NAN };
        let p_value = if t.is_nan() {
            f64::NAN
        } else {
            student_t_two_sided_p(t, df_residual as f64)
        };
        let name = if j == 0 {
            "(intercept)".to_string()
        } else {
            predictors[j - 1].name.clone()
        };
        terms.push(OlsTerm {
            name,
            estimate: beta[j],
            std_error: se,
            t_value: t,
            p_value,
        });
    }

    Ok(OlsFit {
        terms,
        r_squared,
        adj_r_squared,
        df_residual,
        residual_std_error: sigma2.sqrt(),
    })
}

impl OlsFit {
    /// Renders the fit as a Table 3-style text table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("adj.R2 = {:.2}\n", self.adj_r_squared));
        out.push_str(&format!(
            "{:<14} {:>9} {:>9} {:>6}\n",
            "variable", "estimate", "t value", "sign."
        ));
        for t in &self.terms {
            out.push_str(&format!(
                "{:<14} {:>9.3} {:>9.3} {:>6}\n",
                t.name,
                t.estimate,
                t.t_value,
                if t.significant() { "OK" } else { "-" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::NamedColumn;

    fn col(name: &str, v: &[f64]) -> NamedColumn {
        NamedColumn::new(name, v.to_vec())
    }

    #[test]
    fn exact_linear_relationship() {
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let x2 = col("x2", &[0.0, 1.0, 0.0, 1.0, 0.0]);
        // y = 2 + 3 x1 - 1.5 x2
        let y: Vec<f64> = (0..5)
            .map(|i| 2.0 + 3.0 * x1.values[i] - 1.5 * x2.values[i])
            .collect();
        let f = fit(&[x1, x2], &y).unwrap();
        assert!((f.terms[0].estimate - 2.0).abs() < 1e-9);
        assert!((f.terms[1].estimate - 3.0).abs() < 1e-9);
        assert!((f.terms[2].estimate + 1.5).abs() < 1e-9);
        assert!(f.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn noisy_fit_recovers_coefficients() {
        // Deterministic "noise" via a fixed pattern keeps the test stable.
        let n = 200;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let noise: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) / 50.0)
            .collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + 0.5 * x[i] + noise[i]).collect();
        let f = fit(&[col("x", &x)], &y).unwrap();
        assert!((f.terms[1].estimate - 0.5).abs() < 0.01);
        assert!(f.terms[1].significant());
        assert!(f.adj_r_squared > 0.99);
    }

    #[test]
    fn insignificant_predictor_detected() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // y depends on x; z is a pseudo-random irrelevant column.
        let z: Vec<f64> = (0..n).map(|i| ((i * 7919 % 101) as f64) / 101.0).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64 - 8.0) / 4.0).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * x[i] + noise[i]).collect();
        let f = fit(&[col("x", &x), col("z", &z)], &y).unwrap();
        assert!(f.terms[1].significant(), "x should be significant");
        assert!(
            f.terms[2].p_value > 0.001,
            "z p-value {} unexpectedly small",
            f.terms[2].p_value
        );
    }

    #[test]
    fn r_squared_bounds_and_df() {
        let x = col("x", &[1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
        let y = [1.2, 1.9, 3.3, 3.8, 6.5, 8.7];
        let f = fit(&[x], &y).unwrap();
        assert!(f.r_squared > 0.0 && f.r_squared <= 1.0);
        assert!(f.adj_r_squared <= f.r_squared);
        assert_eq!(f.df_residual, 4);
    }

    #[test]
    fn singular_design_detected() {
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0]);
        let x2 = col("x2", &[2.0, 4.0, 6.0, 8.0]); // perfectly collinear
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fit(&[x1, x2], &y), Err(OlsError::Singular));
    }

    #[test]
    fn length_mismatch_detected() {
        let x = col("x", &[1.0, 2.0]);
        let y = [1.0, 2.0, 3.0];
        assert_eq!(fit(&[x], &y), Err(OlsError::LengthMismatch));
    }

    #[test]
    fn too_few_observations_detected() {
        let x = col("x", &[1.0, 2.0]);
        let y = [1.0, 2.0];
        assert_eq!(fit(&[x], &y), Err(OlsError::TooFewObservations));
    }

    #[test]
    fn intercept_only_effects() {
        // With no predictors the intercept is the mean of y.
        let y = [2.0, 4.0, 6.0, 8.0];
        let f = fit(&[], &y).unwrap();
        assert!((f.terms[0].estimate - 5.0).abs() < 1e-12);
        assert_eq!(f.terms.len(), 1);
    }

    #[test]
    fn table_rendering_contains_terms() {
        let x = col("B3", &[0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let y = [0.9, 0.2, 0.8, 0.25, 0.22, 0.85];
        let f = fit(&[x], &y).unwrap();
        let table = f.to_table();
        assert!(table.contains("(intercept)"));
        assert!(table.contains("B3"));
        assert!(table.contains("adj.R2"));
    }
}
