//! Ordinary least squares multiple linear regression.
//!
//! Produces exactly what Table 3 of the paper reports for each response
//! (Performance, Robustness, Aggressiveness): per-term coefficient
//! estimates, t-values, a significance flag at the paper's p < 0.001
//! threshold, plus adjusted R² and standard errors.

use crate::dist::student_t_two_sided_p;
use crate::encode::NamedColumn;
use crate::matrix::Matrix;

/// One fitted regression term.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsTerm {
    /// Term name (`"(intercept)"` or the predictor's name).
    pub name: String,
    /// Coefficient estimate.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// t statistic (estimate / std_error).
    pub t_value: f64,
    /// Two-sided p-value against zero.
    pub p_value: f64,
}

impl OlsTerm {
    /// The paper's significance convention: `OK` iff p < 0.001.
    #[must_use]
    pub fn significant(&self) -> bool {
        self.p_value < 0.001
    }
}

/// A fitted OLS model.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Intercept followed by one entry per predictor, in input order.
    pub terms: Vec<OlsTerm>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R² (the figure the paper reports per response).
    pub adj_r_squared: f64,
    /// Residual degrees of freedom (n − p − 1).
    pub df_residual: usize,
    /// Residual standard error.
    pub residual_std_error: f64,
    /// Residual sum of squares — what nested-model F-tests and partial-η²
    /// effect sizes compare across model specifications.
    pub ss_res: f64,
    /// Total sum of squares about the mean of the response.
    pub ss_tot: f64,
}

/// Errors from [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlsError {
    /// Predictor columns and the response disagree in length.
    LengthMismatch,
    /// Not enough observations for the number of predictors.
    TooFewObservations,
    /// The Gram matrix is singular (e.g. collinear dummies).
    Singular,
}

impl std::fmt::Display for OlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch => write!(f, "predictor/response length mismatch"),
            Self::TooFewObservations => write!(f, "need n > p + 1 observations"),
            Self::Singular => write!(f, "design matrix is singular (collinear predictors?)"),
        }
    }
}

impl std::error::Error for OlsError {}

/// Fits `y ~ 1 + predictors` by ordinary least squares.
///
/// # Errors
///
/// See [`OlsError`].
///
/// # Examples
///
/// ```
/// use dsa_stats::encode::NamedColumn;
/// use dsa_stats::ols::fit;
///
/// // y = 1 + 2x, exactly.
/// let x = NamedColumn::new("x", vec![0.0, 1.0, 2.0, 3.0]);
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = fit(&[x], &y).unwrap();
/// assert!((fit.terms[0].estimate - 1.0).abs() < 1e-10); // intercept
/// assert!((fit.terms[1].estimate - 2.0).abs() < 1e-10); // slope
/// assert!(fit.r_squared > 0.999_999);
/// ```
pub fn fit(predictors: &[NamedColumn], y: &[f64]) -> Result<OlsFit, OlsError> {
    let n = y.len();
    let p = predictors.len();
    let x = design_matrix(predictors, y)?;

    let gram = x.gram();
    let xty = x.t_vec_mul(y);
    let gram_inv = gram.inverse_spd().ok_or(OlsError::Singular)?;
    let beta = gram_inv.vec_mul(&xty);

    // Residuals and fit statistics.
    let (ss_res, ss_tot) = sums_of_squares(&x, &beta, y);
    let df_residual = n - (p + 1);
    let sigma2 = ss_res / df_residual as f64;
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        f64::NAN
    };
    let adj_r_squared = if ss_tot > 0.0 {
        1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / df_residual as f64
    } else {
        f64::NAN
    };

    let mut terms = Vec::with_capacity(p + 1);
    for j in 0..=p {
        let se = (sigma2 * gram_inv[(j, j)]).max(0.0).sqrt();
        let t = if se > 0.0 { beta[j] / se } else { f64::NAN };
        let p_value = if t.is_nan() {
            f64::NAN
        } else {
            student_t_two_sided_p(t, df_residual as f64)
        };
        let name = if j == 0 {
            "(intercept)".to_string()
        } else {
            predictors[j - 1].name.clone()
        };
        terms.push(OlsTerm {
            name,
            estimate: beta[j],
            std_error: se,
            t_value: t,
            p_value,
        });
    }

    Ok(OlsFit {
        terms,
        r_squared,
        adj_r_squared,
        df_residual,
        residual_std_error: sigma2.sqrt(),
        ss_res,
        ss_tot,
    })
}

/// Validates predictor/response shapes and assembles the design matrix
/// with its leading intercept column — the entry shared by [`fit`] and
/// [`residual_ss`], so both agree on every accepted design.
fn design_matrix(predictors: &[NamedColumn], y: &[f64]) -> Result<Matrix, OlsError> {
    let n = y.len();
    if predictors.iter().any(|c| c.values.len() != n) {
        return Err(OlsError::LengthMismatch);
    }
    let p = predictors.len();
    if n <= p + 1 {
        return Err(OlsError::TooFewObservations);
    }
    let mut x = Matrix::zeros(n, p + 1);
    for r in 0..n {
        x[(r, 0)] = 1.0;
        for (j, col) in predictors.iter().enumerate() {
            x[(r, j + 1)] = col.values[r];
        }
    }
    Ok(x)
}

/// Residual and total sums of squares of `y` against the fitted values
/// `X β`.
fn sums_of_squares(x: &Matrix, beta: &[f64], y: &[f64]) -> (f64, f64) {
    let fitted = x.vec_mul(beta);
    let y_mean = crate::describe::mean(y);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (i, &yi) in y.iter().enumerate() {
        let r = yi - fitted[i];
        ss_res += r * r;
        let d = yi - y_mean;
        ss_tot += d * d;
    }
    (ss_res, ss_tot)
}

/// The sums of squares of a fitted (but not fully summarized) model:
/// what [`residual_ss`] returns and nested-model comparisons consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumOfSquares {
    /// Residual sum of squares.
    pub ss_res: f64,
    /// Total sum of squares about the mean.
    pub ss_tot: f64,
    /// Residual degrees of freedom (n − p − 1).
    pub df_residual: usize,
}

impl SumOfSquares {
    /// Coefficient of determination, `NaN` when the response is constant.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        if self.ss_tot > 0.0 {
            1.0 - self.ss_res / self.ss_tot
        } else {
            f64::NAN
        }
    }
}

/// Fits `y ~ 1 + predictors` and returns only the sums of squares — one
/// Cholesky solve, no Gram inversion, no per-term statistics. This is the
/// inner loop of the attribution subsystem's nested-model scans (one
/// reduced refit per design dimension, one augmented refit per dimension
/// pair), where coefficients and standard errors of the auxiliary models
/// are never consulted.
///
/// # Errors
///
/// See [`OlsError`]. Agrees with [`fit`] on `ss_res`/`ss_tot` to
/// numerical precision for every design [`fit`] accepts.
pub fn residual_ss(predictors: &[NamedColumn], y: &[f64]) -> Result<SumOfSquares, OlsError> {
    let x = design_matrix(predictors, y)?;
    let gram = x.gram();
    let xty = x.t_vec_mul(y);
    let beta = gram.solve_spd(&xty).ok_or(OlsError::Singular)?;
    let (ss_res, ss_tot) = sums_of_squares(&x, &beta, y);
    Ok(SumOfSquares {
        ss_res,
        ss_tot,
        df_residual: y.len() - (predictors.len() + 1),
    })
}

/// Nested-model F-test: how much worse the `reduced` model (fewer
/// predictors) fits than the `full` one. Returns `(F, p)` where `F` has
/// `(df_reduced − df_full, df_full)` degrees of freedom.
///
/// # Panics
///
/// Panics when the models are not nested (the reduced model must have
/// strictly more residual degrees of freedom).
#[must_use]
pub fn nested_f_test(full: &SumOfSquares, reduced: &SumOfSquares) -> (f64, f64) {
    assert!(
        reduced.df_residual > full.df_residual,
        "nested_f_test: reduced model must drop at least one predictor"
    );
    let q = (reduced.df_residual - full.df_residual) as f64;
    let df = full.df_residual as f64;
    if full.ss_res <= 0.0 {
        // A saturated full model: any explained difference is infinitely
        // significant, no difference at all is no evidence.
        return if reduced.ss_res > full.ss_res + 1e-12 {
            (f64::INFINITY, 0.0)
        } else {
            (0.0, 1.0)
        };
    }
    let f = ((reduced.ss_res - full.ss_res) / q) / (full.ss_res / df);
    let f = f.max(0.0);
    (f, crate::dist::f_upper_p(f, q, df))
}

/// Partial η² of the predictor block distinguishing a `full` model from
/// the `reduced` one that omits it: `(SSE_reduced − SSE_full) /
/// SSE_reduced`, the share of the reduced model's unexplained variance the
/// block accounts for. Always in `[0, 1]`.
#[must_use]
pub fn partial_eta_squared(full: &SumOfSquares, reduced: &SumOfSquares) -> f64 {
    if reduced.ss_res <= 0.0 {
        return 0.0;
    }
    ((reduced.ss_res - full.ss_res) / reduced.ss_res).clamp(0.0, 1.0)
}

impl OlsFit {
    /// Renders the fit as a Table 3-style text table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("adj.R2 = {:.2}\n", self.adj_r_squared));
        out.push_str(&format!(
            "{:<14} {:>9} {:>9} {:>6}\n",
            "variable", "estimate", "t value", "sign."
        ));
        for t in &self.terms {
            out.push_str(&format!(
                "{:<14} {:>9.3} {:>9.3} {:>6}\n",
                t.name,
                t.estimate,
                t.t_value,
                if t.significant() { "OK" } else { "-" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::NamedColumn;

    fn col(name: &str, v: &[f64]) -> NamedColumn {
        NamedColumn::new(name, v.to_vec())
    }

    #[test]
    fn exact_linear_relationship() {
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let x2 = col("x2", &[0.0, 1.0, 0.0, 1.0, 0.0]);
        // y = 2 + 3 x1 - 1.5 x2
        let y: Vec<f64> = (0..5)
            .map(|i| 2.0 + 3.0 * x1.values[i] - 1.5 * x2.values[i])
            .collect();
        let f = fit(&[x1, x2], &y).unwrap();
        assert!((f.terms[0].estimate - 2.0).abs() < 1e-9);
        assert!((f.terms[1].estimate - 3.0).abs() < 1e-9);
        assert!((f.terms[2].estimate + 1.5).abs() < 1e-9);
        assert!(f.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn noisy_fit_recovers_coefficients() {
        // Deterministic "noise" via a fixed pattern keeps the test stable.
        let n = 200;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let noise: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) / 50.0)
            .collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + 0.5 * x[i] + noise[i]).collect();
        let f = fit(&[col("x", &x)], &y).unwrap();
        assert!((f.terms[1].estimate - 0.5).abs() < 0.01);
        assert!(f.terms[1].significant());
        assert!(f.adj_r_squared > 0.99);
    }

    #[test]
    fn insignificant_predictor_detected() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // y depends on x; z is a pseudo-random irrelevant column.
        let z: Vec<f64> = (0..n).map(|i| ((i * 7919 % 101) as f64) / 101.0).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64 - 8.0) / 4.0).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * x[i] + noise[i]).collect();
        let f = fit(&[col("x", &x), col("z", &z)], &y).unwrap();
        assert!(f.terms[1].significant(), "x should be significant");
        assert!(
            f.terms[2].p_value > 0.001,
            "z p-value {} unexpectedly small",
            f.terms[2].p_value
        );
    }

    #[test]
    fn r_squared_bounds_and_df() {
        let x = col("x", &[1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
        let y = [1.2, 1.9, 3.3, 3.8, 6.5, 8.7];
        let f = fit(&[x], &y).unwrap();
        assert!(f.r_squared > 0.0 && f.r_squared <= 1.0);
        assert!(f.adj_r_squared <= f.r_squared);
        assert_eq!(f.df_residual, 4);
    }

    #[test]
    fn singular_design_detected() {
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0]);
        let x2 = col("x2", &[2.0, 4.0, 6.0, 8.0]); // perfectly collinear
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fit(&[x1, x2], &y), Err(OlsError::Singular));
    }

    #[test]
    fn length_mismatch_detected() {
        let x = col("x", &[1.0, 2.0]);
        let y = [1.0, 2.0, 3.0];
        assert_eq!(fit(&[x], &y), Err(OlsError::LengthMismatch));
    }

    #[test]
    fn too_few_observations_detected() {
        let x = col("x", &[1.0, 2.0]);
        let y = [1.0, 2.0];
        assert_eq!(fit(&[x], &y), Err(OlsError::TooFewObservations));
    }

    #[test]
    fn intercept_only_effects() {
        // With no predictors the intercept is the mean of y.
        let y = [2.0, 4.0, 6.0, 8.0];
        let f = fit(&[], &y).unwrap();
        assert!((f.terms[0].estimate - 5.0).abs() < 1e-12);
        assert_eq!(f.terms.len(), 1);
    }

    #[test]
    fn residual_ss_agrees_with_full_fit() {
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 2.5]);
        let x2 = col("x2", &[0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        let y = [1.2, 2.4, 3.3, 4.1, 6.5, 8.7, 2.9];
        let full = fit(&[x1.clone(), x2.clone()], &y).unwrap();
        let ss = residual_ss(&[x1, x2], &y).unwrap();
        assert!((full.ss_res - ss.ss_res).abs() < 1e-9);
        assert!((full.ss_tot - ss.ss_tot).abs() < 1e-9);
        assert_eq!(full.df_residual, ss.df_residual);
        assert!((full.r_squared - ss.r_squared()).abs() < 1e-12);
    }

    #[test]
    fn residual_ss_propagates_errors() {
        let x = col("x", &[1.0, 2.0]);
        assert_eq!(
            residual_ss(std::slice::from_ref(&x), &[1.0, 2.0, 3.0]),
            Err(OlsError::LengthMismatch)
        );
        assert_eq!(
            residual_ss(&[x], &[1.0, 2.0]),
            Err(OlsError::TooFewObservations)
        );
        let x1 = col("x1", &[1.0, 2.0, 3.0, 4.0]);
        let x2 = col("x2", &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(
            residual_ss(&[x1, x2], &[1.0, 2.0, 3.0, 4.0]),
            Err(OlsError::Singular)
        );
    }

    #[test]
    fn nested_f_detects_a_real_predictor() {
        // y depends strongly on x; dropping x must be highly significant,
        // dropping an irrelevant z must not.
        let n = 60;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i * 7919 % 101) as f64) / 101.0).collect();
        let noise: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) / 40.0)
            .collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + 2.0 * x[i] + noise[i]).collect();
        let full = residual_ss(&[col("x", &x), col("z", &z)], &y).unwrap();
        let no_x = residual_ss(&[col("z", &z)], &y).unwrap();
        let no_z = residual_ss(&[col("x", &x)], &y).unwrap();
        let (f_x, p_x) = nested_f_test(&full, &no_x);
        let (f_z, p_z) = nested_f_test(&full, &no_z);
        assert!(f_x > 100.0, "F for x = {f_x}");
        assert!(p_x < 1e-6);
        assert!(p_z > 0.01, "p for z = {p_z}");
        assert!(f_z < f_x);
        // Effect sizes: x explains nearly everything z leaves over.
        assert!(partial_eta_squared(&full, &no_x) > 0.9);
        assert!(partial_eta_squared(&full, &no_z) < 0.2);
    }

    #[test]
    fn partial_eta_squared_is_bounded() {
        let full = SumOfSquares {
            ss_res: 1.0,
            ss_tot: 10.0,
            df_residual: 5,
        };
        let reduced = SumOfSquares {
            ss_res: 4.0,
            ss_tot: 10.0,
            df_residual: 7,
        };
        let eta = partial_eta_squared(&full, &reduced);
        assert!((eta - 0.75).abs() < 1e-12);
        // Degenerate reduced model.
        let zero = SumOfSquares {
            ss_res: 0.0,
            ss_tot: 10.0,
            df_residual: 7,
        };
        assert_eq!(partial_eta_squared(&full, &zero), 0.0);
    }

    #[test]
    fn nested_f_saturated_full_model() {
        let full = SumOfSquares {
            ss_res: 0.0,
            ss_tot: 10.0,
            df_residual: 3,
        };
        let worse = SumOfSquares {
            ss_res: 2.0,
            ss_tot: 10.0,
            df_residual: 5,
        };
        let same = SumOfSquares {
            ss_res: 0.0,
            ss_tot: 10.0,
            df_residual: 5,
        };
        assert_eq!(nested_f_test(&full, &worse), (f64::INFINITY, 0.0));
        assert_eq!(nested_f_test(&full, &same), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "nested_f_test")]
    fn nested_f_rejects_non_nested_models() {
        let a = SumOfSquares {
            ss_res: 1.0,
            ss_tot: 2.0,
            df_residual: 5,
        };
        let _ = nested_f_test(&a, &a);
    }

    #[test]
    fn table_rendering_contains_terms() {
        let x = col("B3", &[0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let y = [0.9, 0.2, 0.8, 0.25, 0.22, 0.85];
        let f = fit(&[x], &y).unwrap();
        let table = f.to_table();
        assert!(table.contains("(intercept)"));
        assert!(table.contains("B3"));
        assert!(table.contains("adj.R2"));
    }
}
