//! Design-matrix encoding: dummy variables and standardization.
//!
//! Table 3 regresses the PRA measures on the design dimensions: numerical
//! `h` and `k` enter as standardized logs (the paper's `log(h̃)`,
//! `log(k̃)`), while the categorical policies (stranger B, candidate C,
//! ranking I, allocation R) are "substituted by dummy variables" with the
//! first actualization as the baseline (the table has no B1/C1/I1/R1 rows).

/// Z-score standardization: `(x − mean) / std`, using the sample standard
/// deviation. If the spread is zero the column is returned as all zeros.
#[must_use]
pub fn standardize(xs: &[f64]) -> Vec<f64> {
    let m = crate::describe::mean(xs);
    let s = crate::describe::std_dev(xs);
    if s.is_nan() || s <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// The paper's `log(x̃)` transform for the slot counts `h` and `k`:
/// `log(x + 1)` (the space legitimately contains h = 0 and k = 0
/// protocols), then z-scored.
#[must_use]
pub fn log1p_standardized(xs: &[f64]) -> Vec<f64> {
    let logged: Vec<f64> = xs.iter().map(|x| (x + 1.0).ln()).collect();
    standardize(&logged)
}

/// Dummy coding for a categorical column with `levels` levels.
///
/// Returns `levels − 1` indicator columns; level 0 is the baseline and has
/// no column (all its indicators are zero). Column `j` is the indicator for
/// level `j + 1`.
///
/// # Panics
///
/// Panics if `levels < 1` or any observation is out of range.
#[must_use]
pub fn dummy_code(values: &[usize], levels: usize) -> Vec<Vec<f64>> {
    assert!(levels >= 1, "dummy_code: need at least one level");
    let mut cols = vec![vec![0.0; values.len()]; levels - 1];
    for (row, &v) in values.iter().enumerate() {
        assert!(v < levels, "dummy_code: value {v} out of {levels} levels");
        if v > 0 {
            cols[v - 1][row] = 1.0;
        }
    }
    cols
}

/// A named column for assembling regression design matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedColumn {
    /// Column label, e.g. `"log(k~)"` or `"B3"`.
    pub name: String,
    /// Column values, one per observation.
    pub values: Vec<f64>,
}

impl NamedColumn {
    /// Creates a named column.
    #[must_use]
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }
}

/// Builds named dummy columns for a categorical variable.
///
/// `level_names` must contain one name per level; the first level is the
/// baseline and gets no column.
///
/// # Panics
///
/// Panics if `level_names` is empty or observations are out of range.
#[must_use]
pub fn dummy_columns(values: &[usize], level_names: &[&str]) -> Vec<NamedColumn> {
    let cols = dummy_code(values, level_names.len());
    cols.into_iter()
        .enumerate()
        .map(|(j, col)| NamedColumn::new(level_names[j + 1], col))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardize_has_zero_mean_unit_sd() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let z = standardize(&xs);
        let m = crate::describe::mean(&z);
        let s = crate::describe::std_dev(&z);
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column_is_zero() {
        assert_eq!(standardize(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn log1p_standardized_handles_zero() {
        let xs = [0.0, 1.0, 3.0, 9.0];
        let z = log1p_standardized(&xs);
        assert_eq!(z.len(), 4);
        assert!(z.iter().all(|v| v.is_finite()));
        // Monotone in the input.
        assert!(z.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dummy_code_baseline_is_all_zero() {
        let values = [0usize, 1, 2, 0, 2];
        let cols = dummy_code(&values, 3);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], vec![0.0, 1.0, 0.0, 0.0, 0.0]); // level 1
        assert_eq!(cols[1], vec![0.0, 0.0, 1.0, 0.0, 1.0]); // level 2
    }

    #[test]
    fn dummy_code_single_level_yields_no_columns() {
        let cols = dummy_code(&[0, 0, 0], 1);
        assert!(cols.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn dummy_code_rejects_out_of_range() {
        let _ = dummy_code(&[3], 3);
    }

    #[test]
    fn dummy_columns_are_named_after_non_baseline_levels() {
        let values = [0usize, 1, 2];
        let cols = dummy_columns(&values, &["B1", "B2", "B3"]);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].name, "B2");
        assert_eq!(cols[1].name, "B3");
        assert_eq!(cols[1].values, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn each_row_has_at_most_one_indicator_set() {
        let values = [2usize, 1, 0, 2, 1, 1];
        let cols = dummy_code(&values, 3);
        for row in 0..values.len() {
            let set: f64 = cols.iter().map(|c| c[row]).sum();
            assert!(set <= 1.0);
            assert_eq!(set == 0.0, values[row] == 0);
        }
    }
}
