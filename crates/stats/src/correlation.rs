//! Correlation coefficients.
//!
//! The paper uses Pearson's r three times: Figure 8 (robustness vs
//! aggressiveness, r ≈ 0.96), the 50/50-vs-90/10 robustness validation
//! (r ≈ 0.97, §4.3.2), and implicitly in the Figure 2 discussion. Spearman's
//! rank correlation is provided as a robustness check on those claims (an
//! extension beyond the paper).

use crate::describe::mean;

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `NaN` if either sample has zero variance or fewer than two
/// observations.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson on the rank-transformed samples,
/// with average ranks for ties.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties sharing the mean of their positions.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        // Hand-checked small sample.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&xs, &ys);
        assert!((r - 0.8).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn zero_variance_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn pearson_is_symmetric_and_shift_invariant() {
        let xs = [0.3, 1.7, 2.9, 0.1, 4.4];
        let ys = [1.1, 0.2, 3.3, 2.4, 3.9];
        let r = pearson(&xs, &ys);
        assert!((pearson(&ys, &xs) - r).abs() < 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| 10.0 + 3.0 * x).collect();
        assert!((pearson(&shifted, &ys) - r).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
        assert_eq!(ranks(&[]), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
