//! Fixed-bin histograms, 1-D and 2-D.
//!
//! Figure 2's margins are 1-D histograms of performance and robustness;
//! Figures 3 and 4 are 2-D frequency maps ("darker squares represent high
//! 'partner value' frequency for a particular Performance interval"), i.e.
//! a histogram over (partner count, measure interval) normalized per
//! measure row.

/// A 1-D histogram over `[lo, hi)` with equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations outside `[lo, hi)` (hi itself is folded into the last
    /// bin so a [0,1] measure with value exactly 1.0 is not "out of range").
    out_of_range: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram needs hi > lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            out_of_range: 0,
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        match self.bin_of(x) {
            Some(b) => self.counts[b] += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// The bin index for a value, or `None` if out of range. The upper
    /// boundary `hi` maps to the last bin.
    #[must_use]
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.lo || x > self.hi {
            return None;
        }
        if x == self.hi {
            return Some(self.counts.len() - 1);
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        Some(((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1))
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the range.
    #[must_use]
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Total in-range observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` edges of bin `b`.
    #[must_use]
    pub fn bin_edges(&self, b: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + b as f64 * w, self.lo + (b + 1) as f64 * w)
    }

    /// Relative frequencies (empty histogram yields zeros).
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// A 2-D histogram: categorical x-axis (e.g. partner count 0..=9) against a
/// binned continuous y-axis (e.g. performance in [0,1]).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram2d {
    categories: usize,
    y_lo: f64,
    y_hi: f64,
    y_bins: usize,
    /// counts[y_bin][category]
    counts: Vec<Vec<u64>>,
}

impl Histogram2d {
    /// Creates an empty 2-D histogram.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty.
    #[must_use]
    pub fn new(categories: usize, y_lo: f64, y_hi: f64, y_bins: usize) -> Self {
        assert!(categories > 0 && y_bins > 0, "empty histogram2d");
        assert!(y_hi > y_lo);
        Self {
            categories,
            y_lo,
            y_hi,
            y_bins,
            counts: vec![vec![0; categories]; y_bins],
        }
    }

    /// Adds an observation with category `cat` and value `y`.
    /// Silently ignores out-of-range observations.
    pub fn add(&mut self, cat: usize, y: f64) {
        if cat >= self.categories || y.is_nan() || y < self.y_lo || y > self.y_hi {
            return;
        }
        let frac = (y - self.y_lo) / (self.y_hi - self.y_lo);
        let b = ((frac * self.y_bins as f64) as usize).min(self.y_bins - 1);
        self.counts[b][cat] += 1;
    }

    /// Raw counts, indexed `[y_bin][category]`. Row 0 is the lowest y bin.
    #[must_use]
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Per-row relative frequencies — the paper's Figures 3–4 shading:
    /// within each measure interval (row), how often each partner count
    /// appears. Rows with no observations are all zero.
    #[must_use]
    pub fn row_frequencies(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                if total == 0 {
                    vec![0.0; self.categories]
                } else {
                    row.iter().map(|&c| c as f64 / total as f64).collect()
                }
            })
            .collect()
    }

    /// The `(lo, hi)` edges of y bin `b`.
    #[must_use]
    pub fn y_edges(&self, b: usize) -> (f64, f64) {
        let w = (self.y_hi - self.y_lo) / self.y_bins as f64;
        (self.y_lo + b as f64 * w, self.y_lo + (b + 1) as f64 * w)
    }

    /// Number of categories (x-axis).
    #[must_use]
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Number of y bins.
    #[must_use]
    pub fn y_bins(&self) -> usize {
        self.y_bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_values() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend(&[0.05, 0.15, 0.15, 0.95, 1.0]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 0.95 and the folded 1.0
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), 0);
    }

    #[test]
    fn histogram_out_of_range_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.1);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.out_of_range(), 3);
    }

    #[test]
    fn histogram_edges() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_edges(3), (0.75, 1.0));
    }

    #[test]
    fn histogram_frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[1.0, 3.0, 5.0, 7.0, 9.0, 9.5]);
        let f = h.frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_frequencies_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram2d_rows_and_categories() {
        let mut h = Histogram2d::new(10, 0.0, 1.0, 10);
        // Three protocols with 1 partner performing ~0.95; one with 9
        // partners performing ~0.15.
        h.add(1, 0.95);
        h.add(1, 0.96);
        h.add(1, 0.94);
        h.add(9, 0.15);
        let rows = h.row_frequencies();
        assert_eq!(rows[9][1], 1.0); // top row dominated by 1-partner
        assert_eq!(rows[1][9], 1.0);
        assert_eq!(rows[5], vec![0.0; 10]); // untouched row
    }

    #[test]
    fn histogram2d_ignores_out_of_range() {
        let mut h = Histogram2d::new(3, 0.0, 1.0, 2);
        h.add(5, 0.5); // bad category
        h.add(1, 2.0); // bad value
        h.add(1, f64::NAN);
        assert!(h.counts().iter().flatten().all(|&c| c == 0));
    }

    #[test]
    fn histogram2d_upper_edge_folds() {
        let mut h = Histogram2d::new(2, 0.0, 1.0, 4);
        h.add(0, 1.0);
        assert_eq!(h.counts()[3][0], 1);
    }

    #[test]
    fn histogram2d_edges() {
        let h = Histogram2d::new(2, 0.0, 1.0, 4);
        assert_eq!(h.y_edges(0), (0.0, 0.25));
        assert_eq!(h.y_edges(3), (0.75, 1.0));
        assert_eq!(h.categories(), 2);
        assert_eq!(h.y_bins(), 4);
    }
}
