//! 3-D convex hull volume, for summarizing the *shape* of a PRA point
//! cloud (the cross-domain cube comparison).
//!
//! Incremental ("beneath-beyond") construction: seed a non-degenerate
//! tetrahedron from extreme points, then insert the remaining points one
//! by one, replacing the faces each point can see with a fan over its
//! horizon. The volume follows from the divergence theorem over the
//! outward-oriented faces. Points are expected in a unit-scale box (the
//! PRA cube is `[0,1]³`); the degeneracy epsilon is absolute.

type P3 = [f64; 3];

const EPS: f64 = 1e-9;

fn sub(a: P3, b: P3) -> P3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: P3, b: P3) -> P3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: P3, b: P3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn norm2(a: P3) -> f64 {
    dot(a, a)
}

/// Signed distance-like quantity of `p` against the plane of face
/// `(a, b, c)` (positive on the side the face normal points to).
fn orient(a: P3, b: P3, c: P3, p: P3) -> f64 {
    dot(cross(sub(b, a), sub(c, a)), sub(p, a))
}

/// Volume of the convex hull of `points`.
///
/// Degenerate inputs — fewer than four points, or all points (nearly)
/// coincident, collinear or coplanar — have zero volume and return 0.
/// Non-finite coordinates are ignored.
#[must_use]
pub fn convex_hull_volume(points: &[P3]) -> f64 {
    let pts: Vec<P3> = points
        .iter()
        .copied()
        .filter(|p| p.iter().all(|c| c.is_finite()))
        .collect();
    if pts.len() < 4 {
        return 0.0;
    }

    // Seed tetrahedron from extremes: i0 arbitrary, i1 farthest from i0,
    // i2 maximizing triangle area, i3 maximizing tetrahedron height.
    let i0 = 0;
    let Some(i1) = (0..pts.len())
        .max_by(|&a, &b| norm2(sub(pts[a], pts[i0])).total_cmp(&norm2(sub(pts[b], pts[i0]))))
    else {
        return 0.0;
    };
    if norm2(sub(pts[i1], pts[i0])) < EPS * EPS {
        return 0.0; // All points coincide.
    }
    let Some(i2) = (0..pts.len()).max_by(|&a, &b| {
        norm2(cross(sub(pts[i1], pts[i0]), sub(pts[a], pts[i0])))
            .total_cmp(&norm2(cross(sub(pts[i1], pts[i0]), sub(pts[b], pts[i0]))))
    }) else {
        return 0.0;
    };
    if norm2(cross(sub(pts[i1], pts[i0]), sub(pts[i2], pts[i0]))) < EPS * EPS {
        return 0.0; // All points collinear.
    }
    let Some(i3) = (0..pts.len()).max_by(|&a, &b| {
        orient(pts[i0], pts[i1], pts[i2], pts[a])
            .abs()
            .total_cmp(&orient(pts[i0], pts[i1], pts[i2], pts[b]).abs())
    }) else {
        return 0.0;
    };
    if orient(pts[i0], pts[i1], pts[i2], pts[i3]).abs() < EPS {
        return 0.0; // All points coplanar.
    }

    // Orient the four seed faces outward (each away from the opposite
    // vertex).
    let mut faces: Vec<[usize; 3]> = Vec::new();
    for (face, opposite) in [
        ([i0, i1, i2], i3),
        ([i0, i1, i3], i2),
        ([i0, i2, i3], i1),
        ([i1, i2, i3], i0),
    ] {
        let [a, b, c] = face;
        if orient(pts[a], pts[b], pts[c], pts[opposite]) > 0.0 {
            faces.push([a, c, b]);
        } else {
            faces.push([a, b, c]);
        }
    }

    // Insert the remaining points.
    for p in 0..pts.len() {
        if p == i0 || p == i1 || p == i2 || p == i3 {
            continue;
        }
        let visible: Vec<usize> = (0..faces.len())
            .filter(|&f| {
                let [a, b, c] = faces[f];
                orient(pts[a], pts[b], pts[c], pts[p]) > EPS
            })
            .collect();
        if visible.is_empty() {
            continue; // Inside (or on) the current hull.
        }
        // Horizon: directed edges of visible faces whose reverse edge is
        // not an edge of another visible face.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for &f in &visible {
            let [a, b, c] = faces[f];
            edges.extend([(a, b), (b, c), (c, a)]);
        }
        let horizon: Vec<(usize, usize)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| !edges.contains(&(v, u)))
            .collect();
        // Replace visible faces with the fan from the horizon to p.
        let visible_set: Vec<[usize; 3]> = visible.iter().map(|&f| faces[f]).collect();
        faces.retain(|f| !visible_set.contains(f));
        for (u, v) in horizon {
            faces.push([u, v, p]);
        }
    }

    // Divergence theorem: the sum of signed tetrahedron volumes against
    // the origin over an outward-oriented closed surface is the enclosed
    // volume.
    let volume: f64 = faces
        .iter()
        .map(|&[a, b, c]| dot(pts[a], cross(pts[b], pts[c])) / 6.0)
        .sum();
    volume.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_corners() -> Vec<P3> {
        (0..8)
            .map(|i| {
                [
                    f64::from(i & 1),
                    f64::from((i >> 1) & 1),
                    f64::from((i >> 2) & 1),
                ]
            })
            .collect()
    }

    #[test]
    fn unit_cube_has_volume_one() {
        assert!((convex_hull_volume(&cube_corners()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interior_points_do_not_change_the_hull() {
        let mut pts = cube_corners();
        pts.push([0.5, 0.5, 0.5]);
        pts.push([0.25, 0.75, 0.5]);
        assert!((convex_hull_volume(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unit_tetrahedron_is_one_sixth() {
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        assert!((convex_hull_volume(&pts) - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_clouds_have_zero_volume() {
        assert_eq!(convex_hull_volume(&[]), 0.0);
        assert_eq!(convex_hull_volume(&[[0.1, 0.2, 0.3]; 10]), 0.0);
        // Collinear.
        let line: Vec<P3> = (0..10).map(|i| [f64::from(i) * 0.1, 0.0, 0.0]).collect();
        assert_eq!(convex_hull_volume(&line), 0.0);
        // Coplanar.
        let plane: Vec<P3> = (0..16)
            .map(|i| [f64::from(i % 4) * 0.3, f64::from(i / 4) * 0.3, 0.5])
            .collect();
        assert_eq!(convex_hull_volume(&plane), 0.0);
    }

    #[test]
    fn non_finite_points_are_ignored() {
        let mut pts = cube_corners();
        pts.push([f64::NAN, 0.5, 0.5]);
        pts.push([f64::INFINITY, 0.0, 0.0]);
        assert!((convex_hull_volume(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hull_volume_is_insertion_order_invariant() {
        let mut pts = cube_corners();
        pts.push([0.5, 0.5, 1.5]); // A pyramid on the top face: +1/6.
        let expected = 1.0 + 1.0 / 6.0;
        assert!((convex_hull_volume(&pts) - expected).abs() < 1e-9);
        pts.reverse();
        assert!((convex_hull_volume(&pts) - expected).abs() < 1e-9);
    }
}
