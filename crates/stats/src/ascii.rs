//! ASCII renderings of the paper's plot types.
//!
//! The experiment harness "prints the figure": scatter plots (Figures 2, 8),
//! shaded frequency maps (Figures 3–4), CCDF step curves (Figure 5),
//! grouped distributions (Figures 6–7) and bar charts with error bars
//! (Figures 9–10) all render to a terminal grid so that a reproduction run
//! is inspectable without any plotting toolchain.

/// Shade ramp from empty to dense, used by scatter and frequency maps.
const RAMP: &[char] = &[' ', '.', ':', '+', 'x', 'X', '#', '@'];

/// Renders a scatter plot of `(x, y)` points in `[0,1]²` as a
/// `height`-row grid, densest regions darkest, with axis labels.
#[must_use]
pub fn scatter_unit(points: &[(f64, f64)], width: usize, height: usize) -> String {
    let mut grid = vec![vec![0u32; width]; height];
    for &(x, y) in points {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        let cx = ((x.clamp(0.0, 1.0)) * (width - 1) as f64).round() as usize;
        let cy = ((y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] += 1;
    }
    let max = grid.iter().flatten().copied().max().unwrap_or(0);
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let ylab = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        out.push_str(ylab);
        out.push('|');
        for &c in row {
            out.push(shade(c, max));
        }
        out.push('\n');
    }
    out.push_str("   +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("    0.0{:>width$}\n", "1.0", width = width - 3));
    out
}

/// Renders a per-row frequency map (Figures 3–4): rows are value intervals
/// (top = highest), columns are categories, shading is the row-normalized
/// frequency.
#[must_use]
pub fn frequency_map(rows: &[Vec<f64>], col_labels: &[String]) -> String {
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate().rev() {
        let hi = (i + 1) as f64 / rows.len() as f64;
        out.push_str(&format!("{hi:4.1} |"));
        for &f in row {
            let c = shade((f * 1000.0) as u32, 1000);
            out.push(' ');
            out.push(c);
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("     +");
    out.push_str(&"-".repeat(col_labels.len() * 3));
    out.push('\n');
    out.push_str("      ");
    for l in col_labels {
        out.push_str(&format!("{l:>2} "));
    }
    out.push('\n');
    out
}

/// Renders one or more CCDF curves on a shared grid; each series is drawn
/// with its own glyph and listed in a legend.
#[must_use]
pub fn ccdf_curves(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    // Wide enough that every series of the largest default candidate set
    // (7, reputation) plus a few --mutants additions gets its own glyph;
    // beyond twelve series the palette cycles and curves become ambiguous.
    const GLYPHS: &[char] = &['o', '*', '+', 'x', '#', '@', '%', '&', '=', '~', '^', 'v'];
    let mut grid = vec![vec![' '; width]; height];
    for (s, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        // Evaluate the step function across the full x range. The target
        // row depends on the evaluated value, so this stays an index loop.
        #[allow(clippy::needless_range_loop)]
        for cx in 0..width {
            let x = cx as f64 / (width - 1) as f64;
            // P(X > x): the last point with px <= x carries the value.
            let mut p = 1.0;
            for &(px, pp) in pts {
                if px <= x {
                    p = pp;
                } else {
                    break;
                }
            }
            let cy = (p.clamp(0.0, 1.0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let ylab = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        out.push_str(ylab);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("   +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (s, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("    {} {}\n", GLYPHS[s % GLYPHS.len()], name));
    }
    out
}

/// Renders a horizontal bar chart with optional ± error terms.
#[must_use]
pub fn bars(entries: &[(String, f64, Option<f64>)], max_width: usize) -> String {
    let max_val = entries
        .iter()
        .map(|e| e.1)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = entries.iter().map(|e| e.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value, err) in entries {
        let w = ((value / max_val) * max_width as f64).round() as usize;
        out.push_str(&format!("{name:>label_w$} |{}", "#".repeat(w)));
        match err {
            Some(e) => out.push_str(&format!(" {value:.2} ± {e:.2}\n")),
            None => out.push_str(&format!(" {value:.2}\n")),
        }
    }
    out
}

/// Renders a square matrix as a shaded heat map — rows and columns carry
/// the same `labels`, shading is normalized over the full matrix range
/// (lightest = minimum, densest = maximum). Used for empirical payoff
/// cross-tables, where the visual question is "which protocol exploits
/// which" rather than exact values.
///
/// # Panics
///
/// Panics when the matrix is not square over `labels.len()`.
#[must_use]
pub fn matrix_heat(rows: &[Vec<f64>], labels: &[String]) -> String {
    let k = labels.len();
    assert_eq!(rows.len(), k, "matrix_heat needs one row per label");
    assert!(
        rows.iter().all(|r| r.len() == k),
        "matrix_heat needs a square matrix"
    );
    let finite = rows.iter().flatten().copied().filter(|v| v.is_finite());
    let lo = finite.clone().fold(f64::INFINITY, f64::min);
    let hi = finite.fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (label, row) in labels.iter().zip(rows) {
        out.push_str(&format!("{label:>label_w$} |"));
        for &v in row {
            let c = if v.is_finite() {
                shade((((v - lo) / span) * 1000.0) as u32 + 1, 1001)
            } else {
                '?'
            };
            out.push(' ');
            out.push(c);
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(k * 3)));
    out.push_str(&format!("{:>label_w$}  ", ""));
    for (i, _) in labels.iter().enumerate() {
        out.push_str(&format!("{i:>2} "));
    }
    out.push('\n');
    for (i, label) in labels.iter().enumerate() {
        out.push_str(&format!("{:>label_w$}  {i:>2} = {label}\n", ""));
    }
    out
}

fn shade(count: u32, max: u32) -> char {
    if count == 0 || max == 0 {
        return RAMP[0];
    }
    let idx = 1 + ((count as f64 / max as f64) * (RAMP.len() - 2) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_places_corner_points() {
        let s = scatter_unit(&[(0.0, 0.0), (1.0, 1.0)], 20, 10);
        let lines: Vec<&str> = s.lines().collect();
        // Top row must contain a mark near the right edge.
        assert!(lines[0].trim_end().ends_with(|c| c != '|' && c != ' '));
        // Bottom data row (row height-1) must contain a mark just after axis.
        assert!(lines[9].contains(|c: char| RAMP[1..].contains(&c)));
        assert!(s.contains("0.0"));
        assert!(s.contains("1.0"));
    }

    #[test]
    fn scatter_ignores_nan() {
        let s = scatter_unit(&[(f64::NAN, 0.5)], 10, 5);
        // Every grid row (the lines carrying a '|' axis) must be empty.
        for line in s.lines().filter(|l| l.contains('|')) {
            let grid = line.split_once('|').unwrap().1;
            assert!(
                grid.chars().all(|c| c == ' '),
                "unexpected mark in {line:?}"
            );
        }
    }

    #[test]
    fn matrix_heat_shades_extremes_and_lists_labels() {
        let rows = vec![vec![0.0, 1.0], vec![0.5, f64::NAN]];
        let labels = vec!["aa".to_string(), "b".to_string()];
        let m = matrix_heat(&rows, &labels);
        // Maximum is densest, NaN is flagged, every label is listed.
        assert!(m.contains('@'));
        assert!(m.contains('?'));
        assert!(m.contains("0 = aa"));
        assert!(m.contains("1 = b"));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn matrix_heat_rejects_ragged_input() {
        let _ = matrix_heat(
            &[vec![1.0], vec![1.0, 2.0]],
            &["x".to_string(), "y".to_string()],
        );
    }

    #[test]
    fn frequency_map_shades_dense_cells() {
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let labels = vec!["0".to_string(), "1".to_string()];
        let m = frequency_map(&rows, &labels);
        assert!(m.contains('@'));
        assert!(m.lines().count() >= 4);
    }

    #[test]
    fn ccdf_renders_legend_and_curve() {
        let series = vec![(
            "Defect".to_string(),
            vec![(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)],
        )];
        let s = ccdf_curves(&series, 30, 10);
        assert!(s.contains("o Defect"));
        assert!(s.contains('o'));
    }

    #[test]
    fn bars_scale_to_max() {
        let entries = vec![
            ("BT".to_string(), 100.0, Some(5.0)),
            ("Birds".to_string(), 50.0, None),
        ];
        let b = bars(&entries, 20);
        let lines: Vec<&str> = b.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(lines[0]), 20);
        assert_eq!(count(lines[1]), 10);
        assert!(lines[0].contains("± 5.00"));
    }

    #[test]
    fn bars_empty_input() {
        assert_eq!(bars(&[], 10), "");
    }

    #[test]
    fn shade_is_monotone() {
        let max = 100;
        let mut last = RAMP[0];
        for c in [0, 1, 10, 50, 100] {
            let s = shade(c, max);
            let pos = |ch| RAMP.iter().position(|&r| r == ch).unwrap();
            assert!(pos(s) >= pos(last));
            last = s;
        }
    }
}
