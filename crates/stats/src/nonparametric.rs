//! Nonparametric significance tests.
//!
//! Figures 9–10 make significance claims from overlapping/non-overlapping
//! 95% confidence intervals. Download-time distributions are skewed, so
//! the harness backs those claims with a Mann-Whitney U test (a.k.a.
//! Wilcoxon rank-sum) — the standard distribution-free two-sample test —
//! using the normal approximation with tie correction (sample sizes here
//! are ≥ 10 runs, where the approximation is accurate).

use crate::dist::normal_cdf;

/// Result of a two-sided Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standardized z value under H0.
    pub z: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
}

/// Runs the test on two independent samples.
///
/// Returns `None` when either sample is empty or all values are tied
/// (no ordering information).
#[must_use]
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Option<MannWhitney> {
    let n1 = xs.len();
    let n2 = ys.len();
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Joint ranking with average ranks for ties.
    let mut all: Vec<(f64, usize)> = xs
        .iter()
        .map(|&v| (v, 0usize))
        .chain(ys.iter().map(|&v| (v, 1usize)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let n = all.len();
    let mut rank_sum_x = 0.0;
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let count = (j - i + 1) as f64;
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &all[i..=j] {
            if item.1 == 0 {
                rank_sum_x += avg_rank;
            }
        }
        tie_correction += count * count * count - count;
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let nf = n as f64;
    let variance = n1f * n2f / 12.0 * ((nf + 1.0) - tie_correction / (nf * (nf - 1.0)));
    if variance <= 0.0 {
        return None; // every observation tied
    }
    let z = (u - mean_u) / variance.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(MannWhitney {
        u,
        z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Convenience: whether the two samples differ at the given significance
/// level (two-sided). Ties or empty samples report `false`.
#[must_use]
pub fn significantly_different(xs: &[f64], ys: &[f64], alpha: f64) -> bool {
    mann_whitney_u(xs, ys).is_some_and(|t| t.p_value < alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let xs: Vec<f64> = (0..20).map(|i| 10.0 + f64::from(i)).collect();
        let ys: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i)).collect();
        let t = mann_whitney_u(&xs, &ys).unwrap();
        assert!(t.p_value < 1e-6, "p={}", t.p_value);
        assert!(significantly_different(&xs, &ys, 0.05));
    }

    #[test]
    fn identical_distributions_are_not_significant() {
        let xs: Vec<f64> = (0..30).map(|i| f64::from(i % 10)).collect();
        let ys = xs.clone();
        let t = mann_whitney_u(&xs, &ys).unwrap();
        assert!(t.p_value > 0.9, "p={}", t.p_value);
        assert!(!significantly_different(&xs, &ys, 0.05));
    }

    #[test]
    fn symmetric_in_samples() {
        let xs = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let a = mann_whitney_u(&xs, &ys).unwrap();
        let b = mann_whitney_u(&ys, &xs).unwrap();
        assert!((a.p_value - b.p_value).abs() < 1e-10);
        assert!((a.z + b.z).abs() < 1e-10);
    }

    #[test]
    fn u_statistic_known_small_case() {
        // xs = {1,2}, ys = {3,4}: xs ranks = 1,2 ⇒ U = 3 − 3 = 0.
        let t = mann_whitney_u(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(t.u, 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        // All tied: no variance, no decision.
        assert!(mann_whitney_u(&[5.0, 5.0], &[5.0, 5.0]).is_none());
    }

    #[test]
    fn moderate_overlap_is_borderline() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [3.0, 4.0, 5.0, 6.0, 7.0];
        let t = mann_whitney_u(&xs, &ys).unwrap();
        assert!(t.p_value > 0.01 && t.p_value < 0.5, "p={}", t.p_value);
    }
}
