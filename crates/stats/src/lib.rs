//! Statistics substrate for the DSA reproduction.
//!
//! The paper's evaluation is as much a statistics exercise as a systems one:
//! Table 3 is a multiple linear regression with dummy-coded categorical
//! design dimensions, Figures 2–8 are scatter plots, histograms, 2-D
//! histograms and complementary CDFs, and Figures 9–10 carry 95% confidence
//! intervals. This crate implements all of that from scratch:
//!
//! * [`matrix`] — a small dense-matrix type with Cholesky factorization,
//!   enough linear algebra for ordinary least squares.
//! * [`special`] — log-gamma, regularized incomplete beta, error function;
//!   the machinery behind Student-t p-values and confidence intervals.
//! * [`dist`] — Student-t, Fisher F and normal distribution helpers built
//!   on [`special`].
//! * [`ols`] — multiple linear regression: coefficients, standard errors,
//!   t-values, p-values, (adjusted) R² — everything Table 3 reports — plus
//!   the nested-model machinery (`residual_ss`, `nested_f_test`,
//!   `partial_eta_squared`) the variance-attribution subsystem
//!   (`dsa-attribution`) fits per design dimension.
//! * [`encode`] — dummy coding for categorical variables and z-score
//!   standardization (the paper's `h̃`, `k̃`).
//! * [`describe`] — means, variances, quantiles, five-number summaries.
//! * [`correlation`] — Pearson and Spearman coefficients (Figures 2, 8 and
//!   the 50/50-vs-90/10 robustness check quote Pearson's r).
//! * [`histogram`] — 1-D and 2-D histograms (Figures 2–4).
//! * [`ccdf`] — complementary CDF curves (Figure 5).
//! * [`ci`] — t-based confidence intervals (error bars of Figures 9–10).
//! * [`nonparametric`] — Mann-Whitney U, backing the Figures 9–10
//!   significance claims without normality assumptions.
//! * [`ascii`] — terminal renderings of scatter plots, histograms and bar
//!   charts so the experiment harness can "print the figure".
//! * [`hull`] — 3-D convex hull volume, summarizing the shape of a PRA
//!   point cloud for the cross-domain cube comparison.

pub mod ascii;
pub mod ccdf;
pub mod ci;
pub mod correlation;
pub mod describe;
pub mod dist;
pub mod encode;
pub mod histogram;
pub mod hull;
pub mod matrix;
pub mod nonparametric;
pub mod ols;
pub mod special;

pub use ci::ConfidenceInterval;
pub use correlation::pearson;
pub use matrix::Matrix;
pub use ols::{OlsFit, OlsTerm};
