//! Confidence intervals for sample means.
//!
//! Figures 9–10 report averages over ≥10 runs with 95% confidence-interval
//! error bars; this module computes the standard t-based interval.

use crate::describe::{mean, std_error};
use crate::dist::student_t_quantile;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the interval (the error-bar length).
    pub half_width: f64,
    /// The confidence level used, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Computes a t-based interval at the given confidence level.
    ///
    /// For samples of fewer than two observations the half-width is NaN
    /// (no spread can be estimated).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in (0, 1).
    #[must_use]
    pub fn of(sample: &[f64], level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1), got {level}"
        );
        let m = mean(sample);
        if sample.len() < 2 {
            return Self {
                mean: m,
                half_width: f64::NAN,
                level,
            };
        }
        let df = (sample.len() - 1) as f64;
        let t_crit = student_t_quantile(0.5 + level / 2.0, df);
        Self {
            mean: m,
            half_width: t_crit * std_error(sample),
            level,
        }
    }

    /// The conventional 95% interval.
    #[must_use]
    pub fn ci95(sample: &[f64]) -> Self {
        Self::of(sample, 0.95)
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether this interval overlaps another — the paper's informal test
    /// for "the difference is statistically significant" in Figures 9–10
    /// (non-overlap ⇒ significant).
    #[must_use]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // Sample with mean 3, sd 1.5811, n 5: t_{0.975,4} = 2.776.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci = ConfidenceInterval::ci95(&xs);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let want = 2.776 * (2.5f64).sqrt() / (5.0f64).sqrt();
        assert!((ci.half_width - want).abs() < 2e-3, "{ci}");
    }

    #[test]
    fn bounds_are_symmetric() {
        let xs = [10.0, 12.0, 9.0, 11.0];
        let ci = ConfidenceInterval::ci95(&xs);
        assert!((ci.hi() - ci.mean - (ci.mean - ci.lo())).abs() < 1e-12);
    }

    #[test]
    fn wider_level_wider_interval() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let c90 = ConfidenceInterval::of(&xs, 0.90);
        let c99 = ConfidenceInterval::of(&xs, 0.99);
        assert!(c99.half_width > c90.half_width);
    }

    #[test]
    fn single_observation_has_nan_width() {
        let ci = ConfidenceInterval::ci95(&[42.0]);
        assert_eq!(ci.mean, 42.0);
        assert!(ci.half_width.is_nan());
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 10.0,
            half_width: 1.0,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            mean: 11.5,
            half_width: 1.0,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            mean: 20.0,
            half_width: 1.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn invalid_level_panics() {
        let _ = ConfidenceInterval::of(&[1.0, 2.0], 1.0);
    }
}
