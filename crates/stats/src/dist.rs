//! Probability distributions: Student-t, Fisher F and standard normal.
//!
//! Table 3 reports t-values and flags terms significant at p < 0.001;
//! Figures 9–10 use 95% confidence intervals over ≥10 runs. Both need the
//! Student-t CDF and its inverse (quantile), built here on the regularized
//! incomplete beta function. The variance-attribution subsystem
//! (`dsa-attribution`) adds nested-model F-tests on top, so the Fisher F
//! CDF lives here too, on the same beta kernel.

use crate::special::{beta_inc, erf};

/// CDF of the standard normal distribution.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0`.
#[must_use]
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0, got {df}");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t-statistic with `df` degrees of freedom:
/// `P(|T| >= |t|)`.
#[must_use]
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_two_sided_p requires df > 0");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).min(1.0)
}

/// CDF of the Fisher F distribution with `(d1, d2)` degrees of freedom:
/// `P(F <= x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2)`.
///
/// # Panics
///
/// Panics if `d1 <= 0` or `d2 <= 0`.
#[must_use]
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_cdf requires d1, d2 > 0");
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x.is_infinite() {
        return 1.0;
    }
    beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
}

/// Upper-tail p-value of an F statistic: `P(F >= f)` under `(d1, d2)`
/// degrees of freedom — the nested-model test's significance level.
#[must_use]
pub fn f_upper_p(f: f64, d1: f64, d2: f64) -> f64 {
    if f.is_nan() {
        return f64::NAN;
    }
    (1.0 - f_cdf(f, d1, d2)).clamp(0.0, 1.0)
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// the CDF. Accuracy ~1e-10, more than enough for confidence intervals.
///
/// # Panics
///
/// Panics if `df <= 0` or `p` is outside `(0, 1)`.
#[must_use]
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_quantile requires df > 0");
    assert!(
        p > 0.0 && p < 1.0,
        "student_t_quantile requires p in (0,1), got {p}"
    );
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket: t quantiles for p in (1e-12, 1-1e-12) and df >= 1 are well
    // within ±1e8.
    let (mut lo, mut hi) = (-1e8, 1e8);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + mid.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        // Bounded by the ~1e-7 error of the erf approximation.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn t_cdf_symmetry() {
        for df in [1.0, 5.0, 30.0] {
            for t in [0.3, 1.0, 2.5] {
                let a = student_t_cdf(t, df);
                let b = student_t_cdf(-t, df);
                assert!((a + b - 1.0).abs() < 1e-10, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn t_cdf_df1_is_cauchy() {
        // For df=1 the t distribution is Cauchy: CDF = 1/2 + atan(t)/π.
        for t in [-3.0f64, -0.5, 0.0, 1.0, 4.0] {
            let want = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((student_t_cdf(t, 1.0) - want).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn t_cdf_converges_to_normal() {
        for t in [-2.0, -1.0, 0.5, 1.5] {
            let tcdf = student_t_cdf(t, 1e6);
            assert!((tcdf - normal_cdf(t)).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn t_cdf_infinite_arguments() {
        assert_eq!(student_t_cdf(f64::INFINITY, 5.0), 1.0);
        assert_eq!(student_t_cdf(f64::NEG_INFINITY, 5.0), 0.0);
    }

    #[test]
    fn two_sided_p_matches_cdf_tails() {
        for df in [3.0, 10.0, 100.0] {
            for t in [0.5, 1.5, 3.0] {
                let p = student_t_two_sided_p(t, df);
                let want = 2.0 * (1.0 - student_t_cdf(t, df));
                assert!((p - want).abs() < 1e-9, "df={df} t={t}: {p} vs {want}");
                // Symmetric in t.
                assert!((student_t_two_sided_p(-t, df) - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn f_cdf_squared_t_relationship() {
        // If T ~ t(df) then T² ~ F(1, df): P(F <= t²) = P(|T| <= t).
        for df in [3.0, 10.0, 60.0] {
            for t in [0.5f64, 1.3, 2.8] {
                let via_f = f_cdf(t * t, 1.0, df);
                let via_t = 1.0 - student_t_two_sided_p(t, df);
                assert!((via_f - via_t).abs() < 1e-9, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn f_cdf_edge_cases_and_monotonicity() {
        assert_eq!(f_cdf(0.0, 3.0, 7.0), 0.0);
        assert_eq!(f_cdf(-1.0, 3.0, 7.0), 0.0);
        assert_eq!(f_cdf(f64::INFINITY, 3.0, 7.0), 1.0);
        assert!(f_cdf(f64::NAN, 3.0, 7.0).is_nan());
        let mut last = 0.0;
        for i in 1..=40 {
            let v = f_cdf(i as f64 * 0.25, 4.0, 12.0);
            assert!(v >= last - 1e-14);
            last = v;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn f_upper_p_known_critical_value() {
        // Standard table: F_{0.95}(2, 10) ≈ 4.10, so P(F >= 4.10) ≈ 0.05.
        let p = f_upper_p(4.10, 2.0, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // And a huge statistic is essentially impossible under H0.
        assert!(f_upper_p(1000.0, 2.0, 10.0) < 1e-5);
        assert!(f_upper_p(f64::NAN, 2.0, 10.0).is_nan());
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [2.0, 9.0, 49.0] {
            for p in [0.025, 0.5, 0.975, 0.999] {
                let q = student_t_quantile(p, df);
                assert!((student_t_cdf(q, df) - p).abs() < 1e-8, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn quantile_known_critical_values() {
        // Standard table: t_{0.975, 9} = 2.262, t_{0.975, 49} ≈ 2.010.
        assert!((student_t_quantile(0.975, 9.0) - 2.262).abs() < 1e-3);
        assert!((student_t_quantile(0.975, 49.0) - 2.010).abs() < 2e-3);
        // Median is zero.
        assert_eq!(student_t_quantile(0.5, 7.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_p_one() {
        let _ = student_t_quantile(1.0, 5.0);
    }
}
