//! Dense column-major matrices with just enough linear algebra for OLS.
//!
//! The regression in Table 3 has ~3270 rows and 13 columns, so the normal
//! equations `XᵀX β = Xᵀy` with a Cholesky solve are numerically entirely
//! adequate (the design matrix is dummy-coded and standardized; its Gram
//! matrix is well conditioned). We keep the implementation deliberately
//! small and well tested rather than general.

use std::fmt;

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_rows: data length {} != {rows}x{cols}",
            data.len()
        );
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or there are no rows.
    #[must_use]
    pub fn from_row_slices(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_row_slices: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of one row.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// `selfᵀ * self`, the Gram matrix, computed without materializing the
    /// transpose (the hot operation of OLS).
    #[must_use]
    pub fn gram(&self) -> Self {
        let mut g = Self::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `selfᵀ * v` for a vector `v` of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    #[must_use]
    pub fn t_vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_vec_mul: vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            let row = self.row(r);
            if vr == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * vr;
            }
        }
        out
    }

    /// `self * v` for a vector `v` of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vec_mul: vector length mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Cholesky factorization `self = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    #[must_use]
    pub fn cholesky(&self) -> Option<Self> {
        assert_eq!(self.rows, self.cols, "cholesky: matrix must be square");
        let n = self.rows;
        let mut l = Self::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `self * x = b` for symmetric positive-definite `self` via
    /// Cholesky. Returns `None` if the factorization fails.
    #[must_use]
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        Some(l.cholesky_solve(b))
    }

    /// Inverse of a symmetric positive-definite matrix via Cholesky.
    #[must_use]
    pub fn inverse_spd(&self) -> Option<Self> {
        let l = self.cholesky()?;
        let n = self.rows;
        let mut inv = Self::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = l.cholesky_solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Some(inv)
    }

    /// Given the lower Cholesky factor `L` (self), solves `L Lᵀ x = b` by
    /// forward then backward substitution.
    fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        debug_assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3.rows(), 3);
        assert_eq!(i3.cols(), 3);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(2, 3, &[1.0, -2.0, 0.5, 3.0, 4.0, -1.0]);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let m = Matrix::from_rows(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 0.5, 0.5, 2.0, -2.0, 0.0],
        );
        let explicit = m.transpose().matmul(&m);
        assert!(m.gram().max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn t_vec_mul_matches_transpose_matmul() {
        let m = Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = [1.0, -1.0, 2.0];
        let got = m.t_vec_mul(&v);
        assert_eq!(got, vec![1.0 - 3.0 + 10.0, 2.0 - 4.0 + 12.0]);
    }

    #[test]
    fn vec_mul_basic() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // [[4, 2], [2, 3]] = L Lᵀ with L = [[2, 0], [1, sqrt(2)]].
        let m = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let l = m.cholesky().expect("SPD");
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.vec_mul(&x_true);
        let x = a.solve_spd(&b).expect("solvable");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn inverse_spd_times_self_is_identity() {
        let a = Matrix::from_rows(3, 3, &[5.0, 1.0, 1.0, 1.0, 4.0, 0.5, 1.0, 0.5, 3.0]);
        let inv = a.inverse_spd().expect("SPD");
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_row_slices_builds() {
        let m = Matrix::from_row_slices(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn display_formats_rows() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert_eq!(s.lines().count(), 2);
    }
}
