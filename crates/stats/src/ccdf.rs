//! Complementary cumulative distribution functions.
//!
//! Figure 5 plots `P(X > x)` of robustness for each stranger policy. A
//! CCDF here is the empirical curve: for each observed value `x`, the
//! fraction of observations strictly greater than `x`.

/// An empirical complementary CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct Ccdf {
    /// Sorted distinct sample values.
    xs: Vec<f64>,
    /// `ps[i] = P(X > xs[i])`.
    ps: Vec<f64>,
}

impl Ccdf {
    /// Builds the empirical CCDF of a sample. NaNs are dropped.
    #[must_use]
    pub fn of(sample: &[f64]) -> Self {
        let mut vals: Vec<f64> = sample.iter().copied().filter(|x| !x.is_nan()).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = vals.len();
        let mut xs = Vec::new();
        let mut ps = Vec::new();
        let mut i = 0;
        while i < n {
            let v = vals[i];
            let mut j = i;
            while j + 1 < n && vals[j + 1] == v {
                j += 1;
            }
            xs.push(v);
            // Strictly greater than v.
            ps.push((n - 1 - j) as f64 / n as f64);
            i = j + 1;
        }
        Self { xs, ps }
    }

    /// Evaluates `P(X > x)` at an arbitrary point (step function).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return f64::NAN;
        }
        // Number of sample values > x, via binary search over distinct values.
        match self
            .xs
            .binary_search_by(|v| v.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => self.ps[i],
            Err(0) => 1.0,
            Err(i) => self.ps[i - 1],
        }
    }

    /// The curve as `(x, P(X > x))` points, suitable for plotting.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .copied()
            .zip(self.ps.iter().copied())
            .collect()
    }

    /// Fraction of the sample strictly above a threshold — the headline
    /// statistic of Figure 5 ("only When-needed protocols reach robustness
    /// greater than 0.99").
    #[must_use]
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        self.eval(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sample() {
        let c = Ccdf::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 1.0);
        assert_eq!(c.eval(1.0), 0.75);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 0.0);
        assert_eq!(c.eval(9.0), 0.0);
    }

    #[test]
    fn ties_are_grouped() {
        let c = Ccdf::of(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(0.9), 1.0);
    }

    #[test]
    fn nan_dropped_empty_is_nan() {
        let c = Ccdf::of(&[f64::NAN]);
        assert!(c.eval(0.0).is_nan());
        let c = Ccdf::of(&[f64::NAN, 5.0]);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(5.0), 0.0);
    }

    #[test]
    fn curve_is_nonincreasing() {
        let sample = [0.3, 0.9, 0.1, 0.5, 0.5, 0.99, 0.75];
        let c = Ccdf::of(&sample);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fraction_above_matches_count() {
        let sample = [0.1, 0.5, 0.995, 0.999, 1.0];
        let c = Ccdf::of(&sample);
        assert!((c.fraction_above(0.99) - 3.0 / 5.0).abs() < 1e-12);
        assert!((c.fraction_above(0.999) - 1.0 / 5.0).abs() < 1e-12);
    }
}
