//! Descriptive statistics: means, variances, quantiles, summaries.

/// Arithmetic mean; `NaN` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); `NaN` for fewer than two
/// observations.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (n denominator); `NaN` for an empty slice.
///
/// The paper quotes "maximum variance in the runs" for performance and
/// robustness (§4.4) — a population-style spread over a fixed set of runs.
#[must_use]
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
#[must_use]
pub fn std_error(xs: &[f64]) -> f64 {
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Minimum over a slice, ignoring NaNs; `NaN` if empty.
#[must_use]
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// Maximum over a slice, ignoring NaNs; `NaN` if empty.
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` is clamped to `[0, 1]`. Returns `NaN` for an empty slice.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Min/max normalization of a slice into `[0, 1]`.
///
/// This is how the paper normalizes Performance "over the entire protocol
/// design space" so that the best protocol scores 1. If all values are
/// equal the result is all zeros (there is no spread to express).
#[must_use]
pub fn normalize_unit(xs: &[f64]) -> Vec<f64> {
    let lo = min(xs);
    let hi = max(xs);
    let span = hi - lo;
    if span.is_nan() || span <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / span).collect()
}

/// Normalization by the maximum (best = 1, preserving zero).
///
/// Matches the paper's convention "P = 1 indicates the best performance";
/// zero throughput maps to zero rather than to the minimum observed.
#[must_use]
pub fn normalize_by_max(xs: &[f64]) -> Vec<f64> {
    let hi = max(xs);
    if hi.is_nan() || hi <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x / hi).clamp(0.0, 1.0)).collect()
}

/// A five-number-plus-moments summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        Self {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            q1: quantile(xs, 0.25),
            median: median(xs),
            q3: quantile(xs, 0.75),
            max: max(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps() {
        let xs = [5.0, 10.0];
        assert_eq!(quantile(&xs, -1.0), 5.0);
        assert_eq!(quantile(&xs, 2.0), 10.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn normalize_unit_spans() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(normalize_unit(&xs), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_unit_constant_input() {
        assert_eq!(normalize_unit(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_unit(&[]), Vec::<f64>::new());
    }

    #[test]
    fn normalize_by_max_preserves_zero() {
        let xs = [0.0, 5.0, 10.0];
        assert_eq!(normalize_by_max(&xs), vec![0.0, 0.5, 1.0]);
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn std_error_scales_with_n() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let se = std_error(&xs);
        assert!((se - std_dev(&xs) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(s.q1 <= s.median && s.median <= s.q3);
    }
}
