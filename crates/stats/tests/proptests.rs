//! Property-based tests of the numerical kernels.

use dsa_stats::dist::{f_cdf, student_t_cdf, student_t_quantile, student_t_two_sided_p};
use dsa_stats::encode::{dummy_code, NamedColumn};
use dsa_stats::matrix::Matrix;
use dsa_stats::ols::{fit, nested_f_test, partial_eta_squared, residual_ss};
use dsa_stats::special::{beta_inc, erf, ln_gamma};
use proptest::prelude::*;

/// A deterministic pseudo-random level in `0..levels` for row `i` of
/// dummy-coded synthetic designs (splitmix-style mix, no RNG state).
fn synthetic_level(i: usize, salt: u64, levels: usize) -> usize {
    let mut z = (i as u64)
        .wrapping_add(salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % levels
}

proptest! {
    /// Cholesky-based solves actually solve: ‖Ax − b‖ small for random
    /// SPD matrices A = MᵀM + I.
    #[test]
    fn spd_solve_residual(entries in proptest::collection::vec(-3.0f64..3.0, 16), b in proptest::collection::vec(-10.0f64..10.0, 4)) {
        let m = Matrix::from_rows(4, 4, &entries);
        let mut a = m.gram();
        for i in 0..4 {
            a[(i, i)] += 1.0; // guarantee positive definiteness
        }
        let x = a.solve_spd(&b).expect("SPD by construction");
        let ax = a.vec_mul(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6, "residual {} vs {}", l, r);
        }
    }

    /// The SPD inverse really inverts.
    #[test]
    fn spd_inverse_identity(entries in proptest::collection::vec(-2.0f64..2.0, 9)) {
        let m = Matrix::from_rows(3, 3, &entries);
        let mut a = m.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let inv = a.inverse_spd().expect("SPD");
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    /// ln_gamma satisfies the recurrence Γ(x+1) = xΓ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={}", x);
    }

    /// The regularized incomplete beta stays in [0,1] and respects its
    /// symmetry identity.
    #[test]
    fn beta_inc_bounds_and_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..1.0) {
        let v = beta_inc(a, b, x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        let sym = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((v - sym).abs() < 1e-8);
    }

    /// erf is odd and bounded.
    #[test]
    fn erf_odd_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
    }

    /// The t CDF is monotone in its argument.
    #[test]
    fn t_cdf_monotone(df in 1.0f64..100.0, a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(student_t_cdf(lo, df) <= student_t_cdf(hi, df) + 1e-12);
    }

    /// Quantile inverts the CDF across the usable range.
    #[test]
    fn t_quantile_inverts(df in 1.0f64..60.0, p in 0.01f64..0.99) {
        let q = student_t_quantile(p, df);
        prop_assert!((student_t_cdf(q, df) - p).abs() < 1e-6);
    }

    /// Two-sided p-values live in [0,1] and shrink with |t|.
    #[test]
    fn p_value_monotone_in_t(df in 1.0f64..60.0, t1 in 0.0f64..6.0, t2 in 0.0f64..6.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = student_t_two_sided_p(lo, df);
        let p_hi = student_t_two_sided_p(hi, df);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_hi <= p_lo + 1e-12);
    }

    /// The F CDF is a CDF: bounded, monotone, and consistent with the
    /// squared-t identity F(1, df) = T(df)².
    #[test]
    fn f_cdf_bounded_monotone(d1 in 1.0f64..30.0, d2 in 1.0f64..60.0, a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = f_cdf(lo, d1, d2);
        let c_hi = f_cdf(hi, d1, d2);
        prop_assert!((0.0..=1.0).contains(&c_lo));
        prop_assert!(c_hi >= c_lo - 1e-12);
    }

    /// OLS recovers planted coefficients on synthetic dummy-coded data:
    /// y = intercept + Σ effect[level] + small deterministic noise, with
    /// every non-baseline level's estimate within tolerance of its planted
    /// effect.
    #[test]
    fn fit_recovers_planted_dummy_effects(
        levels in 2usize..5,
        salt in 0u64..1_000_000,
        intercept in -2.0f64..2.0,
        effect_scale in 0.2f64..3.0,
    ) {
        let n = 240;
        let values: Vec<usize> = (0..n).map(|i| synthetic_level(i, salt, levels)).collect();
        // Every level must actually occur, or its dummy column is zero.
        prop_assume!((0..levels).all(|l| values.contains(&l)));
        // Planted per-level effects, level 0 = baseline = 0.
        let effect = |l: usize| effect_scale * l as f64;
        let y: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let noise = ((i * 37 % 11) as f64 - 5.0) / 500.0;
                intercept + effect(l) + noise
            })
            .collect();
        let names: Vec<String> = (0..levels).map(|l| format!("L{l}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let cols = dsa_stats::encode::dummy_columns(&values, &name_refs);
        let f = fit(&cols, &y).expect("full-rank dummy design");
        prop_assert!((f.terms[0].estimate - intercept).abs() < 0.05, "intercept {}", f.terms[0].estimate);
        for (j, term) in f.terms.iter().skip(1).enumerate() {
            let planted = effect(j + 1);
            prop_assert!(
                (term.estimate - planted).abs() < 0.05,
                "level {} estimate {} vs planted {}", j + 1, term.estimate, planted
            );
        }
        prop_assert!(f.adj_r_squared > 0.95);
    }

    /// Partial η² is in [0,1] for every dimension of a two-dimension
    /// dummy-coded design, and on a *balanced factorial* design (the shape
    /// of every DSA space) the explained-share decomposition is
    /// sum-bounded: Σ (SS_res_reduced − SS_res_full)/SS_tot ≤ 1 + ε.
    /// (With unbalanced, correlated dummies suppression effects can push
    /// the sum past 1 — that is a property of Type-III sums of squares,
    /// not a bug — so the test plants the balanced case.)
    #[test]
    fn partial_eta_squared_bounded(
        la in 2usize..4,
        lb in 2usize..4,
        salt in 0u64..1_000_000,
        wa in 0.0f64..2.0,
        wb in 0.0f64..2.0,
    ) {
        // Balanced full factorial: every (a, b) combination occurs equally
        // often; the salt rotates the level assignment without unbalancing.
        let cell = la * lb;
        let n = cell * 200_usize.div_ceil(cell);
        let a_vals: Vec<usize> = (0..n).map(|i| (i + salt as usize) % la).collect();
        let b_vals: Vec<usize> = (0..n).map(|i| (i / la + salt as usize) % lb).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let noise = ((i * 61 % 13) as f64 - 6.0) / 30.0;
                wa * a_vals[i] as f64 + wb * b_vals[i] as f64 + noise
            })
            .collect();
        let mut cols: Vec<NamedColumn> = Vec::new();
        for (j, col) in dummy_code(&a_vals, la).into_iter().enumerate() {
            cols.push(NamedColumn::new(format!("A{}", j + 1), col));
        }
        let a_cols = cols.len();
        for (j, col) in dummy_code(&b_vals, lb).into_iter().enumerate() {
            cols.push(NamedColumn::new(format!("B{}", j + 1), col));
        }
        let full = residual_ss(&cols, &y).expect("full-rank");
        let mut explained_sum = 0.0;
        for (lo, hi) in [(0, a_cols), (a_cols, cols.len())] {
            let reduced_cols: Vec<NamedColumn> = cols
                .iter()
                .enumerate()
                .filter(|(j, _)| *j < lo || *j >= hi)
                .map(|(_, c)| c.clone())
                .collect();
            let reduced = residual_ss(&reduced_cols, &y).expect("full-rank");
            let eta = partial_eta_squared(&full, &reduced);
            prop_assert!((0.0..=1.0).contains(&eta), "partial eta {}", eta);
            let (f_stat, p) = nested_f_test(&full, &reduced);
            prop_assert!(f_stat >= 0.0);
            prop_assert!(p.is_nan() || (0.0..=1.0).contains(&p));
            explained_sum += (reduced.ss_res - full.ss_res) / full.ss_tot;
        }
        // The per-dimension explained shares can never exceed the whole.
        prop_assert!(explained_sum <= 1.0 + 1e-9, "sum {}", explained_sum);
    }
}
