//! Property-based tests of the numerical kernels.

use dsa_stats::dist::{student_t_cdf, student_t_quantile, student_t_two_sided_p};
use dsa_stats::matrix::Matrix;
use dsa_stats::special::{beta_inc, erf, ln_gamma};
use proptest::prelude::*;

proptest! {
    /// Cholesky-based solves actually solve: ‖Ax − b‖ small for random
    /// SPD matrices A = MᵀM + I.
    #[test]
    fn spd_solve_residual(entries in proptest::collection::vec(-3.0f64..3.0, 16), b in proptest::collection::vec(-10.0f64..10.0, 4)) {
        let m = Matrix::from_rows(4, 4, &entries);
        let mut a = m.gram();
        for i in 0..4 {
            a[(i, i)] += 1.0; // guarantee positive definiteness
        }
        let x = a.solve_spd(&b).expect("SPD by construction");
        let ax = a.vec_mul(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6, "residual {} vs {}", l, r);
        }
    }

    /// The SPD inverse really inverts.
    #[test]
    fn spd_inverse_identity(entries in proptest::collection::vec(-2.0f64..2.0, 9)) {
        let m = Matrix::from_rows(3, 3, &entries);
        let mut a = m.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let inv = a.inverse_spd().expect("SPD");
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    /// ln_gamma satisfies the recurrence Γ(x+1) = xΓ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={}", x);
    }

    /// The regularized incomplete beta stays in [0,1] and respects its
    /// symmetry identity.
    #[test]
    fn beta_inc_bounds_and_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..1.0) {
        let v = beta_inc(a, b, x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        let sym = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((v - sym).abs() < 1e-8);
    }

    /// erf is odd and bounded.
    #[test]
    fn erf_odd_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
    }

    /// The t CDF is monotone in its argument.
    #[test]
    fn t_cdf_monotone(df in 1.0f64..100.0, a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(student_t_cdf(lo, df) <= student_t_cdf(hi, df) + 1e-12);
    }

    /// Quantile inverts the CDF across the usable range.
    #[test]
    fn t_quantile_inverts(df in 1.0f64..60.0, p in 0.01f64..0.99) {
        let q = student_t_quantile(p, df);
        prop_assert!((student_t_cdf(q, df) - p).abs() < 1e-6);
    }

    /// Two-sided p-values live in [0,1] and shrink with |t|.
    #[test]
    fn p_value_monotone_in_t(df in 1.0f64..60.0, t1 in 0.0f64..6.0, t2 in 0.0f64..6.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = student_t_two_sided_p(lo, df);
        let p_hi = student_t_two_sided_p(hi, df);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_hi <= p_lo + 1e-12);
    }
}
