//! Game-theoretic substrate for the DSA reproduction (Section 2 + Appendix).
//!
//! The paper's first contribution is a game-theoretic model of BitTorrent
//! that incorporates *repeated interactions* and *opportunity costs*: the
//! **BitTorrent Dilemma** (Figure 1a) between fast and slow bandwidth
//! classes, the modified **Birds** payoffs (Figure 1c), an analytical model
//! of expected game wins per class (Table 1, Section 2.2), and the Appendix
//! proof that BitTorrent's TFT is not a Nash equilibrium while Birds is.
//!
//! * [`game`] — 2×2 normal-form games: payoffs, dominance, best responses,
//!   pure Nash equilibria.
//! * [`games`] — the paper's concrete games: Prisoner's Dilemma, Dictator
//!   game, BitTorrent Dilemma (Fig 1a), Birds (Fig 1c).
//! * [`strategy`] — iterated-game strategies: TFT, TF2T (the paper's C1/C2
//!   candidate-list ancestors), AllC, AllD, Grim, Win-Stay-Lose-Shift,
//!   Random.
//! * [`iterated`] — the iterated-game engine with discounting ("shadow of
//!   the future") and optional noise.
//! * [`axelrod`] — Axelrod-style round-robin tournaments, the methodological
//!   ancestor of the paper's PRA quantification.
//! * [`classes`] — Table 1's population parameters (N_A, N_B, N_C, U_r).
//! * [`analytics`] — the Section 2.2 expected-win formulae for BitTorrent
//!   and Birds in homogeneous populations.
//! * [`nash`] — the Appendix deviation analysis: a single Birds deviant in
//!   a BitTorrent swarm wins more games than the incumbents (BT is not NE);
//!   a single BitTorrent deviant in a Birds swarm wins fewer (Birds is NE).

pub mod analytics;
pub mod axelrod;
pub mod classes;
pub mod evolution;
pub mod game;
pub mod games;
pub mod iterated;
pub mod mixed;
pub mod nash;
pub mod strategy;

pub use classes::ClassParams;
pub use game::{Action, Game2x2};
pub use strategy::Strategy;
