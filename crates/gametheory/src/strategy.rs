//! Strategies for iterated 2×2 games.
//!
//! BitTorrent's choking algorithm "follows a Tit-for-Tat like strategy"
//! (§2.1); the design space's candidate lists C1/C2 are TFT and
//! Tit-for-Two-Tats; Sort Adaptive is inspired by Win-Stay-Lose-Shift
//! (Posch [25]). This module provides those strategies in their classic
//! iterated-game form, used by the [`crate::axelrod`] tournament and the
//! Section 2 analysis examples.

use crate::game::Action;
use dsa_workloads::rng::Xoshiro256pp;

/// A stateful strategy for an iterated 2×2 game.
///
/// Implementations receive the full visible history through
/// [`Strategy::next_move`]'s `my_last`/`their_last` arguments plus their own
/// internal state, and must be deterministic given the `rng` stream.
pub trait Strategy {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// The opening move.
    fn first_move(&mut self, rng: &mut Xoshiro256pp) -> Action;

    /// The move for round `t > 0`, given both players' previous actions
    /// and this player's previous payoff.
    fn next_move(
        &mut self,
        my_last: Action,
        their_last: Action,
        my_last_payoff: f64,
        rng: &mut Xoshiro256pp,
    ) -> Action;

    /// Resets internal state for a fresh match.
    fn reset(&mut self);
}

/// Tit-for-Tat: cooperate first, then mirror the opponent's last action.
#[derive(Debug, Default, Clone)]
pub struct TitForTat;

impl Strategy for TitForTat {
    fn name(&self) -> &'static str {
        "TFT"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn next_move(
        &mut self,
        _my: Action,
        their: Action,
        _pay: f64,
        _rng: &mut Xoshiro256pp,
    ) -> Action {
        their
    }
    fn reset(&mut self) {}
}

/// Tit-for-Two-Tats: defects only after two consecutive opponent
/// defections — the forgiving variant Axelrod [1] discusses, and the
/// ancestor of the paper's C2 candidate list ("reciprocated in either of
/// the last two rounds").
#[derive(Debug, Default, Clone)]
pub struct TitForTwoTats {
    prior_defection: bool,
}

impl Strategy for TitForTwoTats {
    fn name(&self) -> &'static str {
        "TF2T"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn next_move(
        &mut self,
        _my: Action,
        their: Action,
        _pay: f64,
        _rng: &mut Xoshiro256pp,
    ) -> Action {
        let two_in_a_row = their == Action::Defect && self.prior_defection;
        self.prior_defection = their == Action::Defect;
        if two_in_a_row {
            Action::Defect
        } else {
            Action::Cooperate
        }
    }
    fn reset(&mut self) {
        self.prior_defection = false;
    }
}

/// Always cooperate.
#[derive(Debug, Default, Clone)]
pub struct AllC;

impl Strategy for AllC {
    fn name(&self) -> &'static str {
        "AllC"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn next_move(&mut self, _m: Action, _t: Action, _p: f64, _r: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn reset(&mut self) {}
}

/// Always defect — the strategy Locher et al. [17] showed exploits
/// BitTorrent's TFT ("free riding in BitTorrent is cheap").
#[derive(Debug, Default, Clone)]
pub struct AllD;

impl Strategy for AllD {
    fn name(&self) -> &'static str {
        "AllD"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Defect
    }
    fn next_move(&mut self, _m: Action, _t: Action, _p: f64, _r: &mut Xoshiro256pp) -> Action {
        Action::Defect
    }
    fn reset(&mut self) {}
}

/// Grim trigger: cooperate until the opponent defects once, then defect
/// forever.
#[derive(Debug, Default, Clone)]
pub struct Grim {
    triggered: bool,
}

impl Strategy for Grim {
    fn name(&self) -> &'static str {
        "Grim"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn next_move(
        &mut self,
        _my: Action,
        their: Action,
        _pay: f64,
        _rng: &mut Xoshiro256pp,
    ) -> Action {
        if their == Action::Defect {
            self.triggered = true;
        }
        if self.triggered {
            Action::Defect
        } else {
            Action::Cooperate
        }
    }
    fn reset(&mut self) {
        self.triggered = false;
    }
}

/// Win-Stay, Lose-Shift (Pavlov) with an aspiration level: repeat the last
/// action if it met the aspiration, otherwise switch (Posch [25], the
/// inspiration for the paper's Sort Adaptive ranking function).
#[derive(Debug, Clone)]
pub struct WinStayLoseShift {
    /// Payoff at or above which the previous action is repeated.
    pub aspiration: f64,
}

impl WinStayLoseShift {
    /// Creates the strategy with the given aspiration level.
    #[must_use]
    pub fn new(aspiration: f64) -> Self {
        Self { aspiration }
    }
}

impl Strategy for WinStayLoseShift {
    fn name(&self) -> &'static str {
        "WSLS"
    }
    fn first_move(&mut self, _rng: &mut Xoshiro256pp) -> Action {
        Action::Cooperate
    }
    fn next_move(
        &mut self,
        my: Action,
        _their: Action,
        pay: f64,
        _rng: &mut Xoshiro256pp,
    ) -> Action {
        if pay >= self.aspiration {
            my
        } else {
            my.other()
        }
    }
    fn reset(&mut self) {}
}

/// Cooperates with fixed probability each round.
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    /// Cooperation probability in `[0, 1]`.
    pub p_cooperate: f64,
}

impl RandomStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new(p_cooperate: f64) -> Self {
        Self { p_cooperate }
    }
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "Random"
    }
    fn first_move(&mut self, rng: &mut Xoshiro256pp) -> Action {
        if rng.chance(self.p_cooperate) {
            Action::Cooperate
        } else {
            Action::Defect
        }
    }
    fn next_move(&mut self, _m: Action, _t: Action, _p: f64, rng: &mut Xoshiro256pp) -> Action {
        if rng.chance(self.p_cooperate) {
            Action::Cooperate
        } else {
            Action::Defect
        }
    }
    fn reset(&mut self) {}
}

/// Constructs one of each classic strategy, boxed, for tournament fields.
#[must_use]
pub fn classic_field() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(TitForTat),
        Box::new(TitForTwoTats::default()),
        Box::new(AllC),
        Box::new(AllD),
        Box::new(Grim::default()),
        Box::new(WinStayLoseShift::new(3.0)),
        Box::new(RandomStrategy::new(0.5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(7)
    }

    #[test]
    fn tft_mirrors() {
        let mut s = TitForTat;
        let mut r = rng();
        assert_eq!(s.first_move(&mut r), Action::Cooperate);
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Defect
        );
        assert_eq!(
            s.next_move(Action::Defect, Action::Cooperate, 5.0, &mut r),
            Action::Cooperate
        );
    }

    #[test]
    fn tf2t_forgives_single_defection() {
        let mut s = TitForTwoTats::default();
        let mut r = rng();
        let _ = s.first_move(&mut r);
        // One defection: still cooperate.
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Cooperate
        );
        // Second consecutive defection: defect.
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Defect
        );
        // Opponent cooperates again: forgive.
        assert_eq!(
            s.next_move(Action::Defect, Action::Cooperate, 5.0, &mut r),
            Action::Cooperate
        );
    }

    #[test]
    fn tf2t_reset_clears_memory() {
        let mut s = TitForTwoTats::default();
        let mut r = rng();
        let _ = s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r);
        s.reset();
        // After reset a single defection must again be forgiven.
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Cooperate
        );
    }

    #[test]
    fn grim_never_forgives() {
        let mut s = Grim::default();
        let mut r = rng();
        let _ = s.first_move(&mut r);
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Defect
        );
        for _ in 0..5 {
            assert_eq!(
                s.next_move(Action::Defect, Action::Cooperate, 5.0, &mut r),
                Action::Defect
            );
        }
    }

    #[test]
    fn wsls_switches_on_low_payoff() {
        let mut s = WinStayLoseShift::new(3.0);
        let mut r = rng();
        // Payoff 3 (met aspiration): stay.
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Cooperate, 3.0, &mut r),
            Action::Cooperate
        );
        // Payoff 0 (sucker): shift.
        assert_eq!(
            s.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Defect
        );
        // Payoff 5 (temptation): stay on defect.
        assert_eq!(
            s.next_move(Action::Defect, Action::Cooperate, 5.0, &mut r),
            Action::Defect
        );
    }

    #[test]
    fn random_respects_probability() {
        let mut s = RandomStrategy::new(0.8);
        let mut r = rng();
        let n = 50_000;
        let coop = (0..n)
            .filter(|_| {
                s.next_move(Action::Cooperate, Action::Cooperate, 1.0, &mut r) == Action::Cooperate
            })
            .count();
        let p = coop as f64 / f64::from(n);
        assert!((p - 0.8).abs() < 0.01, "p={p}");
    }

    #[test]
    fn alld_and_allc_are_constant() {
        let mut r = rng();
        let mut d = AllD;
        let mut c = AllC;
        assert_eq!(d.first_move(&mut r), Action::Defect);
        assert_eq!(c.first_move(&mut r), Action::Cooperate);
        assert_eq!(
            d.next_move(Action::Defect, Action::Cooperate, 5.0, &mut r),
            Action::Defect
        );
        assert_eq!(
            c.next_move(Action::Cooperate, Action::Defect, 0.0, &mut r),
            Action::Cooperate
        );
    }

    #[test]
    fn classic_field_has_distinct_names() {
        let field = classic_field();
        let names: std::collections::HashSet<&str> = field.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), field.len());
    }
}
