//! The iterated-game engine.
//!
//! Section 2.1 models BitTorrent as "a number of games [played] with other
//! peers in a given time period ... where the 'shadow of the future' is
//! large". This engine plays two [`Strategy`] implementations against each
//! other for a fixed horizon with optional discounting (the shadow of the
//! future) and optional execution noise (trembling hand), and reports both
//! players' cumulative scores and the full action history.

use crate::game::{Action, Game2x2};
use crate::strategy::Strategy;
use dsa_workloads::rng::Xoshiro256pp;

/// Configuration of an iterated match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Number of rounds to play.
    pub rounds: usize,
    /// Per-round discount factor δ ∈ (0, 1]; round t's payoff is weighted
    /// δ^t. δ = 1 is the undiscounted repeated game; δ close to 1 is a
    /// "large shadow of the future".
    pub discount: f64,
    /// Probability that an intended action is flipped (execution noise).
    pub noise: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            rounds: 200,
            discount: 1.0,
            noise: 0.0,
        }
    }
}

/// The outcome of an iterated match.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// Row player's discounted cumulative payoff.
    pub score_row: f64,
    /// Column player's discounted cumulative payoff.
    pub score_col: f64,
    /// Per-round action pairs (row, col).
    pub history: Vec<(Action, Action)>,
}

impl MatchOutcome {
    /// Fraction of rounds in which both players cooperated.
    #[must_use]
    pub fn mutual_cooperation_rate(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let n = self
            .history
            .iter()
            .filter(|&&(r, c)| r == Action::Cooperate && c == Action::Cooperate)
            .count();
        n as f64 / self.history.len() as f64
    }
}

/// Plays one iterated match between two strategies.
///
/// Both strategies are `reset()` before play, so the same instances can be
/// reused across matches (as the tournament driver does).
///
/// # Panics
///
/// Panics if the configuration is degenerate (no rounds, discount outside
/// (0, 1], or noise outside [0, 1]).
pub fn play_match(
    game: &Game2x2,
    row: &mut dyn Strategy,
    col: &mut dyn Strategy,
    config: &MatchConfig,
    rng: &mut Xoshiro256pp,
) -> MatchOutcome {
    assert!(config.rounds > 0, "match needs at least one round");
    assert!(
        config.discount > 0.0 && config.discount <= 1.0,
        "discount must be in (0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.noise),
        "noise must be in [0,1]"
    );
    row.reset();
    col.reset();

    let mut history = Vec::with_capacity(config.rounds);
    let mut score_row = 0.0;
    let mut score_col = 0.0;
    let mut weight = 1.0;
    let mut last: Option<(Action, Action, f64, f64)> = None;

    for _ in 0..config.rounds {
        let (mut a_row, mut a_col) = match last {
            None => (row.first_move(rng), col.first_move(rng)),
            Some((r_prev, c_prev, r_pay, c_pay)) => (
                row.next_move(r_prev, c_prev, r_pay, rng),
                col.next_move(c_prev, r_prev, c_pay, rng),
            ),
        };
        if config.noise > 0.0 {
            if rng.chance(config.noise) {
                a_row = a_row.other();
            }
            if rng.chance(config.noise) {
                a_col = a_col.other();
            }
        }
        let (p_row, p_col) = game.payoff(a_row, a_col);
        score_row += weight * p_row;
        score_col += weight * p_col;
        weight *= config.discount;
        history.push((a_row, a_col));
        last = Some((a_row, a_col, p_row, p_col));
    }

    MatchOutcome {
        score_row,
        score_col,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::prisoners_dilemma;
    use crate::strategy::{AllC, AllD, Grim, TitForTat};

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(3)
    }

    fn cfg(rounds: usize) -> MatchConfig {
        MatchConfig {
            rounds,
            ..MatchConfig::default()
        }
    }

    #[test]
    fn tft_vs_tft_always_cooperates() {
        let g = prisoners_dilemma();
        let out = play_match(&g, &mut TitForTat, &mut TitForTat, &cfg(100), &mut rng());
        assert_eq!(out.mutual_cooperation_rate(), 1.0);
        assert_eq!(out.score_row, 300.0);
        assert_eq!(out.score_col, 300.0);
    }

    #[test]
    fn alld_exploits_allc() {
        let g = prisoners_dilemma();
        let out = play_match(&g, &mut AllD, &mut AllC, &cfg(50), &mut rng());
        assert_eq!(out.score_row, 250.0); // 50 × T
        assert_eq!(out.score_col, 0.0); // 50 × S
    }

    #[test]
    fn tft_loses_at_most_one_round_to_alld() {
        let g = prisoners_dilemma();
        let out = play_match(&g, &mut AllD, &mut TitForTat, &cfg(100), &mut rng());
        // AllD wins the first round (T vs S), then mutual defection.
        assert_eq!(out.score_row, 5.0 + 99.0);
        assert_eq!(out.score_col, 0.0 + 99.0);
    }

    #[test]
    fn grim_punishes_forever_under_noise_free_play() {
        let g = prisoners_dilemma();
        let out = play_match(&g, &mut Grim::default(), &mut AllD, &cfg(10), &mut rng());
        // Grim cooperates once, then defects for the rest.
        let grim_defections = out
            .history
            .iter()
            .filter(|&&(r, _)| r == Action::Defect)
            .count();
        assert_eq!(grim_defections, 9);
    }

    #[test]
    fn discounting_reduces_late_round_weight() {
        let g = prisoners_dilemma();
        let discounted = MatchConfig {
            rounds: 100,
            discount: 0.9,
            noise: 0.0,
        };
        let out = play_match(&g, &mut TitForTat, &mut TitForTat, &discounted, &mut rng());
        // Geometric series: 3 × (1 − 0.9^100) / (1 − 0.9) ≈ 29.9992.
        let want = 3.0 * (1.0 - 0.9f64.powi(100)) / 0.1;
        assert!((out.score_row - want).abs() < 1e-9);
    }

    #[test]
    fn noise_breaks_perfect_cooperation() {
        let g = prisoners_dilemma();
        let noisy = MatchConfig {
            rounds: 500,
            discount: 1.0,
            noise: 0.1,
        };
        let out = play_match(&g, &mut TitForTat, &mut TitForTat, &noisy, &mut rng());
        assert!(out.mutual_cooperation_rate() < 1.0);
        assert!(out.mutual_cooperation_rate() > 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = prisoners_dilemma();
        let noisy = MatchConfig {
            rounds: 100,
            discount: 1.0,
            noise: 0.2,
        };
        let a = play_match(
            &g,
            &mut TitForTat,
            &mut Grim::default(),
            &noisy,
            &mut Xoshiro256pp::seed_from_u64(11),
        );
        let b = play_match(
            &g,
            &mut TitForTat,
            &mut Grim::default(),
            &noisy,
            &mut Xoshiro256pp::seed_from_u64(11),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn history_length_matches_rounds() {
        let g = prisoners_dilemma();
        let out = play_match(&g, &mut AllC, &mut AllC, &cfg(42), &mut rng());
        assert_eq!(out.history.len(), 42);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let g = prisoners_dilemma();
        let bad = MatchConfig {
            rounds: 0,
            ..MatchConfig::default()
        };
        let _ = play_match(&g, &mut AllC, &mut AllC, &bad, &mut rng());
    }
}
