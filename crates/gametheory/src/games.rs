//! The paper's concrete games (Figure 1) plus classic reference games.
//!
//! # Reconstruction note
//!
//! Figure 1 renders the BitTorrent Dilemma (a) and the Birds modification
//! (c) as split-cell bimatrices; the published text pins every entry:
//!
//! * Fast peers "always defect on the slow peers" — cooperating costs them
//!   the opportunity `s − f < 0`, defecting redirects the slot to another
//!   fast peer for `s` (when the slow peer cooperates) or `0`.
//! * A slow peer defecting on a cooperating fast peer "gets f from the fast
//!   peer and can form a relationship with a slow peer, where it gets s − f,
//!   thus getting a final utility of f + (s − f) = s" — the `(C, D)` slow
//!   payoff in (a) is exactly `s`, and cooperation yields the sustained `f`,
//!   making cooperation dominant for the slow player (the Dictator-game
//!   flavor the paper describes).
//! * Birds (c) re-prices the slow player's opportunity costs: cooperating
//!   with a fast peer forfeits a sustained same-class relationship
//!   (`f − s` becomes the reward, net of the forgone `s`), while defecting
//!   grabs the optimistic unchoke `f` outright — making defection dominant
//!   for *both* classes, which is the whole point of the modification.

use crate::game::Game2x2;

/// The classic Prisoner's Dilemma with the canonical T=5, R=3, P=1, S=0
/// payoffs (both players' dominant strategy is to defect).
#[must_use]
pub fn prisoners_dilemma() -> Game2x2 {
    Game2x2::new(
        "Prisoner's Dilemma",
        "row",
        "col",
        [[(3.0, 3.0), (0.0, 5.0)], [(5.0, 0.0), (1.0, 1.0)]],
    )
}

/// The Dictator game: the row player ("dictator") decides whether to share
/// a pie of size `pie`; the column player has no strategic input (their
/// action does not change any payoff). The paper likens BitTorrent's
/// fast-vs-slow interaction to this game.
#[must_use]
pub fn dictator(pie: f64, shared_fraction: f64) -> Game2x2 {
    let keep = pie * (1.0 - shared_fraction);
    let give = pie * shared_fraction;
    Game2x2::new(
        "Dictator",
        "dictator",
        "recipient",
        [
            // Cooperate = share; the recipient's action is irrelevant.
            [(keep, give), (keep, give)],
            [(pie, 0.0), (pie, 0.0)],
        ],
    )
}

/// The BitTorrent Dilemma (Figure 1a) between a fast peer (row, upload
/// capacity `f`) and a slow peer (column, upload capacity `s`), `f > s`.
///
/// Dominant strategies: fast defects (weakly), slow cooperates (weakly) —
/// the asymmetric "One-Sided Prisoner's Dilemma" the paper identifies.
///
/// # Panics
///
/// Panics unless `f > s > 0`.
#[must_use]
pub fn bittorrent_dilemma(f: f64, s: f64) -> Game2x2 {
    assert!(f > s && s > 0.0, "BitTorrent Dilemma requires f > s > 0");
    Game2x2::new(
        "BitTorrent Dilemma",
        "fast",
        "slow",
        [
            // fast C: (vs slow C) fast nets s − f, slow sustains f;
            //         (vs slow D) fast nets 0, slow grabs f then falls back
            //         to a slow partner: f + (s − f) = s.
            [(s - f, f), (0.0, s)],
            // fast D: (vs slow C) fast redirects its slot for s, slow 0;
            //         (vs slow D) nothing moves.
            [(s, 0.0), (0.0, 0.0)],
        ],
    )
}

/// The Birds payoffs (Figure 1c): the slow player's opportunity costs are
/// corrected so that *both* classes' dominant strategy is to defect on the
/// other class — peers stick to their own bandwidth class.
///
/// # Panics
///
/// Panics unless `f > s > 0`.
#[must_use]
pub fn birds(f: f64, s: f64) -> Game2x2 {
    assert!(f > s && s > 0.0, "Birds requires f > s > 0");
    Game2x2::new(
        "Birds",
        "fast",
        "slow",
        [
            // Slow cooperating with fast forfeits a sustained same-class
            // relationship: net f − s; defecting grabs the unchoke: f.
            [(s - f, f - s), (0.0, f)],
            [(s, 0.0), (0.0, 0.0)],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{Action, Dominance};

    const F: f64 = 10.0;
    const S: f64 = 4.0;

    #[test]
    fn pd_is_pd() {
        assert!(prisoners_dilemma().is_prisoners_dilemma());
    }

    #[test]
    fn bt_dilemma_is_not_pd() {
        // The paper: "the Prisoner's Dilemma is not an accurate model for
        // BitTorrent under heterogeneous classes of peers."
        assert!(!bittorrent_dilemma(F, S).is_prisoners_dilemma());
    }

    #[test]
    fn bt_dilemma_fast_defects_slow_cooperates() {
        let g = bittorrent_dilemma(F, S);
        let (fast, _) = g.dominant_row().expect("fast has a dominant strategy");
        let (slow, _) = g.dominant_col().expect("slow has a dominant strategy");
        assert_eq!(fast, Action::Defect);
        assert_eq!(slow, Action::Cooperate);
    }

    #[test]
    fn bt_dilemma_equilibrium_is_d_c() {
        // Fast defects, slow cooperates: the "regular unchoke flows from
        // slow to fast" outcome of Figure 1(b).
        let g = bittorrent_dilemma(F, S);
        assert!(g.is_nash(Action::Defect, Action::Cooperate));
    }

    #[test]
    fn bt_dilemma_slow_defection_payoff_is_s() {
        // The text's f + (s − f) = s bookkeeping.
        let g = bittorrent_dilemma(F, S);
        assert_eq!(g.payoff(Action::Cooperate, Action::Defect).1, S);
    }

    #[test]
    fn bt_dilemma_fast_cooperation_is_negative() {
        let g = bittorrent_dilemma(F, S);
        assert!(g.payoff(Action::Cooperate, Action::Cooperate).0 < 0.0);
    }

    #[test]
    fn birds_both_defect() {
        let g = birds(F, S);
        let (fast, _) = g.dominant_row().expect("fast dominant");
        let (slow, _) = g.dominant_col().expect("slow dominant");
        assert_eq!(fast, Action::Defect);
        assert_eq!(slow, Action::Defect);
        assert!(g.is_nash(Action::Defect, Action::Defect));
    }

    #[test]
    fn birds_slow_defection_beats_cooperation_against_fast_c() {
        let g = birds(F, S);
        let coop = g.payoff(Action::Cooperate, Action::Cooperate).1;
        let defect = g.payoff(Action::Cooperate, Action::Defect).1;
        assert_eq!(coop, F - S);
        assert_eq!(defect, F);
        assert!(defect > coop);
    }

    #[test]
    fn dilemmas_hold_across_bandwidth_gaps() {
        for (f, s) in [(2.0, 1.0), (100.0, 1.0), (10.0, 9.5)] {
            let a = bittorrent_dilemma(f, s);
            assert_eq!(a.dominant_row().unwrap().0, Action::Defect, "f={f} s={s}");
            assert_eq!(
                a.dominant_col().unwrap().0,
                Action::Cooperate,
                "f={f} s={s}"
            );
            let c = birds(f, s);
            assert_eq!(c.dominant_col().unwrap().0, Action::Defect, "f={f} s={s}");
        }
    }

    #[test]
    #[should_panic(expected = "f > s > 0")]
    fn bt_dilemma_requires_fast_faster() {
        let _ = bittorrent_dilemma(4.0, 10.0);
    }

    #[test]
    fn dictator_recipient_has_no_influence() {
        let g = dictator(10.0, 0.3);
        for r in Action::ALL {
            assert_eq!(
                g.payoff(r, Action::Cooperate),
                g.payoff(r, Action::Defect),
                "recipient action changed payoffs"
            );
        }
        // Keeping everything strictly dominates sharing.
        assert_eq!(g.dominant_row(), Some((Action::Defect, Dominance::Strict)));
    }
}
