//! Section 2.2: the analytical model of the BitTorrent Dilemma.
//!
//! For a peer `c` with payoffs as in Figure 1(a), the model computes the
//! expected number of games `c` *wins* per period, split into
//! reciprocation wins (`Er[X → c]`, a partner unchokes `c` back) and "free
//! game wins" (`E[X → c]`, another peer optimistically unchokes `c`), for
//! each class X ∈ {A (above), B (below), C (own)}.
//!
//! The formulae are implemented exactly as printed:
//!
//! ```text
//! BitTorrent (TFT):
//!   Er[A→c] = 0                      E[A→c] = N_A / N_r
//!   Er[B→c] = N_B / N_r              E[B→c] = N_B / N_r
//!   Er[C→c] = U_r − E[A→c] − K       K = 1 − ((1 − E[A→c])(1 − 1/U_r))^U_r
//!   E[C→c]  = (N_C − 1 − Er[C→c]) / N_r
//!
//! Birds:
//!   ErB[A→c] = ErB[B→c] = 0          (free wins unchanged)
//!   ErB[C→c] = U_r
//!   EB[C→c]  = (N_C − 1 − U_r) / N_r
//! ```

use crate::classes::ClassParams;

/// Expected game wins for a peer `c`, by source class and win type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Expectations {
    /// `Er[A→c]`: reciprocation wins from higher classes.
    pub recip_above: f64,
    /// `E[A→c]`: free game wins from higher classes.
    pub free_above: f64,
    /// `Er[B→c]`: reciprocation wins from lower classes.
    pub recip_below: f64,
    /// `E[B→c]`: free game wins from lower classes.
    pub free_below: f64,
    /// `Er[C→c]`: reciprocation wins within `c`'s class.
    pub recip_same: f64,
    /// `E[C→c]`: free game wins within `c`'s class.
    pub free_same: f64,
}

impl Expectations {
    /// Total expected wins per period.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.recip_above
            + self.free_above
            + self.recip_below
            + self.free_below
            + self.recip_same
            + self.free_same
    }

    /// Total reciprocation wins.
    #[must_use]
    pub fn total_reciprocation(&self) -> f64 {
        self.recip_above + self.recip_below + self.recip_same
    }

    /// Total free game wins.
    #[must_use]
    pub fn total_free(&self) -> f64 {
        self.free_above + self.free_below + self.free_same
    }
}

/// The partnership-break probability `K` of formula (1):
/// `K = 1 − ((1 − E[A→c])(1 − 1/U_r))^U_r` — the chance that at least one
/// of `c`'s current same-class partners is lured away by a free win from a
/// higher class within the period.
#[must_use]
pub fn break_probability_k(params: &ClassParams) -> f64 {
    let e_a = f64::from(params.n_above) / params.nr();
    let ur = f64::from(params.unchoke_slots);
    1.0 - ((1.0 - e_a) * (1.0 - 1.0 / ur)).powf(ur)
}

/// The Appendix's `K'` variant with exponent `U_r − 1` (used for incumbent
/// BitTorrent peers when one slot's dynamics are pinned by the deviant).
#[must_use]
pub fn break_probability_k_prime(params: &ClassParams) -> f64 {
    let e_a = f64::from(params.n_above) / params.nr();
    let ur = f64::from(params.unchoke_slots);
    1.0 - ((1.0 - e_a) * (1.0 - 1.0 / ur)).powf(ur - 1.0)
}

/// Expected wins for a peer `c` when *everyone* (including `c`) plays
/// BitTorrent's TFT, per Section 2.2.
#[must_use]
pub fn bittorrent(params: &ClassParams) -> Expectations {
    let nr = params.nr();
    let ur = f64::from(params.unchoke_slots);
    let e_a = f64::from(params.n_above) / nr;
    let e_b = f64::from(params.n_below) / nr;
    let k = break_probability_k(params);
    let recip_same = ur - e_a - k;
    let free_same = (f64::from(params.n_class) - 1.0 - recip_same) / nr;
    Expectations {
        recip_above: 0.0,
        free_above: e_a,
        recip_below: e_b,
        free_below: e_b,
        recip_same,
        free_same,
    }
}

/// Expected wins for a peer `c` when everyone plays Birds, per Section 2.3.
#[must_use]
pub fn birds(params: &ClassParams) -> Expectations {
    let nr = params.nr();
    let ur = f64::from(params.unchoke_slots);
    let e_a = f64::from(params.n_above) / nr;
    let e_b = f64::from(params.n_below) / nr;
    Expectations {
        recip_above: 0.0,
        free_above: e_a,
        recip_below: 0.0,
        free_below: e_b,
        recip_same: ur,
        free_same: (f64::from(params.n_class) - 1.0 - ur) / nr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ClassParams {
        ClassParams::example_swarm()
    }

    #[test]
    fn bittorrent_no_reciprocation_from_above() {
        assert_eq!(bittorrent(&params()).recip_above, 0.0);
    }

    #[test]
    fn free_wins_proportional_to_class_sizes() {
        let p = params();
        let e = bittorrent(&p);
        assert!((e.free_above - f64::from(p.n_above) / p.nr()).abs() < 1e-12);
        assert!((e.free_below - f64::from(p.n_below) / p.nr()).abs() < 1e-12);
    }

    #[test]
    fn k_is_a_probability() {
        for (na, nb, nc, ur) in [(17, 16, 17, 4), (30, 5, 15, 4), (10, 40, 9, 7)] {
            let p = ClassParams::new(na, nb, nc, ur);
            let k = break_probability_k(&p);
            assert!((0.0..=1.0).contains(&k), "K={k} out of range");
            let kp = break_probability_k_prime(&p);
            assert!((0.0..=1.0).contains(&kp));
            // K (exponent U_r) ≥ K' (exponent U_r − 1).
            assert!(k >= kp);
        }
    }

    #[test]
    fn bittorrent_same_class_reciprocation_below_slot_count() {
        let e = bittorrent(&params());
        let ur = f64::from(params().unchoke_slots);
        assert!(e.recip_same < ur);
        assert!(e.recip_same > 0.0);
    }

    #[test]
    fn birds_keeps_all_slots_in_class() {
        let p = params();
        let e = birds(&p);
        assert_eq!(e.recip_same, f64::from(p.unchoke_slots));
        assert_eq!(e.recip_below, 0.0);
    }

    #[test]
    fn birds_beats_bittorrent_in_reciprocation_within_class() {
        // Birds peers never break same-class partnerships (no K leakage).
        let p = params();
        assert!(birds(&p).recip_same > bittorrent(&p).recip_same);
    }

    #[test]
    fn totals_decompose() {
        for e in [bittorrent(&params()), birds(&params())] {
            assert!((e.total() - (e.total_reciprocation() + e.total_free())).abs() < 1e-12);
        }
    }

    #[test]
    fn more_upper_class_pressure_lowers_bt_reciprocation() {
        // Increasing N_A increases free-win temptation and so K, which
        // erodes same-class reciprocation for BitTorrent.
        let small = ClassParams::new(10, 16, 17, 4);
        let large = ClassParams::new(30, 16, 17, 4);
        assert!(bittorrent(&large).recip_same < bittorrent(&small).recip_same);
    }
}
