//! Axelrod-style round-robin tournaments.
//!
//! The paper credits Axelrod's *Evolution of Cooperation* simulations as
//! the inspiration for Design Space Analysis: "A simulation based approach
//! has been used by Axelrod [1] to model strategic interactions in repeated
//! games." This module reproduces that methodology — every strategy plays
//! every other strategy (and optionally itself), cumulative scores decide
//! the ranking — and is the conceptual bridge between Section 2's
//! analytical games and Section 3's PRA tournament.

use crate::game::Game2x2;
use crate::iterated::{play_match, MatchConfig};
use crate::strategy::Strategy;
use dsa_workloads::seeds::SeedSeq;

/// Configuration of a round-robin tournament.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TournamentConfig {
    /// Match configuration (rounds, discount, noise).
    pub match_config: MatchConfig,
    /// Repetitions of every pairing (averaged).
    pub repetitions: usize,
    /// Whether strategies also play a copy of themselves.
    pub self_play: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        Self {
            match_config: MatchConfig::default(),
            repetitions: 5,
            self_play: true,
            seed: 0,
        }
    }
}

/// One strategy's tournament results.
#[derive(Debug, Clone, PartialEq)]
pub struct Standing {
    /// Strategy name.
    pub name: &'static str,
    /// Mean per-match score.
    pub mean_score: f64,
    /// Number of matches played.
    pub matches: usize,
}

/// Runs the round-robin and returns standings sorted best-first.
///
/// `make_field` is called whenever a fresh set of strategies is needed
/// (strategies are stateful; each pairing gets fresh instances so that
/// self-play works and no state leaks between matches).
pub fn round_robin(
    game: &Game2x2,
    make_field: impl Fn() -> Vec<Box<dyn Strategy>>,
    config: &TournamentConfig,
) -> Vec<Standing> {
    let probe = make_field();
    let n = probe.len();
    assert!(n >= 2, "tournament needs at least two strategies");
    let names: Vec<&'static str> = probe.iter().map(|s| s.name()).collect();

    let mut totals = vec![0.0f64; n];
    let mut played = vec![0usize; n];
    let root = SeedSeq::new(config.seed);

    for i in 0..n {
        let j_start = if config.self_play { i } else { i + 1 };
        for j in j_start..n {
            for rep in 0..config.repetitions {
                // Fresh instances per match; index-derived seed keeps the
                // schedule deterministic regardless of iteration order.
                let mut field_a = make_field();
                let mut field_b = make_field();
                let mut rng = root.child(i as u64).child(j as u64).child(rep as u64).rng();
                let out = play_match(
                    game,
                    field_a[i].as_mut(),
                    field_b[j].as_mut(),
                    &config.match_config,
                    &mut rng,
                );
                totals[i] += out.score_row;
                played[i] += 1;
                if i != j {
                    totals[j] += out.score_col;
                    played[j] += 1;
                } else {
                    // Self-play: both seats belong to the same strategy.
                    totals[i] += out.score_col;
                    played[i] += 1;
                }
            }
        }
    }

    let mut standings: Vec<Standing> = (0..n)
        .map(|i| Standing {
            name: names[i],
            mean_score: totals[i] / played[i].max(1) as f64,
            matches: played[i],
        })
        .collect();
    standings.sort_by(|a, b| {
        b.mean_score
            .partial_cmp(&a.mean_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    standings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::prisoners_dilemma;
    use crate::strategy::{classic_field, AllC, AllD, TitForTat};

    fn two_strategy_field() -> Vec<Box<dyn Strategy>> {
        vec![Box::new(AllD), Box::new(AllC)]
    }

    #[test]
    fn alld_beats_allc_in_isolation() {
        let g = prisoners_dilemma();
        let standings = round_robin(&g, two_strategy_field, &TournamentConfig::default());
        assert_eq!(standings[0].name, "AllD");
    }

    #[test]
    fn reciprocators_prosper_in_mixed_field() {
        // Axelrod's qualitative result: in a field with enough
        // reciprocators, TFT outscores AllD.
        let g = prisoners_dilemma();
        let field = || -> Vec<Box<dyn Strategy>> {
            vec![
                Box::new(TitForTat),
                Box::new(TitForTat),
                Box::new(TitForTat),
                Box::new(AllC),
                Box::new(AllD),
            ]
        };
        let standings = round_robin(&g, field, &TournamentConfig::default());
        let rank = |name: &str| standings.iter().position(|s| s.name == name).unwrap();
        assert!(
            rank("TFT") < rank("AllD"),
            "expected TFT above AllD: {standings:?}"
        );
    }

    #[test]
    fn classic_field_runs_and_ranks_everyone() {
        let g = prisoners_dilemma();
        let standings = round_robin(&g, classic_field, &TournamentConfig::default());
        assert_eq!(standings.len(), 7);
        // Sorted best-first.
        for w in standings.windows(2) {
            assert!(w[0].mean_score >= w[1].mean_score);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = prisoners_dilemma();
        let a = round_robin(&g, classic_field, &TournamentConfig::default());
        let b = round_robin(&g, classic_field, &TournamentConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_noisy_outcome() {
        let g = prisoners_dilemma();
        let noisy = TournamentConfig {
            match_config: MatchConfig {
                rounds: 50,
                discount: 1.0,
                noise: 0.2,
            },
            repetitions: 1,
            self_play: false,
            seed: 1,
        };
        let mut other = noisy;
        other.seed = 2;
        let a = round_robin(&g, classic_field, &noisy);
        let b = round_robin(&g, classic_field, &other);
        // Scores should differ somewhere (same ranking is fine).
        let scores = |v: &[Standing]| v.iter().map(|s| s.mean_score).collect::<Vec<_>>();
        assert_ne!(scores(&a), scores(&b));
    }

    #[test]
    fn self_play_toggle_changes_match_counts() {
        let g = prisoners_dilemma();
        let with = round_robin(&g, two_strategy_field, &TournamentConfig::default());
        let without = round_robin(
            &g,
            two_strategy_field,
            &TournamentConfig {
                self_play: false,
                ..TournamentConfig::default()
            },
        );
        assert!(with[0].matches > without[0].matches);
    }
}
