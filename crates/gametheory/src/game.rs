//! Two-player, two-action normal-form games.

use std::fmt;

/// An action in a 2×2 game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Cooperate (in BitTorrent terms: upload / unchoke).
    Cooperate,
    /// Defect (withhold upload / choke).
    Defect,
}

impl Action {
    /// All actions, in a fixed order.
    pub const ALL: [Action; 2] = [Action::Cooperate, Action::Defect];

    /// Index into payoff arrays: Cooperate = 0, Defect = 1.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Action::Cooperate => 0,
            Action::Defect => 1,
        }
    }

    /// The other action.
    #[must_use]
    pub fn other(self) -> Action {
        match self {
            Action::Cooperate => Action::Defect,
            Action::Defect => Action::Cooperate,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Cooperate => write!(f, "C"),
            Action::Defect => write!(f, "D"),
        }
    }
}

/// How strongly a strategy dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// Strictly better against every opponent action.
    Strict,
    /// At least as good against every opponent action, better against one.
    Weak,
}

/// A 2×2 bimatrix game.
///
/// `payoffs[r][c]` is the `(row, column)` payoff pair when the row player
/// plays `Action::ALL[r]` and the column player plays `Action::ALL[c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Game2x2 {
    /// Descriptive name (e.g. `"BitTorrent Dilemma"`).
    pub name: String,
    /// Row-player label (e.g. `"fast"`).
    pub row_label: String,
    /// Column-player label (e.g. `"slow"`).
    pub col_label: String,
    payoffs: [[(f64, f64); 2]; 2],
}

impl Game2x2 {
    /// Creates a game from its payoff matrix.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        row_label: impl Into<String>,
        col_label: impl Into<String>,
        payoffs: [[(f64, f64); 2]; 2],
    ) -> Self {
        Self {
            name: name.into(),
            row_label: row_label.into(),
            col_label: col_label.into(),
            payoffs,
        }
    }

    /// The `(row, column)` payoffs for an action profile.
    #[must_use]
    pub fn payoff(&self, row: Action, col: Action) -> (f64, f64) {
        self.payoffs[row.index()][col.index()]
    }

    /// The row player's best responses to a column action (ties allowed).
    #[must_use]
    pub fn best_responses_row(&self, col: Action) -> Vec<Action> {
        let c = self.payoff(Action::Cooperate, col).0;
        let d = self.payoff(Action::Defect, col).0;
        best_of(c, d)
    }

    /// The column player's best responses to a row action (ties allowed).
    #[must_use]
    pub fn best_responses_col(&self, row: Action) -> Vec<Action> {
        let c = self.payoff(row, Action::Cooperate).1;
        let d = self.payoff(row, Action::Defect).1;
        best_of(c, d)
    }

    /// The row player's dominant action, if any, with its strength.
    #[must_use]
    pub fn dominant_row(&self) -> Option<(Action, Dominance)> {
        dominant(|mine, theirs| self.payoff(mine, theirs).0)
    }

    /// The column player's dominant action, if any, with its strength.
    #[must_use]
    pub fn dominant_col(&self) -> Option<(Action, Dominance)> {
        dominant(|mine, theirs| self.payoff(theirs, mine).1)
    }

    /// Whether the profile is a pure-strategy Nash equilibrium (neither
    /// player has a strictly profitable unilateral deviation).
    #[must_use]
    pub fn is_nash(&self, row: Action, col: Action) -> bool {
        let (r, c) = self.payoff(row, col);
        let r_dev = self.payoff(row.other(), col).0;
        let c_dev = self.payoff(row, col.other()).1;
        r >= r_dev && c >= c_dev
    }

    /// All pure-strategy Nash equilibria.
    #[must_use]
    pub fn pure_nash(&self) -> Vec<(Action, Action)> {
        let mut out = Vec::new();
        for r in Action::ALL {
            for c in Action::ALL {
                if self.is_nash(r, c) {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// Whether the game is a (symmetric) Prisoner's Dilemma:
    /// T > R > P > S for both players, with mutual defection the unique
    /// dominant-strategy equilibrium.
    #[must_use]
    pub fn is_prisoners_dilemma(&self) -> bool {
        let r = self.payoff(Action::Cooperate, Action::Cooperate);
        let s = self.payoff(Action::Cooperate, Action::Defect);
        let t = self.payoff(Action::Defect, Action::Cooperate);
        let p = self.payoff(Action::Defect, Action::Defect);
        let row_ok = t.0 > r.0 && r.0 > p.0 && p.0 > s.0;
        let col_ok = s.1 > r.1 && r.1 > p.1 && p.1 > t.1;
        row_ok && col_ok
    }
}

fn best_of(c: f64, d: f64) -> Vec<Action> {
    if c > d {
        vec![Action::Cooperate]
    } else if d > c {
        vec![Action::Defect]
    } else {
        vec![Action::Cooperate, Action::Defect]
    }
}

fn dominant(payoff: impl Fn(Action, Action) -> f64) -> Option<(Action, Dominance)> {
    for mine in Action::ALL {
        let other = mine.other();
        let mut at_least_as_good = true;
        let mut strictly_better_somewhere = false;
        let mut strictly_better_everywhere = true;
        for theirs in Action::ALL {
            let a = payoff(mine, theirs);
            let b = payoff(other, theirs);
            if a < b {
                at_least_as_good = false;
            }
            if a > b {
                strictly_better_somewhere = true;
            } else {
                strictly_better_everywhere = false;
            }
        }
        if at_least_as_good && strictly_better_somewhere {
            let strength = if strictly_better_everywhere {
                Dominance::Strict
            } else {
                Dominance::Weak
            };
            return Some((mine, strength));
        }
    }
    None
}

impl fmt::Display for Game2x2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} vs {})",
            self.name, self.row_label, self.col_label
        )?;
        writeln!(f, "{:>22} {:>14}", "C", "D")?;
        for r in Action::ALL {
            write!(f, "{r} ")?;
            for c in Action::ALL {
                let (pr, pc) = self.payoff(r, c);
                write!(f, " ({pr:>5.1},{pc:>5.1})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard PD payoffs: R=3, S=0, T=5, P=1.
    fn pd() -> Game2x2 {
        Game2x2::new(
            "PD",
            "row",
            "col",
            [[(3.0, 3.0), (0.0, 5.0)], [(5.0, 0.0), (1.0, 1.0)]],
        )
    }

    #[test]
    fn action_indexing_and_other() {
        assert_eq!(Action::Cooperate.index(), 0);
        assert_eq!(Action::Defect.index(), 1);
        assert_eq!(Action::Cooperate.other(), Action::Defect);
        assert_eq!(format!("{}", Action::Cooperate), "C");
    }

    #[test]
    fn pd_payoffs() {
        let g = pd();
        assert_eq!(g.payoff(Action::Defect, Action::Cooperate), (5.0, 0.0));
        assert_eq!(g.payoff(Action::Cooperate, Action::Cooperate), (3.0, 3.0));
    }

    #[test]
    fn pd_defect_is_strictly_dominant() {
        let g = pd();
        assert_eq!(g.dominant_row(), Some((Action::Defect, Dominance::Strict)));
        assert_eq!(g.dominant_col(), Some((Action::Defect, Dominance::Strict)));
    }

    #[test]
    fn pd_unique_nash_is_mutual_defection() {
        let g = pd();
        assert_eq!(g.pure_nash(), vec![(Action::Defect, Action::Defect)]);
        assert!(g.is_prisoners_dilemma());
    }

    #[test]
    fn best_responses_in_pd() {
        let g = pd();
        assert_eq!(
            g.best_responses_row(Action::Cooperate),
            vec![Action::Defect]
        );
        assert_eq!(g.best_responses_col(Action::Defect), vec![Action::Defect]);
    }

    #[test]
    fn coordination_game_has_two_equilibria() {
        let g = Game2x2::new(
            "coord",
            "a",
            "b",
            [[(2.0, 2.0), (0.0, 0.0)], [(0.0, 0.0), (1.0, 1.0)]],
        );
        let nash = g.pure_nash();
        assert_eq!(nash.len(), 2);
        assert!(nash.contains(&(Action::Cooperate, Action::Cooperate)));
        assert!(nash.contains(&(Action::Defect, Action::Defect)));
        assert_eq!(g.dominant_row(), None);
        assert!(!g.is_prisoners_dilemma());
    }

    #[test]
    fn weak_dominance_detected() {
        // Row: D weakly dominates (ties when col defects).
        let g = Game2x2::new(
            "weak",
            "a",
            "b",
            [[(1.0, 0.0), (0.0, 0.0)], [(2.0, 0.0), (0.0, 0.0)]],
        );
        assert_eq!(g.dominant_row(), Some((Action::Defect, Dominance::Weak)));
    }

    #[test]
    fn ties_produce_both_best_responses() {
        let g = Game2x2::new(
            "tie",
            "a",
            "b",
            [[(1.0, 1.0), (1.0, 1.0)], [(1.0, 1.0), (1.0, 1.0)]],
        );
        assert_eq!(g.best_responses_row(Action::Cooperate).len(), 2);
        assert_eq!(g.pure_nash().len(), 4);
    }

    #[test]
    fn display_contains_name_and_payoffs() {
        let s = format!("{}", pd());
        assert!(s.contains("PD"));
        assert!(s.contains("5.0"));
    }
}
