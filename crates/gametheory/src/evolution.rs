//! Evolutionary dynamics over strategy populations.
//!
//! The paper's related work leans on evolutionary game theory: Feldman et
//! al. [7] applied "an evolutionary game-theoretic analysis on a P2P
//! design space", and Mailath [19] ("Do people play Nash equilibrium?
//! Lessons from evolutionary game theory") motivates why equilibrium
//! predictions need dynamic justification. This module provides the two
//! standard tools:
//!
//! * [`replicator_step`]/[`replicator_trajectory`] — the discrete-time
//!   replicator dynamic over a symmetric bimatrix game: strategies grow in
//!   proportion to how their payoff compares to the population average.
//! * [`moran_fixation`] — finite-population Moran-process fixation
//!   probabilities by simulation, the stochastic counterpart used to test
//!   whether a mutant protocol can take over a finite swarm.
//!
//! Both operate on *payoff matrices over strategy profiles*, so any 2×2
//! game from [`crate::games`] (interpreted as a symmetric population game)
//! or an empirical payoff table measured by the simulators can be plugged
//! in.

use dsa_workloads::rng::Xoshiro256pp;

/// One step of the discrete-time replicator dynamic.
///
/// `payoff[i][j]` is the payoff of strategy `i` against strategy `j`;
/// `shares` is the current population mix (must sum to ~1). Returns the
/// next mix. Payoffs are shifted to be positive internally, which leaves
/// the dynamic's fixed points and orbits unchanged.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or `shares` is empty.
#[must_use]
pub fn replicator_step(payoff: &[Vec<f64>], shares: &[f64]) -> Vec<f64> {
    let n = shares.len();
    assert!(n > 0, "empty population");
    assert_eq!(payoff.len(), n, "payoff rows");
    assert!(payoff.iter().all(|r| r.len() == n), "payoff columns");

    // Fitness of each strategy against the current mix.
    let fitness: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| payoff[i][j] * shares[j]).sum())
        .collect();
    // Shift so all fitnesses are positive (replicator is invariant to
    // common shifts in expected payoff denominators when renormalized).
    let min_fit = fitness.iter().cloned().fold(f64::INFINITY, f64::min);
    let shift = if min_fit <= 0.0 { -min_fit + 1e-9 } else { 0.0 };
    let weighted: Vec<f64> = shares
        .iter()
        .zip(&fitness)
        .map(|(&s, &f)| s * (f + shift))
        .collect();
    let total: f64 = weighted.iter().sum();
    if total <= 0.0 {
        return shares.to_vec();
    }
    weighted.iter().map(|w| w / total).collect()
}

/// Iterates the replicator dynamic and returns the trajectory (including
/// the initial state).
#[must_use]
pub fn replicator_trajectory(payoff: &[Vec<f64>], initial: &[f64], steps: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(steps + 1);
    out.push(initial.to_vec());
    let mut current = initial.to_vec();
    for _ in 0..steps {
        current = replicator_step(payoff, &current);
        out.push(current.clone());
    }
    out
}

/// Whether a strategy mix is an (approximate) rest point of the dynamic.
#[must_use]
pub fn is_rest_point(payoff: &[Vec<f64>], shares: &[f64], tolerance: f64) -> bool {
    let next = replicator_step(payoff, shares);
    shares
        .iter()
        .zip(&next)
        .all(|(a, b)| (a - b).abs() <= tolerance)
}

/// Iterates the replicator dynamic from `initial` until the per-step
/// change drops below `tolerance` (max-norm) or `max_steps` is reached.
/// Returns the final mix and the number of steps actually taken — the
/// rest-point finder behind basin-of-attraction sampling.
#[must_use]
pub fn converge(
    payoff: &[Vec<f64>],
    initial: &[f64],
    max_steps: usize,
    tolerance: f64,
) -> (Vec<f64>, usize) {
    let mut current = initial.to_vec();
    for step in 0..max_steps {
        let next = replicator_step(payoff, &current);
        let delta = current
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        current = next;
        if delta <= tolerance {
            return (current, step + 1);
        }
    }
    (current, max_steps)
}

/// Restricts a `k × k` population game to the 2×2 game between
/// `resident` (strategy 0 of the result) and `mutant` (strategy 1) — the
/// bridge from empirical payoff matrices to the two-strategy
/// finite-population primitives.
///
/// # Panics
///
/// Panics when either index is out of range.
#[must_use]
pub fn pair_payoffs(payoff: &[Vec<f64>], resident: usize, mutant: usize) -> Vec<Vec<f64>> {
    vec![
        vec![payoff[resident][resident], payoff[resident][mutant]],
        vec![payoff[mutant][resident], payoff[mutant][mutant]],
    ]
}

/// Finite-population invasion analysis: the fixation probability of a
/// single `mutant`-strategy invader in a population of `n − 1`
/// `resident`s, under the `k × k` (possibly empirical) payoff matrix —
/// [`moran_fixation`] on the [`pair_payoffs`] restriction. The neutral
/// benchmark is `1 / n`: a mutant fixing more often than that invades the
/// resident protocol in finite populations even when the infinite-
/// population replicator dynamic would hold it out.
///
/// # Panics
///
/// Panics when an index is out of range, `n < 2` or `trials == 0`.
#[must_use]
pub fn invasion_fixation(
    payoff: &[Vec<f64>],
    resident: usize,
    mutant: usize,
    n: usize,
    trials: usize,
    rng: &mut Xoshiro256pp,
) -> f64 {
    moran_fixation(&pair_payoffs(payoff, resident, mutant), n, trials, rng)
}

/// Estimates the fixation probability of a single mutant of strategy 1 in
/// a population of `n − 1` residents of strategy 0, under a Moran process
/// with payoff-proportional reproduction, by Monte-Carlo simulation.
///
/// # Panics
///
/// Panics unless `n >= 2` and `trials >= 1`.
#[must_use]
pub fn moran_fixation(payoff: &[Vec<f64>], n: usize, trials: usize, rng: &mut Xoshiro256pp) -> f64 {
    assert!(n >= 2, "population too small");
    assert!(trials >= 1, "need at least one trial");
    assert_eq!(payoff.len(), 2, "moran_fixation is two-strategy");
    let mut fixed = 0usize;
    for _ in 0..trials {
        let mut mutants = 1usize;
        loop {
            if mutants == 0 {
                break;
            }
            if mutants == n {
                fixed += 1;
                break;
            }
            let residents = n - mutants;
            // Expected payoffs with self-exclusion.
            let f_res = (payoff[0][0] * (residents - 1) as f64 + payoff[0][1] * mutants as f64)
                / (n - 1) as f64;
            let f_mut = (payoff[1][0] * residents as f64 + payoff[1][1] * (mutants - 1) as f64)
                / (n - 1) as f64;
            // Shift positive for selection weights.
            let base = f_res.min(f_mut);
            let shift = if base <= 0.0 { -base + 1e-9 } else { 0.0 };
            let w_res = (f_res + shift) * residents as f64;
            let w_mut = (f_mut + shift) * mutants as f64;
            // Birth: payoff-proportional; death: uniform.
            let birth_is_mutant = rng.next_f64() * (w_res + w_mut) < w_mut;
            let death_is_mutant = rng.next_f64() * (n as f64) < mutants as f64;
            match (birth_is_mutant, death_is_mutant) {
                (true, false) => mutants += 1,
                (false, true) => mutants -= 1,
                _ => {}
            }
        }
    }
    fixed as f64 / trials as f64
}

/// Builds the symmetric population-game payoff matrix of a 2×2 game
/// (row player's payoffs, strategies = {Cooperate, Defect}).
#[must_use]
pub fn symmetric_payoffs(game: &crate::game::Game2x2) -> Vec<Vec<f64>> {
    use crate::game::Action;
    let a = |r, c| game.payoff(r, c).0;
    vec![
        vec![
            a(Action::Cooperate, Action::Cooperate),
            a(Action::Cooperate, Action::Defect),
        ],
        vec![
            a(Action::Defect, Action::Cooperate),
            a(Action::Defect, Action::Defect),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::prisoners_dilemma;

    fn pd_payoffs() -> Vec<Vec<f64>> {
        symmetric_payoffs(&prisoners_dilemma())
    }

    #[test]
    fn defection_takes_over_in_pd() {
        // Replicator dynamics drive the PD to all-defect.
        let traj = replicator_trajectory(&pd_payoffs(), &[0.9, 0.1], 500);
        let last = traj.last().unwrap();
        assert!(last[1] > 0.99, "defector share {}", last[1]);
    }

    #[test]
    fn shares_remain_a_distribution() {
        let traj = replicator_trajectory(&pd_payoffs(), &[0.5, 0.5], 100);
        for mix in traj {
            let sum: f64 = mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(mix.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn monomorphic_states_are_rest_points() {
        let p = pd_payoffs();
        assert!(is_rest_point(&p, &[1.0, 0.0], 1e-12));
        assert!(is_rest_point(&p, &[0.0, 1.0], 1e-12));
        assert!(!is_rest_point(&p, &[0.5, 0.5], 1e-6));
    }

    #[test]
    fn coordination_game_bistability() {
        // Stag hunt: both all-C and all-D are attractors; the basin
        // boundary sits between them.
        let payoff = vec![vec![4.0, 0.0], vec![3.0, 2.0]];
        let to_c = replicator_trajectory(&payoff, &[0.9, 0.1], 300);
        let to_d = replicator_trajectory(&payoff, &[0.1, 0.9], 300);
        assert!(to_c.last().unwrap()[0] > 0.99);
        assert!(to_d.last().unwrap()[1] > 0.99);
    }

    #[test]
    fn converge_finds_the_pd_rest_point_and_reports_steps() {
        let p = pd_payoffs();
        let (rest, steps) = converge(&p, &[0.5, 0.5], 10_000, 1e-12);
        assert!(rest[1] > 0.999, "defectors fix: {rest:?}");
        assert!(is_rest_point(&p, &rest, 1e-9));
        assert!(steps > 0 && steps < 10_000, "converged early ({steps})");
        // Starting at a rest point converges immediately.
        let (_, at_rest) = converge(&p, &[0.0, 1.0], 10_000, 1e-12);
        assert_eq!(at_rest, 1);
    }

    #[test]
    fn pair_payoffs_restricts_the_matrix() {
        let m = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ];
        assert_eq!(pair_payoffs(&m, 2, 0), vec![vec![9.0, 7.0], vec![3.0, 1.0]]);
        // Same-index restriction is the neutral game.
        assert_eq!(pair_payoffs(&m, 1, 1), vec![vec![5.0, 5.0], vec![5.0, 5.0]]);
    }

    #[test]
    fn invasion_fixation_matches_direct_moran_on_the_restriction() {
        let m = vec![
            vec![3.0, 3.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![5.0, 0.0, 2.0],
        ];
        let mut a = Xoshiro256pp::seed_from_u64(21);
        let mut b = Xoshiro256pp::seed_from_u64(21);
        let via_helper = invasion_fixation(&m, 0, 1, 10, 500, &mut a);
        let direct = moran_fixation(&pair_payoffs(&m, 0, 1), 10, 500, &mut b);
        assert_eq!(via_helper, direct);
        // A disadvantaged mutant (payoff 1 vs resident 3) rarely fixes.
        assert!(via_helper < 0.05, "p={via_helper}");
    }

    #[test]
    fn neutral_drift_fixation_matches_theory() {
        // With identical payoffs, fixation probability of one mutant is
        // 1/n.
        let payoff = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let n = 10;
        let p = moran_fixation(&payoff, n, 4000, &mut rng);
        assert!((p - 1.0 / n as f64).abs() < 0.02, "p={p}");
    }

    #[test]
    fn advantageous_mutant_fixes_more_often_than_neutral() {
        let neutral = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let favored = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let p_neutral = moran_fixation(&neutral, 8, 3000, &mut rng);
        let p_favored = moran_fixation(&favored, 8, 3000, &mut rng);
        assert!(p_favored > p_neutral + 0.05, "{p_favored} vs {p_neutral}");
    }

    #[test]
    fn deviant_disadvantage_suppresses_fixation() {
        // AllD mutant in a TFT-like world modelled as payoff disadvantage.
        let payoff = vec![vec![3.0, 3.0], vec![1.0, 1.0]];
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let p = moran_fixation(&payoff, 10, 3000, &mut rng);
        assert!(p < 0.05, "p={p}");
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn moran_rejects_tiny_population() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = moran_fixation(&[vec![1.0, 1.0], vec![1.0, 1.0]], 1, 10, &mut rng);
    }
}
