//! The Appendix deviation analysis: BitTorrent is not a Nash equilibrium,
//! Birds is.
//!
//! Both proofs compare the expected game wins of a single *deviant* peer
//! against the *incumbent* majority in the deviant's own bandwidth class
//! (wins against other classes are identical for both and cancel):
//!
//! * **Birds deviant in a BitTorrent swarm** — the deviant refuses to
//!   reciprocate upward, so it never sacrifices a same-class slot to a
//!   higher class; it out-wins the BT incumbents ⇒ BT is **not** a NE.
//! * **BitTorrent deviant in a Birds swarm** — the deviant wastes slots
//!   reciprocating to higher classes that never reciprocate back; the Birds
//!   incumbents out-win it ⇒ unilateral deviation does not pay ⇒ Birds
//!   **is** a NE (the paper proves the TFT-deviation case and notes the
//!   other class-based deviations are analogous).

use crate::analytics::{break_probability_k, break_probability_k_prime};
use crate::classes::ClassParams;

/// Expected per-period wins of the deviant and of an average incumbent in
/// the deviant's class (within-class wins plus the class-external terms,
/// which are equal for both and included for completeness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationOutcome {
    /// Total expected wins of the single deviant peer.
    pub deviant: f64,
    /// Total expected wins of an average incumbent peer in the same class.
    pub incumbent: f64,
}

impl DeviationOutcome {
    /// Whether deviating is strictly profitable.
    #[must_use]
    pub fn deviation_pays(&self) -> bool {
        self.deviant > self.incumbent
    }
}

/// Class-external win terms shared by deviant and incumbent: free wins
/// from above (`N_A/N_r`) and both win kinds from below (`2·N_B/N_r` for
/// TFT-style bookkeeping; the Appendix notes these "do not change").
fn shared_external(params: &ClassParams) -> f64 {
    let nr = params.nr();
    f64::from(params.n_above) / nr + 2.0 * f64::from(params.n_below) / nr
}

/// One Birds deviant inside an otherwise all-BitTorrent swarm
/// (Appendix, first part).
#[must_use]
pub fn birds_deviant_in_bt_swarm(params: &ClassParams) -> DeviationOutcome {
    let nr = params.nr();
    let ur = f64::from(params.unchoke_slots);
    let nc = f64::from(params.n_class);
    let nc_prime = nc - 1.0;
    let e_a = f64::from(params.n_above) / nr;
    let k = break_probability_k(params);
    let k_prime = break_probability_k_prime(params);

    // Reciprocation wins in class C.
    // Deviant (Birds): keeps every slot in class, loses only to partners
    // lured upward: ErB[C→c]' = U_r − K.
    let recip_deviant = ur - k;
    // Incumbent (BT): additionally leaks E[A→c] itself and suffers the
    // mixed-neighbour correction: Er[C→c]' = U_r − K − E[A→c]
    //   − (U_r/N_C')(K + K').
    let recip_incumbent = ur - k - e_a - (ur / nc_prime) * (k + k_prime);

    // Free game wins in class C (Appendix formulae).
    // EB[C→c]' = (N_C'/N_C)(N_C − Er[C→c]')/N_r.
    let free_deviant = (nc_prime / nc) * (nc - recip_incumbent) / nr;
    // E[C→c]'  = EB[C→c]' + (N_C − ErB[C→c]')/(N_C·N_r).
    let free_incumbent = free_deviant + (nc - recip_deviant) / (nc * nr);

    let ext = shared_external(params);
    DeviationOutcome {
        deviant: ext + recip_deviant + free_deviant,
        incumbent: ext + recip_incumbent + free_incumbent,
    }
}

/// One BitTorrent deviant inside an otherwise all-Birds swarm
/// (Appendix, second part).
#[must_use]
pub fn bt_deviant_in_birds_swarm(params: &ClassParams) -> DeviationOutcome {
    let nr = params.nr();
    let ur = f64::from(params.unchoke_slots);
    let nc = f64::from(params.n_class);
    let nc_prime = nc - 1.0;
    let e_a = f64::from(params.n_above) / nr;

    // Reciprocation wins in class C.
    // Incumbent (Birds): ErB[C→c]'' = U_r − (U_r/N_C')·E[A→c].
    let recip_incumbent = ur - (ur / nc_prime) * e_a;
    // Deviant (BT): Er[C→c]'' = U_r − E[A→c] (it burns slots upward).
    let recip_deviant = ur - e_a;

    // Free game wins (Appendix; N − U_r − 1 = N_r).
    // E[C→c]'' = (N_C'/N_C) · (N_C' − ErB[C→c]) / N_r, with ErB[C→c] the
    // homogeneous-Birds value U_r.
    let free_deviant = (nc_prime / nc) * (nc_prime - ur) / nr;
    // EB[C→c]'' = E[C→c]'' + (N_C' − Er[C→c]) / (N_C'·N_r), with Er[C→c]
    // the homogeneous-BT value.
    let bt_homogeneous_recip = crate::analytics::bittorrent(params).recip_same;
    let free_incumbent = free_deviant + (nc_prime - bt_homogeneous_recip) / (nc_prime * nr);

    let ext = shared_external(params);
    DeviationOutcome {
        deviant: ext + recip_deviant + free_deviant,
        incumbent: ext + recip_incumbent + free_incumbent,
    }
}

/// Whether BitTorrent's TFT is a Nash equilibrium under the Section 2
/// abstraction (it is not: a Birds deviant profits).
#[must_use]
pub fn bittorrent_is_nash(params: &ClassParams) -> bool {
    !birds_deviant_in_bt_swarm(params).deviation_pays()
}

/// Whether Birds is a Nash equilibrium against a BitTorrent deviation
/// (it is: the deviant loses).
#[must_use]
pub fn birds_is_nash(params: &ClassParams) -> bool {
    !bt_deviant_in_birds_swarm(params).deviation_pays()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_params() -> Vec<ClassParams> {
        vec![
            ClassParams::example_swarm(),
            ClassParams::new(17, 16, 17, 4),
            ClassParams::new(10, 10, 10, 4),
            ClassParams::new(30, 30, 40, 4),
            ClassParams::new(8, 20, 22, 6),
            ClassParams::new(100, 100, 100, 4),
            ClassParams::new(12, 3, 10, 2),
        ]
    }

    #[test]
    fn bittorrent_is_not_a_nash_equilibrium() {
        for p in all_params() {
            let out = birds_deviant_in_bt_swarm(&p);
            assert!(
                out.deviation_pays(),
                "Birds deviant should profit in BT swarm for {p:?}: {out:?}"
            );
            assert!(!bittorrent_is_nash(&p));
        }
    }

    #[test]
    fn birds_is_a_nash_equilibrium() {
        for p in all_params() {
            let out = bt_deviant_in_birds_swarm(&p);
            assert!(
                !out.deviation_pays(),
                "BT deviant should not profit in Birds swarm for {p:?}: {out:?}"
            );
            assert!(birds_is_nash(&p));
        }
    }

    #[test]
    fn birds_deviant_reciprocation_exceeds_incumbent() {
        // The Appendix inequality ErB[C→c]' > Er[C→c]' in isolation: the
        // deviant's within-class reciprocation advantage.
        let p = ClassParams::example_swarm();
        let nr = p.nr();
        let ur = f64::from(p.unchoke_slots);
        let e_a = f64::from(p.n_above) / nr;
        let k = break_probability_k(&p);
        let recip_deviant = ur - k;
        let recip_incumbent_upper_bound = ur - k - e_a;
        assert!(recip_deviant > recip_incumbent_upper_bound);
    }

    #[test]
    fn bt_incumbent_free_wins_exceed_deviant_in_bt_swarm() {
        // The Appendix also notes E[C→c]' > EB[C→c]' (incumbents get more
        // free wins) — yet the deviant's total still wins.
        let p = ClassParams::example_swarm();
        let out = birds_deviant_in_bt_swarm(&p);
        assert!(out.deviant > out.incumbent);
    }

    #[test]
    fn deviation_gap_grows_with_upper_class_size() {
        // More fast peers ⇒ more wasted upward reciprocation by BT ⇒
        // larger Birds advantage.
        let small = ClassParams::new(10, 16, 17, 4);
        let large = ClassParams::new(40, 16, 17, 4);
        let gap = |p: &ClassParams| {
            let o = birds_deviant_in_bt_swarm(p);
            o.deviant - o.incumbent
        };
        assert!(gap(&large) > gap(&small));
    }

    #[test]
    fn outcomes_are_finite_and_positive() {
        for p in all_params() {
            for o in [birds_deviant_in_bt_swarm(&p), bt_deviant_in_birds_swarm(&p)] {
                assert!(o.deviant.is_finite() && o.deviant > 0.0, "{p:?}");
                assert!(o.incumbent.is_finite() && o.incumbent > 0.0, "{p:?}");
            }
        }
    }
}
