//! Table 1: the bandwidth-class population parameters.
//!
//! The analytical model of Section 2.2 describes a population of TFT
//! players split into bandwidth classes, seen from the perspective of one
//! peer `c`: `N_A` players in classes above `c`'s, `N_B` below, `N_C` in
//! `c`'s own class, and `U_r` regular-unchoke slots per peer. The number of
//! optimistic-unchoke slots is fixed at 1 "for notational simplicity", as
//! in the paper.

/// Population parameters of the Section 2.2 analytical model (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassParams {
    /// `N_A`: number of TFT players in classes above `c`'s class.
    pub n_above: u32,
    /// `N_B`: number of TFT players in classes below `c`'s class.
    pub n_below: u32,
    /// `N_C`: number of TFT players in `c`'s class (including `c`).
    pub n_class: u32,
    /// `U_r`: number of simultaneous reciprocation partners (regular
    /// unchoke slots).
    pub unchoke_slots: u32,
}

impl ClassParams {
    /// Creates and validates parameters.
    ///
    /// The model's derivations assume `N_A > U_r` (higher classes never
    /// need to reciprocate downwards), at least two peers in `c`'s class
    /// (so same-class partnerships exist), and a positive `N_r`.
    ///
    /// # Panics
    ///
    /// Panics if the assumptions are violated.
    #[must_use]
    pub fn new(n_above: u32, n_below: u32, n_class: u32, unchoke_slots: u32) -> Self {
        let p = Self {
            n_above,
            n_below,
            n_class,
            unchoke_slots,
        };
        assert!(p.unchoke_slots >= 1, "need at least one unchoke slot");
        assert!(
            p.n_above > p.unchoke_slots,
            "model assumes N_A > U_r (got N_A={n_above}, U_r={unchoke_slots})"
        );
        assert!(
            p.n_class > p.unchoke_slots + 1,
            "need N_C > U_r + 1 so same-class partner sets can fill"
        );
        assert!(p.nr() > 0.0, "N_r must be positive");
        p
    }

    /// Total population size `N = N_A + N_B + N_C`.
    #[must_use]
    pub fn total(&self) -> f64 {
        f64::from(self.n_above + self.n_below + self.n_class)
    }

    /// `N_r = N_A + N_B + N_C − U_r − 1`, the pool of peers in contention
    /// for a given peer's optimistic unchoke (everyone except the peer
    /// itself and its `U_r` regular partners).
    #[must_use]
    pub fn nr(&self) -> f64 {
        self.total() - f64::from(self.unchoke_slots) - 1.0
    }

    /// The paper's running example scale: a 50-peer swarm ("a good
    /// approximation of an average BitTorrent swarm-size") split into
    /// three classes around the middle one, with BitTorrent's default of
    /// 4 regular unchoke slots.
    #[must_use]
    pub fn example_swarm() -> Self {
        Self::new(17, 16, 17, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nr_formula() {
        let p = ClassParams::new(10, 10, 10, 4);
        assert_eq!(p.nr(), 25.0);
        assert_eq!(p.total(), 30.0);
    }

    #[test]
    fn example_swarm_is_fifty_peers() {
        let p = ClassParams::example_swarm();
        assert_eq!(p.total(), 50.0);
        assert_eq!(p.unchoke_slots, 4);
    }

    #[test]
    #[should_panic(expected = "N_A > U_r")]
    fn rejects_small_upper_class() {
        let _ = ClassParams::new(3, 10, 10, 4);
    }

    #[test]
    #[should_panic(expected = "N_C > U_r + 1")]
    fn rejects_small_own_class() {
        let _ = ClassParams::new(10, 10, 4, 4);
    }

    #[test]
    #[should_panic(expected = "at least one unchoke slot")]
    fn rejects_zero_slots() {
        let _ = ClassParams::new(10, 10, 10, 0);
    }
}
