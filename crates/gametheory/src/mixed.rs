//! Mixed-strategy equilibria of 2×2 games.
//!
//! Completes the equilibrium toolkit: besides the pure-strategy analysis
//! in [`crate::game`], a 2×2 game can have an interior mixed equilibrium
//! (each player randomizes to make the other indifferent). The BitTorrent
//! Dilemma and Birds have dominant strategies so their equilibria are
//! pure; this module exists so the library covers the general case (e.g.
//! the hawk-dove-like interactions that appear when payoffs are perturbed
//! by measurement noise).

use crate::game::{Action, Game2x2};

/// A mixed-strategy profile: each player's probability of cooperating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedProfile {
    /// Row player's probability of playing Cooperate.
    pub row_p_cooperate: f64,
    /// Column player's probability of playing Cooperate.
    pub col_p_cooperate: f64,
}

impl MixedProfile {
    /// Expected payoffs `(row, col)` under this profile.
    #[must_use]
    pub fn expected_payoffs(&self, game: &Game2x2) -> (f64, f64) {
        let probs = [
            (Action::Cooperate, self.row_p_cooperate),
            (Action::Defect, 1.0 - self.row_p_cooperate),
        ];
        let cols = [
            (Action::Cooperate, self.col_p_cooperate),
            (Action::Defect, 1.0 - self.col_p_cooperate),
        ];
        let mut row = 0.0;
        let mut col = 0.0;
        for &(ra, rp) in &probs {
            for &(ca, cp) in &cols {
                let (pr, pc) = game.payoff(ra, ca);
                row += rp * cp * pr;
                col += rp * cp * pc;
            }
        }
        (row, col)
    }
}

/// Finds the interior mixed-strategy Nash equilibrium, if one exists.
///
/// The equilibrium mixes make the *opponent* indifferent:
/// `q* = (d_D − d_C) / (d_CC − d_CD − d_DC + d_DD)` style ratios. Returns
/// `None` when the required probabilities fall outside `(0, 1)` (e.g.
/// when a player has a dominant strategy) or the game is degenerate.
#[must_use]
pub fn interior_mixed_nash(game: &Game2x2) -> Option<MixedProfile> {
    // Column player indifferent ⇒ determines row's mix p over C/D:
    //   p·c(C,C) + (1−p)·c(D,C) = p·c(C,D) + (1−p)·c(D,D)
    let c_cc = game.payoff(Action::Cooperate, Action::Cooperate).1;
    let c_cd = game.payoff(Action::Cooperate, Action::Defect).1;
    let c_dc = game.payoff(Action::Defect, Action::Cooperate).1;
    let c_dd = game.payoff(Action::Defect, Action::Defect).1;
    let denom_row = c_cc - c_cd - c_dc + c_dd;
    if denom_row.abs() < 1e-12 {
        return None;
    }
    let p = (c_dd - c_dc) / denom_row;

    // Row player indifferent ⇒ determines column's mix q:
    let r_cc = game.payoff(Action::Cooperate, Action::Cooperate).0;
    let r_cd = game.payoff(Action::Cooperate, Action::Defect).0;
    let r_dc = game.payoff(Action::Defect, Action::Cooperate).0;
    let r_dd = game.payoff(Action::Defect, Action::Defect).0;
    let denom_col = r_cc - r_cd - r_dc + r_dd;
    if denom_col.abs() < 1e-12 {
        return None;
    }
    let q = (r_dd - r_cd) / denom_col;

    let interior = |x: f64| x > 1e-9 && x < 1.0 - 1e-9;
    if interior(p) && interior(q) {
        Some(MixedProfile {
            row_p_cooperate: p,
            col_p_cooperate: q,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    /// Matching-pennies-like game with a unique interior equilibrium.
    fn hawk_dove() -> Game2x2 {
        // Hawk-Dove with V=4, C=6: (C=dove, D=hawk).
        Game2x2::new(
            "hawk-dove",
            "r",
            "c",
            [[(2.0, 2.0), (0.0, 4.0)], [(4.0, 0.0), (-1.0, -1.0)]],
        )
    }

    #[test]
    fn hawk_dove_interior_equilibrium() {
        let g = hawk_dove();
        let m = interior_mixed_nash(&g).expect("interior NE exists");
        // Symmetric game: both mix identically; dove share = 1 − V/C = 1/3.
        assert!((m.row_p_cooperate - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.col_p_cooperate - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_mix_makes_opponent_indifferent() {
        let g = hawk_dove();
        let m = interior_mixed_nash(&g).unwrap();
        // Row's payoff must be equal whether it plays C or D against the
        // column mix.
        let against = |row_p: f64| {
            MixedProfile {
                row_p_cooperate: row_p,
                col_p_cooperate: m.col_p_cooperate,
            }
            .expected_payoffs(&g)
            .0
        };
        assert!((against(1.0) - against(0.0)).abs() < 1e-9);
    }

    #[test]
    fn dominance_games_have_no_interior_equilibrium() {
        assert!(interior_mixed_nash(&games::prisoners_dilemma()).is_none());
        assert!(interior_mixed_nash(&games::bittorrent_dilemma(10.0, 4.0)).is_none());
        assert!(interior_mixed_nash(&games::birds(10.0, 4.0)).is_none());
    }

    #[test]
    fn expected_payoffs_pure_corners_match_game() {
        let g = hawk_dove();
        let pure_cc = MixedProfile {
            row_p_cooperate: 1.0,
            col_p_cooperate: 1.0,
        };
        assert_eq!(pure_cc.expected_payoffs(&g), (2.0, 2.0));
        let pure_dd = MixedProfile {
            row_p_cooperate: 0.0,
            col_p_cooperate: 0.0,
        };
        assert_eq!(pure_dd.expected_payoffs(&g), (-1.0, -1.0));
    }

    #[test]
    fn degenerate_game_returns_none() {
        let flat = Game2x2::new(
            "flat",
            "r",
            "c",
            [[(1.0, 1.0), (1.0, 1.0)], [(1.0, 1.0), (1.0, 1.0)]],
        );
        assert!(interior_mixed_nash(&flat).is_none());
    }
}
