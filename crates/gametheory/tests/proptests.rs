//! Property-based tests over the game-theoretic substrate.

use dsa_gametheory::analytics::{birds, bittorrent, break_probability_k};
use dsa_gametheory::classes::ClassParams;
use dsa_gametheory::evolution;
use dsa_gametheory::game::{Action, Game2x2};
use dsa_gametheory::games;
use dsa_gametheory::nash;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ClassParams> {
    // Respect the model preconditions: N_A > U_r, N_C > U_r + 1.
    (2u32..8).prop_flat_map(|ur| {
        ((ur + 1)..60, 1u32..60, (ur + 2)..60, Just(ur))
            .prop_map(|(na, nb, nc, ur)| ClassParams::new(na, nb, nc, ur))
    })
}

proptest! {
    /// The Section 2 dilemma structure holds for any bandwidth gap:
    /// fast defects / slow cooperates in (a); both defect in (c).
    #[test]
    fn dilemma_structure_universal(s in 0.1f64..100.0, gap in 0.01f64..100.0) {
        let f = s + gap;
        let bt = games::bittorrent_dilemma(f, s);
        prop_assert_eq!(bt.dominant_row().map(|(a, _)| a), Some(Action::Defect));
        prop_assert_eq!(bt.dominant_col().map(|(a, _)| a), Some(Action::Cooperate));
        let b = games::birds(f, s);
        prop_assert_eq!(b.dominant_row().map(|(a, _)| a), Some(Action::Defect));
        prop_assert_eq!(b.dominant_col().map(|(a, _)| a), Some(Action::Defect));
    }

    /// Dominant-strategy profiles are always Nash equilibria.
    #[test]
    fn dominance_implies_nash(payoffs in proptest::collection::vec(-10.0f64..10.0, 8)) {
        let g = Game2x2::new(
            "random",
            "r",
            "c",
            [
                [(payoffs[0], payoffs[1]), (payoffs[2], payoffs[3])],
                [(payoffs[4], payoffs[5]), (payoffs[6], payoffs[7])],
            ],
        );
        if let (Some((r, _)), Some((c, _))) = (g.dominant_row(), g.dominant_col()) {
            prop_assert!(g.is_nash(r, c));
        }
    }

    /// K is a probability and the expected-win totals are positive and
    /// finite over the whole admissible parameter range.
    #[test]
    fn analytics_well_formed(p in arb_params()) {
        let k = break_probability_k(&p);
        prop_assert!((0.0..=1.0).contains(&k));
        for e in [bittorrent(&p), birds(&p)] {
            prop_assert!(e.total().is_finite());
            prop_assert!(e.total() > 0.0);
            prop_assert!(e.free_above >= 0.0);
        }
    }

    /// The Appendix results are not knife-edge: they hold across the
    /// whole admissible parameter range.
    #[test]
    fn nash_claims_universal(p in arb_params()) {
        prop_assert!(!nash::bittorrent_is_nash(&p), "{:?}", p);
        prop_assert!(nash::birds_is_nash(&p), "{:?}", p);
    }

    /// Birds' within-class reciprocation dominates BitTorrent's for any
    /// admissible population (no K leakage).
    #[test]
    fn birds_reciprocation_dominates(p in arb_params()) {
        prop_assert!(birds(&p).recip_same >= bittorrent(&p).recip_same);
    }

    /// Population shares remain a simplex (non-negative, summing to 1)
    /// under `replicator_step`, for any payoff matrix — including
    /// negative and zero payoffs — and any interior starting mix.
    #[test]
    fn replicator_step_preserves_the_simplex(
        payoffs in proptest::collection::vec(-10.0f64..10.0, 9),
        raw in proptest::collection::vec(0.01f64..1.0, 3),
    ) {
        let matrix: Vec<Vec<f64>> = payoffs.chunks(3).map(<[f64]>::to_vec).collect();
        let total: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|r| r / total).collect();
        let mut current = shares;
        for _ in 0..50 {
            current = evolution::replicator_step(&matrix, &current);
            let sum: f64 = current.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
            prop_assert!(current.iter().all(|&s| (0.0..=1.0 + 1e-12).contains(&s)),
                "shares left the simplex: {:?}", current);
        }
    }

    /// `converge` lands on an (approximate) rest point whenever it stops
    /// before the step budget, and always returns a simplex.
    #[test]
    fn converge_returns_a_simplex_rest_point(
        payoffs in proptest::collection::vec(0.0f64..10.0, 4),
        start in 0.05f64..0.95,
    ) {
        let matrix = vec![payoffs[0..2].to_vec(), payoffs[2..4].to_vec()];
        let (rest, steps) = evolution::converge(&matrix, &[start, 1.0 - start], 2000, 1e-10);
        let sum: f64 = rest.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        if steps < 2000 {
            prop_assert!(evolution::is_rest_point(&matrix, &rest, 1e-6), "{:?}", rest);
        }
    }
}
