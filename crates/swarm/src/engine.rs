//! The cycle-based simulation engine (§4.3.1).
//!
//! Time is rounds. Each round every peer, based on *last* round's
//! interactions (all decisions are simultaneous):
//!
//! 1. builds its candidate list (C1: peers that contacted it last round;
//!    C2: in either of the last two rounds),
//! 2. ranks candidates (I1–I6) and selects its top `k` as partners,
//! 3. contacts strangers per its stranger policy (B1/B2/B3, `h` slots),
//! 4. divides its upload capacity: the capacity is split into per-slot
//!    quanta `capacity / reserved_slots`; partners receive quanta per the
//!    allocation policy (R1–R3), cooperating strangers receive one quantum
//!    each. **Unfilled slots waste their quantum** — the utilization
//!    mechanism behind the paper's low-`k`-wins-performance finding.
//!
//! Downloads are tallied, loyalty streaks and adaptive aspirations are
//! updated, then churn (if any) replaces departing peers with fresh ones.

use crate::history::{Ledger, Loyalty};
use crate::protocol::{Allocation, CandidateList, Ranking, StrangerPolicy, SwarmProtocol};
use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::churn::ChurnModel;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters (§4.3.1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Population size (paper: 50, "a good approximation of an average
    /// BitTorrent swarm-size").
    pub peers: usize,
    /// Number of rounds (paper: 500).
    pub rounds: usize,
    /// Upload-capacity distribution (paper: Piatek et al.).
    pub bandwidth: BandwidthDist,
    /// Churn process (paper default: none; §4.4 re-runs with 0.01/0.1).
    pub churn: ChurnModel,
    /// Multiplicative step of the adaptive aspiration level (I4).
    pub aspiration_gain: f64,
    /// Draw the population's capacities deterministically at the
    /// distribution's n-quantiles (shuffled over peer slots per run)
    /// instead of i.i.d. sampling. This mirrors the paper's testbed — one
    /// fixed 50-host bandwidth assignment — and removes capacity-luck
    /// variance that would otherwise swamp protocol effects under the
    /// heavy-tailed Piatek distribution (the paper reports per-protocol
    /// performance variance of only 0.0014, which implies a fixed
    /// population).
    pub stratified_bandwidth: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            peers: 50,
            rounds: 500,
            bandwidth: BandwidthDist::Piatek,
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        }
    }
}

impl SimConfig {
    /// A reduced-scale configuration for tests and laptop sweeps: fewer
    /// rounds, same population. The transient dynamics that decide the
    /// orderings play out well within 150 rounds.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            rounds: 150,
            ..Self::default()
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Mean download per round, per peer slot.
    pub utilities: Vec<f64>,
    /// Upload capacity per peer slot (for class-based analyses).
    pub capacities: Vec<f64>,
    /// Protocol-group index per peer slot.
    pub assignment: Vec<usize>,
    /// Mean of `utilities` — the population throughput.
    pub throughput: f64,
    /// Mean utility per protocol group (NaN for empty groups).
    pub group_means: Vec<f64>,
}

/// Per-peer mutable state outside the ledgers.
struct PeerState {
    capacity: f64,
    /// The per-slot bandwidth quantum (capacity / reserved slots).
    quantum: f64,
    /// Aspiration level for the I4 ranking.
    aspiration: f64,
    /// Last round's total download (drives aspiration adaptation).
    last_download: f64,
    /// Remaining session length (session churn only).
    session: f64,
}

/// Reusable working memory for [`run_with_scratch`]: every buffer the
/// round loop touches, allocated once and recycled across runs. After one
/// warm run at a given population size, subsequent runs through the same
/// scratch perform **zero** steady-state heap allocations per round (the
/// `count-allocs` tests in `dsa-bench` enforce this).
///
/// A scratch carries no results between runs — [`run_with_scratch`]
/// resizes and clears everything it reads — so reusing one (even "dirty"
/// from a different protocol/population) is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct SwarmScratch {
    /// Materialized `(peer, value)` candidate list — only used when the
    /// ledger row can't be ranked in place (Tf2t merge, no-info fallback).
    cand: Vec<(usize, f64)>,
    /// Top-k selection buffer: `(ranking key, candidate index)`, kept in
    /// ranked order.
    sel: Vec<(f64, usize)>,
    /// Shuffle buffer for the Random ranking.
    order: Vec<usize>,
    partners: Vec<(usize, f64)>,
    strangers: Vec<usize>,
    /// Sorted stranger-ineligible peers (me + window contacts + selected
    /// fallback partners) — the complement defines the eligible set.
    excl: Vec<usize>,
    /// Per-round download tally, accumulated at record time (replaces
    /// per-peer `received_total` row sums; same giver order, same bits).
    download: Vec<f64>,
    /// Last round's partner sets, flattened: peer `i`'s partners live in
    /// `pp_data[i * n .. i * n + pp_len[i]]` (replaces `Vec<Vec<usize>>`).
    pp_data: Vec<usize>,
    pp_len: Vec<usize>,
}

impl SwarmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes held by the arena: every buffer's capacity times its
    /// element size. Capacities only ever grow under reuse, so this is
    /// monotone across runs through one scratch — the engines publish
    /// it as the `mem.arena.swarm_bytes` high-water gauge.
    #[must_use]
    pub fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.cand)
            + vec_bytes(&self.sel)
            + vec_bytes(&self.order)
            + vec_bytes(&self.partners)
            + vec_bytes(&self.strangers)
            + vec_bytes(&self.excl)
            + vec_bytes(&self.download)
            + vec_bytes(&self.pp_data)
            + vec_bytes(&self.pp_len)
    }

    /// Sizes and clears the run-persistent buffers for an `n`-peer run.
    /// Per-peer transient buffers are cleared at their use sites.
    fn reset(&mut self, n: usize) {
        self.download.clear();
        self.download.resize(n, 0.0);
        self.pp_data.clear();
        self.pp_data.resize(n * n, 0);
        self.pp_len.clear();
        self.pp_len.resize(n, 0);
    }
}

/// The ranking's strict total order on `(key, candidate index)` pairs:
/// exactly `sampling::rank_cmp` with the key lookup hoisted out — same
/// NaN handling (`unwrap_or(Equal)`), same index tie-break, so the same
/// bits as ranking a materialized key vector.
#[inline]
fn key_cmp(a: (f64, usize), b: (f64, usize), ascending: bool) -> std::cmp::Ordering {
    let ord = a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal);
    let ord = if ascending { ord } else { ord.reverse() };
    ord.then(a.1.cmp(&b.1))
}

/// `sampling::top_k_into` specialized to a streamed key sequence: `sel`
/// ends as the first `k` entries of the stably-ranked candidate order,
/// without materializing a key vector or gather-loading keys per
/// comparison. Identical selection logic ⇒ identical prefix.
#[inline]
fn select_top_k(
    sel: &mut Vec<(f64, usize)>,
    k: usize,
    ascending: bool,
    keys: impl Iterator<Item = f64>,
) {
    sel.clear();
    if k == 0 {
        return;
    }
    for (idx, key) in keys.enumerate() {
        let c = (key, idx);
        if sel.len() == k {
            // A candidate that doesn't beat the current k-th is never
            // part of the prefix (ties can't displace earlier indices).
            if key_cmp(c, sel[k - 1], ascending) != std::cmp::Ordering::Less {
                continue;
            }
            sel.pop();
        }
        // Linear scan from the tail beats a binary search at k ≤ 9; the
        // order is strict (index tie-break) so the position is unique.
        let mut pos = sel.len();
        while pos > 0 && key_cmp(sel[pos - 1], c, ascending) != std::cmp::Ordering::Less {
            pos -= 1;
        }
        sel.insert(pos, c);
    }
}

/// Runs the simulator.
///
/// `assignment[i]` selects which of `protocols` peer slot `i` executes.
/// Deterministic in `seed`. Traced as a `swarm.run` span with
/// `swarm.{setup,rounds,payoff}` phase children when tracing is on.
///
/// Thin wrapper over [`run_with_scratch`] using a thread-local
/// [`SwarmScratch`], so callers that loop over runs on one thread — sweep
/// workers inside `parallel_map_indexed`, benchmark iterations, test
/// suites — automatically reuse one arena per thread across all runs.
///
/// # Panics
///
/// Panics on an empty/too-small population or inconsistent assignment.
pub fn run(
    protocols: &[SwarmProtocol],
    assignment: &[usize],
    config: &SimConfig,
    seed: u64,
) -> RunOutcome {
    thread_local! {
        static SCRATCH: std::cell::RefCell<SwarmScratch> =
            std::cell::RefCell::new(SwarmScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run_with_scratch(protocols, assignment, config, seed, &mut scratch),
        // Re-entrant call on this thread: fall back to a fresh scratch
        // rather than aliasing the one already borrowed.
        Err(_) => run_with_scratch(
            protocols,
            assignment,
            config,
            seed,
            &mut SwarmScratch::new(),
        ),
    })
}

/// [`run`] against a caller-owned [`SwarmScratch`]. Output is bit-identical
/// to [`run`] regardless of the scratch's prior contents.
///
/// # Panics
///
/// Panics on an empty/too-small population or inconsistent assignment.
pub fn run_with_scratch(
    protocols: &[SwarmProtocol],
    assignment: &[usize],
    config: &SimConfig,
    seed: u64,
    scratch: &mut SwarmScratch,
) -> RunOutcome {
    let n = config.peers;
    assert!(n >= 2, "need at least two peers");
    assert_eq!(assignment.len(), n, "assignment must cover every peer");
    assert!(!protocols.is_empty(), "need at least one protocol");
    assert!(
        assignment.iter().all(|&a| a < protocols.len()),
        "assignment references missing protocol"
    );
    assert!(config.rounds > 0, "need at least one round");

    let _run_span = dsa_obs::span("swarm.run");
    let setup_span = dsa_obs::span("swarm.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let capacities: Vec<f64> = if config.stratified_bandwidth {
        // Fixed population at the distribution's quantiles; placement is
        // shuffled per run so mixed-population groups are capacity-fair.
        let mut v = config.bandwidth.stratified_n(n);
        sampling::shuffle(&mut v, &mut rng);
        v
    } else {
        config.bandwidth.sample_n(n, &mut rng)
    };
    let mut peers: Vec<PeerState> = (0..n)
        .map(|i| {
            let capacity = capacities[i];
            let proto = &protocols[assignment[i]];
            let quantum = capacity / f64::from(proto.reserved_slots());
            PeerState {
                capacity,
                quantum,
                aspiration: quantum,
                last_download: 0.0,
                session: config.churn.initial_session(&mut rng),
            }
        })
        .collect();

    let mut prev = Ledger::new(n);
    let mut prev2 = Ledger::new(n);
    let mut next = Ledger::new(n);
    let mut loyalty = Loyalty::new(n);
    let mut total_download = vec![0.0f64; n];

    // `pp_*` holds last round's selected partner sets. When a peer learns
    // nothing new (empty candidate list) it keeps these selections —
    // BitTorrent does not drop unchokes in the absence of new
    // information, and this is what lets a displaced Sort-Slowest peer
    // re-enter within one round (§4.4's "peers rarely find themselves
    // without a fully occupied partner set").
    scratch.reset(n);
    let SwarmScratch {
        cand,
        sel,
        order,
        partners,
        strangers,
        excl,
        download,
        pp_data,
        pp_len,
    } = scratch;
    // The loyalty ledger is only consulted by the Loyal ranking; keeping
    // it current otherwise is O(n²) per round of dead work.
    let needs_loyalty = protocols.iter().any(|p| p.ranking == Ranking::Loyal);
    drop(setup_span);

    // Thread-local allocation count at the edge of the round loop: the
    // loop is the steady state, so its delta — fed to the
    // mem.run_allocs.swarm histogram under --alloc — must be zero once
    // this scratch is warm. Setup and payoff assembly allocate outputs
    // by design and stay outside the window.
    let loop_allocs = dsa_obs::alloc::thread_count();
    let rounds_span = dsa_obs::span("swarm.rounds");
    for _round in 0..config.rounds {
        next.clear();

        for i in 0..n {
            let proto = &protocols[assignment[i]];
            let k = usize::from(proto.partner_slots);
            let h = usize::from(proto.stranger_slots);
            let remembers_two = proto.candidates == CandidateList::Tf2t;

            // 1. Candidate list: peers that contacted me within my
            // window, as `(peer, value)` pairs in ascending peer order —
            // the same order the dense j-scan produced. The common Tft
            // case ranks the ledger row *in place*; Tf2t merges the two
            // rounds' sorted rows (last round's amount winning on
            // duplicates) and the no-information fallback rebuilds last
            // round's selections, both into the `cand` scratch.
            let cp: &[(usize, f64)] = if remembers_two {
                cand.clear();
                let ra = prev.row(i);
                let rb = prev2.row(i);
                let (mut x, mut y) = (0, 0);
                while x < ra.len() && y < rb.len() {
                    let (a, _) = ra[x];
                    let (b, _) = rb[y];
                    if a <= b {
                        cand.push(ra[x]);
                        x += 1;
                        y += usize::from(a == b);
                    } else {
                        cand.push(rb[y]);
                        y += 1;
                    }
                }
                cand.extend_from_slice(&ra[x..]);
                cand.extend_from_slice(&rb[y..]);
                cand
            } else {
                prev.row(i)
            };
            // Window contacts are exactly the candidates so far; needed
            // below to size the stranger-eligible set without a scan.
            let contacts_len = cp.len();
            // No new information: keep last round's selections as
            // candidates (at their observed — possibly zero — rates).
            let cp: &[(usize, f64)] = if contacts_len == 0 && pp_len[i] > 0 {
                cand.clear();
                for &j in &pp_data[i * n..i * n + pp_len[i]] {
                    cand.push((j, prev.amount(i, j)));
                }
                cand
            } else {
                cp
            };

            // 2. Rank and select up to k partners. Only the top
            // `partner_count` entries are consumed, so the sorted rankings
            // use the partial top-k selection (bit-identical prefix);
            // Random keeps the full shuffle to preserve the RNG stream.
            let partner_count = k.min(cp.len());
            partners.clear();
            if partner_count > 0 {
                if proto.ranking == Ranking::Random {
                    order.clear();
                    order.extend(0..cp.len());
                    sampling::shuffle(order, &mut rng);
                    for &ci in order.iter().take(partner_count) {
                        partners.push(cp[ci]);
                    }
                } else {
                    match proto.ranking {
                        Ranking::Fastest => {
                            select_top_k(sel, partner_count, false, cp.iter().map(|p| p.1));
                        }
                        Ranking::Slowest => {
                            select_top_k(sel, partner_count, true, cp.iter().map(|p| p.1));
                        }
                        Ranking::Proximity => {
                            let me = peers[i].quantum;
                            let keys = cp.iter().map(|p| (p.1 - me).abs());
                            select_top_k(sel, partner_count, true, keys);
                        }
                        Ranking::Adaptive => {
                            let asp = peers[i].aspiration;
                            let keys = cp.iter().map(|p| (p.1 - asp).abs());
                            select_top_k(sel, partner_count, true, keys);
                        }
                        Ranking::Loyal => {
                            let streaks = loyalty.row(i);
                            let keys = cp.iter().map(|p| f64::from(streaks[p.0]));
                            select_top_k(sel, partner_count, false, keys);
                        }
                        Ranking::Random => unreachable!(),
                    }
                    for &(_, ci) in sel.iter() {
                        partners.push(cp[ci]);
                    }
                }
            }

            // 3. Stranger contacts.
            let stranger_quota = match proto.stranger_policy {
                _ if h == 0 => 0,
                StrangerPolicy::Periodic | StrangerPolicy::Defect => h,
                StrangerPolicy::WhenNeeded => {
                    if partners.len() < k {
                        h.min(k - partners.len())
                    } else {
                        0
                    }
                }
            };
            strangers.clear();
            if stranger_quota > 0 {
                // Eligible: not me, not selected, outside my memory
                // window. The set is never materialized: the exclusions
                // are `i` plus the window contacts (which subsume the
                // selected partners, except in the no-information
                // fallback where the partners themselves are excluded) —
                // a tiny sorted list whose complement is the ascending
                // eligible order the materialized list used to index.
                if contacts_len == 0 {
                    excl.clear();
                    excl.extend(partners.iter().map(|&(j, _)| j));
                    excl.push(i);
                    excl.sort_unstable();
                    let eligible_len = n - excl.len();
                    sampling::sample_indices_into(
                        eligible_len,
                        stranger_quota,
                        &mut rng,
                        strangers,
                    );
                    // Map eligible positions to peer ids: each exclusion
                    // at or below the running id shifts it up by one.
                    for slot in strangers.iter_mut() {
                        let mut j = *slot;
                        for &e in excl.iter() {
                            if e <= j {
                                j += 1;
                            } else {
                                break;
                            }
                        }
                        *slot = j;
                    }
                } else {
                    // Common case: the exclusions are exactly
                    // `cp[..contacts_len]` (ascending by peer) with `i`
                    // spliced in — walk that merge directly instead of
                    // materializing it, shifting the sampled id up for
                    // each exclusion at or below it and stopping at the
                    // first one above (identical to the excl-list walk).
                    let eligible_len = n - contacts_len - 1;
                    sampling::sample_indices_into(
                        eligible_len,
                        stranger_quota,
                        &mut rng,
                        strangers,
                    );
                    for slot in strangers.iter_mut() {
                        let mut j = *slot;
                        let mut i_pending = true;
                        for &(e, _) in &cp[..contacts_len] {
                            if i_pending && i < e {
                                i_pending = false;
                                if i <= j {
                                    j += 1;
                                } else {
                                    break;
                                }
                            }
                            if e <= j {
                                j += 1;
                            } else {
                                i_pending = false;
                                break;
                            }
                        }
                        if i_pending && i <= j {
                            j += 1;
                        }
                        *slot = j;
                    }
                }
            }

            // 4. Allocation over per-slot quanta.
            let q = peers[i].quantum;
            match proto.allocation {
                Allocation::EqualSplit => {
                    for &(j, _) in partners.iter() {
                        next.record_new(j, i, q);
                        download[j] += q;
                    }
                }
                Allocation::PropShare => {
                    let budget = q * partners.len() as f64;
                    let total: f64 = partners.iter().map(|&(_, v)| v).sum();
                    if total > 0.0 {
                        for &(j, v) in partners.iter() {
                            let amt = budget * v / total;
                            next.record_new(j, i, amt);
                            download[j] += amt;
                        }
                    } else {
                        // Nothing received last round ⇒ nothing proportional
                        // to give — the bootstrap failure the paper notes.
                        for &(j, _) in partners.iter() {
                            next.record_new(j, i, 0.0);
                            download[j] += 0.0;
                        }
                    }
                }
                Allocation::Freeride => {
                    for &(j, _) in partners.iter() {
                        next.record_new(j, i, 0.0);
                        download[j] += 0.0;
                    }
                }
            }
            let stranger_amount = match proto.stranger_policy {
                StrangerPolicy::Defect => 0.0,
                StrangerPolicy::Periodic | StrangerPolicy::WhenNeeded => q,
            };
            for &j in strangers.iter() {
                next.record_new(j, i, stranger_amount);
                download[j] += stranger_amount;
            }

            pp_len[i] = partners.len();
            for (slot, &(j, _)) in pp_data[i * n..].iter_mut().zip(partners.iter()) {
                *slot = j;
            }
        }

        // Tally downloads, update adaptive state. `download[i]` was
        // accumulated at record time in ascending-giver order — the same
        // summation order (and bits) as `next.received_total(i)`.
        for i in 0..n {
            let dl = download[i];
            total_download[i] += dl;
            let p = &mut peers[i];
            if dl >= p.last_download {
                p.aspiration *= 1.0 + config.aspiration_gain;
            } else {
                p.aspiration *= 1.0 - config.aspiration_gain;
            }
            p.aspiration = p.aspiration.clamp(1e-3, p.capacity * 2.0 + 1e-3);
            p.last_download = dl;
        }
        download.fill(0.0);
        if needs_loyalty {
            loyalty.update(&next);
        }

        // Rotate ledgers: next becomes prev, prev becomes prev2.
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut next);

        // Churn: replace departing peers with fresh ones.
        if !config.churn.is_none() {
            for i in 0..n {
                peers[i].session -= 1.0;
                if config.churn.departs(peers[i].session, &mut rng) {
                    prev.forget_peer(i);
                    prev2.forget_peer(i);
                    loyalty.forget_peer(i);
                    pp_len[i] = 0;
                    // Drop the departed peer from every partner set
                    // (in-place compaction of the flat rows).
                    for (p, len) in pp_len.iter_mut().enumerate() {
                        let base = p * n;
                        let mut kept = 0;
                        for r in 0..*len {
                            let j = pp_data[base + r];
                            if j != i {
                                pp_data[base + kept] = j;
                                kept += 1;
                            }
                        }
                        *len = kept;
                    }
                    let capacity = config.bandwidth.sample(&mut rng);
                    let proto = &protocols[assignment[i]];
                    let quantum = capacity / f64::from(proto.reserved_slots());
                    peers[i] = PeerState {
                        capacity,
                        quantum,
                        aspiration: quantum,
                        last_download: 0.0,
                        session: config.churn.initial_session(&mut rng),
                    };
                }
            }
        }
    }
    drop(rounds_span);
    let loop_allocs = dsa_obs::alloc::thread_count().saturating_sub(loop_allocs);

    let _payoff_span = dsa_obs::span("swarm.payoff");
    let utilities: Vec<f64> = total_download
        .iter()
        .map(|&d| d / config.rounds as f64)
        .collect();
    let throughput = utilities.iter().sum::<f64>() / n as f64;
    let mut group_sum = vec![0.0f64; protocols.len()];
    let mut group_count = vec![0usize; protocols.len()];
    for (i, &g) in assignment.iter().enumerate() {
        group_sum[g] += utilities[i];
        group_count[g] += 1;
    }
    let group_means: Vec<f64> = group_sum
        .iter()
        .zip(&group_count)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect();

    // Arena accounting: high-water footprint of this scratch, plus the
    // workspace-wide peak, and (under --alloc) the run's allocation
    // delta. Gated so disabled runs skip the capacity walk entirely.
    if dsa_obs::metrics_enabled() {
        let bytes = scratch.footprint() as f64;
        dsa_obs::gauge_max("mem.arena.swarm_bytes", bytes);
        dsa_obs::gauge_max("mem.arena_peak_bytes", bytes);
        if dsa_obs::alloc::enabled() {
            dsa_obs::observe_thread_dependent("mem.run_allocs.swarm", loop_allocs);
        }
    }

    RunOutcome {
        utilities,
        capacities: peers.iter().map(|p| p.capacity).collect(),
        assignment: assignment.to_vec(),
        throughput,
        group_means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small() -> SimConfig {
        SimConfig {
            peers: 20,
            rounds: 100,
            bandwidth: BandwidthDist::Constant(10.0),
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        }
    }

    fn homogeneous(p: SwarmProtocol, config: &SimConfig, seed: u64) -> RunOutcome {
        run(&[p], &vec![0; config.peers], config, seed)
    }

    #[test]
    fn bittorrent_like_population_bootstraps() {
        let out = homogeneous(presets::bittorrent(), &small(), 1);
        assert!(out.throughput > 0.0, "no data flowed: {out:?}");
    }

    #[test]
    fn throughput_bounded_by_capacity() {
        // Nobody can download more than the population uploads.
        let out = homogeneous(presets::bittorrent(), &small(), 2);
        assert!(out.throughput <= 10.0 + 1e-9);
    }

    #[test]
    fn no_strangers_never_bootstraps() {
        // h = 0: nobody ever makes first contact, so no data ever flows.
        let mut p = presets::bittorrent();
        p.stranger_slots = 0;
        let out = homogeneous(p, &small(), 3);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn full_freeriders_with_defect_strangers_transfer_nothing() {
        let p = SwarmProtocol {
            stranger_policy: StrangerPolicy::Defect,
            stranger_slots: 1,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: 4,
            allocation: Allocation::Freeride,
        };
        let out = homogeneous(p, &small(), 4);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn freeriders_with_periodic_strangers_get_some_throughput() {
        // R3 + B1: only stranger slots carry data (the paper's ≈0.3 cap
        // for stranger-cooperating freeriders).
        let p = SwarmProtocol {
            stranger_policy: StrangerPolicy::Periodic,
            stranger_slots: 1,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: 4,
            allocation: Allocation::Freeride,
        };
        let out = homogeneous(p, &small(), 5);
        assert!(out.throughput > 0.0);
        // Far below a cooperative protocol's throughput.
        let coop = homogeneous(presets::bittorrent(), &small(), 5);
        assert!(out.throughput < coop.throughput * 0.5);
    }

    #[test]
    fn sort_slowest_single_partner_defectors_fill_capacity() {
        // The paper's counter-intuitive top performer: B3 strangers,
        // Sort Slowest, k=1, Equal Split reaches (near-)full utilization.
        let out = homogeneous(presets::sort_s(), &small(), 6);
        assert!(
            out.throughput > 0.9 * 10.0,
            "Sort-S throughput {} below 90% of capacity",
            out.throughput
        );
    }

    #[test]
    fn sort_s_beats_bittorrent_homogeneously() {
        let cfg = small();
        let sort_s = homogeneous(presets::sort_s(), &cfg, 7);
        let bt = homogeneous(presets::bittorrent(), &cfg, 7);
        assert!(
            sort_s.throughput >= bt.throughput,
            "Sort-S {} vs BT {}",
            sort_s.throughput,
            bt.throughput
        );
    }

    #[test]
    fn prop_share_population_fails_to_bootstrap_with_defect_strangers() {
        // §4.4: "It is imperative ... that the resource allocation method
        // should not be Prop Share" for the B3 protocol family — nobody
        // ever receives anything, so proportional gives nothing.
        let p = SwarmProtocol {
            allocation: Allocation::PropShare,
            ..presets::sort_s()
        };
        let out = homogeneous(p, &small(), 8);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = homogeneous(presets::bittorrent(), &small(), 42);
        let b = homogeneous(presets::bittorrent(), &small(), 42);
        assert_eq!(a, b);
        let c = homogeneous(presets::bittorrent(), &small(), 43);
        assert_ne!(a.utilities, c.utilities);
    }

    #[test]
    fn mixed_population_group_means() {
        let cfg = small();
        let protos = [presets::bittorrent(), presets::freerider()];
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= 10)).collect();
        let out = run(&protos, &assignment, &cfg, 9);
        assert_eq!(out.group_means.len(), 2);
        assert!(out.group_means[0].is_finite());
        assert!(out.group_means[1].is_finite());
        // Cooperators outperform freeriders in a half-half split.
        assert!(out.group_means[0] > out.group_means[1]);
    }

    #[test]
    fn churn_reduces_but_does_not_kill_throughput() {
        let mut cfg = small();
        let base = homogeneous(presets::bittorrent(), &cfg, 10);
        cfg.churn = ChurnModel::PerRound { rate: 0.1 };
        let churned = homogeneous(presets::bittorrent(), &cfg, 10);
        assert!(churned.throughput > 0.0);
        assert!(churned.throughput < base.throughput);
    }

    #[test]
    fn utilities_are_nonnegative_and_sized() {
        let cfg = small();
        let out = homogeneous(presets::loyal_when_needed(), &cfg, 11);
        assert_eq!(out.utilities.len(), cfg.peers);
        assert!(out.utilities.iter().all(|&u| u >= 0.0));
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn bad_assignment_length_panics() {
        let cfg = small();
        let _ = run(&[presets::bittorrent()], &[0; 3], &cfg, 1);
    }

    #[test]
    fn heterogeneous_capacities_with_piatek() {
        let cfg = SimConfig {
            peers: 50,
            rounds: 60,
            bandwidth: BandwidthDist::Piatek,
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        };
        let out = homogeneous(presets::bittorrent(), &cfg, 12);
        let lo = out.capacities.iter().cloned().fold(f64::MAX, f64::min);
        let hi = out.capacities.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo > 3.0, "Piatek population should be heterogeneous");
        assert!(out.throughput > 0.0);
    }
}
