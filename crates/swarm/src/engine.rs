//! The cycle-based simulation engine (§4.3.1).
//!
//! Time is rounds. Each round every peer, based on *last* round's
//! interactions (all decisions are simultaneous):
//!
//! 1. builds its candidate list (C1: peers that contacted it last round;
//!    C2: in either of the last two rounds),
//! 2. ranks candidates (I1–I6) and selects its top `k` as partners,
//! 3. contacts strangers per its stranger policy (B1/B2/B3, `h` slots),
//! 4. divides its upload capacity: the capacity is split into per-slot
//!    quanta `capacity / reserved_slots`; partners receive quanta per the
//!    allocation policy (R1–R3), cooperating strangers receive one quantum
//!    each. **Unfilled slots waste their quantum** — the utilization
//!    mechanism behind the paper's low-`k`-wins-performance finding.
//!
//! Downloads are tallied, loyalty streaks and adaptive aspirations are
//! updated, then churn (if any) replaces departing peers with fresh ones.

use crate::history::{Ledger, Loyalty};
use crate::protocol::{Allocation, CandidateList, Ranking, StrangerPolicy, SwarmProtocol};
use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::churn::ChurnModel;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters (§4.3.1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Population size (paper: 50, "a good approximation of an average
    /// BitTorrent swarm-size").
    pub peers: usize,
    /// Number of rounds (paper: 500).
    pub rounds: usize,
    /// Upload-capacity distribution (paper: Piatek et al.).
    pub bandwidth: BandwidthDist,
    /// Churn process (paper default: none; §4.4 re-runs with 0.01/0.1).
    pub churn: ChurnModel,
    /// Multiplicative step of the adaptive aspiration level (I4).
    pub aspiration_gain: f64,
    /// Draw the population's capacities deterministically at the
    /// distribution's n-quantiles (shuffled over peer slots per run)
    /// instead of i.i.d. sampling. This mirrors the paper's testbed — one
    /// fixed 50-host bandwidth assignment — and removes capacity-luck
    /// variance that would otherwise swamp protocol effects under the
    /// heavy-tailed Piatek distribution (the paper reports per-protocol
    /// performance variance of only 0.0014, which implies a fixed
    /// population).
    pub stratified_bandwidth: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            peers: 50,
            rounds: 500,
            bandwidth: BandwidthDist::Piatek,
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        }
    }
}

impl SimConfig {
    /// A reduced-scale configuration for tests and laptop sweeps: fewer
    /// rounds, same population. The transient dynamics that decide the
    /// orderings play out well within 150 rounds.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            rounds: 150,
            ..Self::default()
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Mean download per round, per peer slot.
    pub utilities: Vec<f64>,
    /// Upload capacity per peer slot (for class-based analyses).
    pub capacities: Vec<f64>,
    /// Protocol-group index per peer slot.
    pub assignment: Vec<usize>,
    /// Mean of `utilities` — the population throughput.
    pub throughput: f64,
    /// Mean utility per protocol group (NaN for empty groups).
    pub group_means: Vec<f64>,
}

/// Per-peer mutable state outside the ledgers.
struct PeerState {
    capacity: f64,
    /// The per-slot bandwidth quantum (capacity / reserved slots).
    quantum: f64,
    /// Aspiration level for the I4 ranking.
    aspiration: f64,
    /// Last round's total download (drives aspiration adaptation).
    last_download: f64,
    /// Remaining session length (session churn only).
    session: f64,
}

/// Runs the simulator.
///
/// `assignment[i]` selects which of `protocols` peer slot `i` executes.
/// Deterministic in `seed`. Traced as a `swarm.run` span with
/// `swarm.{setup,rounds,payoff}` phase children when tracing is on.
///
/// # Panics
///
/// Panics on an empty/too-small population or inconsistent assignment.
pub fn run(
    protocols: &[SwarmProtocol],
    assignment: &[usize],
    config: &SimConfig,
    seed: u64,
) -> RunOutcome {
    let n = config.peers;
    assert!(n >= 2, "need at least two peers");
    assert_eq!(assignment.len(), n, "assignment must cover every peer");
    assert!(!protocols.is_empty(), "need at least one protocol");
    assert!(
        assignment.iter().all(|&a| a < protocols.len()),
        "assignment references missing protocol"
    );
    assert!(config.rounds > 0, "need at least one round");

    let _run_span = dsa_obs::span("swarm.run");
    let setup_span = dsa_obs::span("swarm.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let capacities: Vec<f64> = if config.stratified_bandwidth {
        // Fixed population at the distribution's quantiles; placement is
        // shuffled per run so mixed-population groups are capacity-fair.
        let mut v = config.bandwidth.stratified_n(n);
        sampling::shuffle(&mut v, &mut rng);
        v
    } else {
        config.bandwidth.sample_n(n, &mut rng)
    };
    let mut peers: Vec<PeerState> = (0..n)
        .map(|i| {
            let capacity = capacities[i];
            let proto = &protocols[assignment[i]];
            let quantum = capacity / f64::from(proto.reserved_slots());
            PeerState {
                capacity,
                quantum,
                aspiration: quantum,
                last_download: 0.0,
                session: config.churn.initial_session(&mut rng),
            }
        })
        .collect();

    let mut prev = Ledger::new(n);
    let mut prev2 = Ledger::new(n);
    let mut next = Ledger::new(n);
    let mut loyalty = Loyalty::new(n);
    let mut total_download = vec![0.0f64; n];
    // Last round's selected partner sets. When a peer learns nothing new
    // (empty candidate list) it keeps these selections — BitTorrent does
    // not drop unchokes in the absence of new information, and this is
    // what lets a displaced Sort-Slowest peer re-enter within one round
    // (§4.4's "peers rarely find themselves without a fully occupied
    // partner set").
    let mut prev_partners: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Reusable scratch buffers.
    let mut candidates: Vec<usize> = Vec::with_capacity(n);
    let mut values: Vec<f64> = Vec::with_capacity(n);
    let mut selected = vec![false; n];
    drop(setup_span);

    let rounds_span = dsa_obs::span("swarm.rounds");
    for _round in 0..config.rounds {
        next.clear();

        for i in 0..n {
            let proto = &protocols[assignment[i]];
            let k = usize::from(proto.partner_slots);
            let h = usize::from(proto.stranger_slots);
            let remembers_two = proto.candidates == CandidateList::Tf2t;

            // 1. Candidate list: peers that contacted me within my window.
            candidates.clear();
            values.clear();
            for j in 0..n {
                if j == i {
                    continue;
                }
                if prev.contacted(i, j) {
                    candidates.push(j);
                    values.push(prev.amount(i, j));
                } else if remembers_two && prev2.contacted(i, j) {
                    candidates.push(j);
                    values.push(prev2.amount(i, j));
                }
            }
            // No new information: keep last round's selections as
            // candidates (at their observed — possibly zero — rates).
            if candidates.is_empty() && !prev_partners[i].is_empty() {
                for &j in &prev_partners[i] {
                    candidates.push(j);
                    values.push(prev.amount(i, j));
                }
            }

            // 2. Rank and select up to k partners.
            let partner_count = k.min(candidates.len());
            let order: Vec<usize> = if k == 0 || candidates.is_empty() {
                Vec::new()
            } else {
                match proto.ranking {
                    Ranking::Fastest => sampling::rank_indices(&values, false),
                    Ranking::Slowest => sampling::rank_indices(&values, true),
                    Ranking::Proximity => {
                        let me = peers[i].quantum;
                        let d: Vec<f64> = values.iter().map(|v| (v - me).abs()).collect();
                        sampling::rank_indices(&d, true)
                    }
                    Ranking::Adaptive => {
                        let asp = peers[i].aspiration;
                        let d: Vec<f64> = values.iter().map(|v| (v - asp).abs()).collect();
                        sampling::rank_indices(&d, true)
                    }
                    Ranking::Loyal => {
                        let s: Vec<f64> = candidates
                            .iter()
                            .map(|&j| f64::from(loyalty.streak(i, j)))
                            .collect();
                        sampling::rank_indices(&s, false)
                    }
                    Ranking::Random => {
                        let mut idx: Vec<usize> = (0..candidates.len()).collect();
                        sampling::shuffle(&mut idx, &mut rng);
                        idx
                    }
                }
            };

            selected.fill(false);
            let mut partners: Vec<(usize, f64)> = Vec::with_capacity(partner_count);
            for &ci in order.iter().take(partner_count) {
                let j = candidates[ci];
                selected[j] = true;
                partners.push((j, values[ci]));
            }

            // 3. Stranger contacts.
            let stranger_quota = match proto.stranger_policy {
                _ if h == 0 => 0,
                StrangerPolicy::Periodic | StrangerPolicy::Defect => h,
                StrangerPolicy::WhenNeeded => {
                    if partners.len() < k {
                        h.min(k - partners.len())
                    } else {
                        0
                    }
                }
            };
            let strangers: Vec<usize> = if stranger_quota == 0 {
                Vec::new()
            } else {
                // Eligible: not me, not selected, outside my memory window.
                let eligible: Vec<usize> = (0..n)
                    .filter(|&j| {
                        j != i
                            && !selected[j]
                            && !prev.contacted(i, j)
                            && (!remembers_two || !prev2.contacted(i, j))
                    })
                    .collect();
                sampling::sample_indices(eligible.len(), stranger_quota, &mut rng)
                    .into_iter()
                    .map(|e| eligible[e])
                    .collect()
            };

            // 4. Allocation over per-slot quanta.
            let q = peers[i].quantum;
            match proto.allocation {
                Allocation::EqualSplit => {
                    for &(j, _) in &partners {
                        next.record(j, i, q);
                    }
                }
                Allocation::PropShare => {
                    let budget = q * partners.len() as f64;
                    let total: f64 = partners.iter().map(|&(_, v)| v).sum();
                    if total > 0.0 {
                        for &(j, v) in &partners {
                            next.record(j, i, budget * v / total);
                        }
                    } else {
                        // Nothing received last round ⇒ nothing proportional
                        // to give — the bootstrap failure the paper notes.
                        for &(j, _) in &partners {
                            next.record(j, i, 0.0);
                        }
                    }
                }
                Allocation::Freeride => {
                    for &(j, _) in &partners {
                        next.record(j, i, 0.0);
                    }
                }
            }
            let stranger_amount = match proto.stranger_policy {
                StrangerPolicy::Defect => 0.0,
                StrangerPolicy::Periodic | StrangerPolicy::WhenNeeded => q,
            };
            for &j in &strangers {
                next.record(j, i, stranger_amount);
            }

            prev_partners[i].clear();
            prev_partners[i].extend(partners.iter().map(|&(j, _)| j));
        }

        // Tally downloads, update adaptive state.
        for i in 0..n {
            let dl = next.received_total(i);
            total_download[i] += dl;
            let p = &mut peers[i];
            if dl >= p.last_download {
                p.aspiration *= 1.0 + config.aspiration_gain;
            } else {
                p.aspiration *= 1.0 - config.aspiration_gain;
            }
            p.aspiration = p.aspiration.clamp(1e-3, p.capacity * 2.0 + 1e-3);
            p.last_download = dl;
        }
        loyalty.update(&next);

        // Rotate ledgers: next becomes prev, prev becomes prev2.
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut next);

        // Churn: replace departing peers with fresh ones.
        if !config.churn.is_none() {
            for i in 0..n {
                peers[i].session -= 1.0;
                if config.churn.departs(peers[i].session, &mut rng) {
                    prev.forget_peer(i);
                    prev2.forget_peer(i);
                    loyalty.forget_peer(i);
                    prev_partners[i].clear();
                    for partners in prev_partners.iter_mut() {
                        partners.retain(|&j| j != i);
                    }
                    let capacity = config.bandwidth.sample(&mut rng);
                    let proto = &protocols[assignment[i]];
                    let quantum = capacity / f64::from(proto.reserved_slots());
                    peers[i] = PeerState {
                        capacity,
                        quantum,
                        aspiration: quantum,
                        last_download: 0.0,
                        session: config.churn.initial_session(&mut rng),
                    };
                }
            }
        }
    }
    drop(rounds_span);

    let _payoff_span = dsa_obs::span("swarm.payoff");
    let utilities: Vec<f64> = total_download
        .iter()
        .map(|&d| d / config.rounds as f64)
        .collect();
    let throughput = utilities.iter().sum::<f64>() / n as f64;
    let mut group_sum = vec![0.0f64; protocols.len()];
    let mut group_count = vec![0usize; protocols.len()];
    for (i, &g) in assignment.iter().enumerate() {
        group_sum[g] += utilities[i];
        group_count[g] += 1;
    }
    let group_means: Vec<f64> = group_sum
        .iter()
        .zip(&group_count)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect();

    RunOutcome {
        utilities,
        capacities: peers.iter().map(|p| p.capacity).collect(),
        assignment: assignment.to_vec(),
        throughput,
        group_means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small() -> SimConfig {
        SimConfig {
            peers: 20,
            rounds: 100,
            bandwidth: BandwidthDist::Constant(10.0),
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        }
    }

    fn homogeneous(p: SwarmProtocol, config: &SimConfig, seed: u64) -> RunOutcome {
        run(&[p], &vec![0; config.peers], config, seed)
    }

    #[test]
    fn bittorrent_like_population_bootstraps() {
        let out = homogeneous(presets::bittorrent(), &small(), 1);
        assert!(out.throughput > 0.0, "no data flowed: {out:?}");
    }

    #[test]
    fn throughput_bounded_by_capacity() {
        // Nobody can download more than the population uploads.
        let out = homogeneous(presets::bittorrent(), &small(), 2);
        assert!(out.throughput <= 10.0 + 1e-9);
    }

    #[test]
    fn no_strangers_never_bootstraps() {
        // h = 0: nobody ever makes first contact, so no data ever flows.
        let mut p = presets::bittorrent();
        p.stranger_slots = 0;
        let out = homogeneous(p, &small(), 3);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn full_freeriders_with_defect_strangers_transfer_nothing() {
        let p = SwarmProtocol {
            stranger_policy: StrangerPolicy::Defect,
            stranger_slots: 1,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: 4,
            allocation: Allocation::Freeride,
        };
        let out = homogeneous(p, &small(), 4);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn freeriders_with_periodic_strangers_get_some_throughput() {
        // R3 + B1: only stranger slots carry data (the paper's ≈0.3 cap
        // for stranger-cooperating freeriders).
        let p = SwarmProtocol {
            stranger_policy: StrangerPolicy::Periodic,
            stranger_slots: 1,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: 4,
            allocation: Allocation::Freeride,
        };
        let out = homogeneous(p, &small(), 5);
        assert!(out.throughput > 0.0);
        // Far below a cooperative protocol's throughput.
        let coop = homogeneous(presets::bittorrent(), &small(), 5);
        assert!(out.throughput < coop.throughput * 0.5);
    }

    #[test]
    fn sort_slowest_single_partner_defectors_fill_capacity() {
        // The paper's counter-intuitive top performer: B3 strangers,
        // Sort Slowest, k=1, Equal Split reaches (near-)full utilization.
        let out = homogeneous(presets::sort_s(), &small(), 6);
        assert!(
            out.throughput > 0.9 * 10.0,
            "Sort-S throughput {} below 90% of capacity",
            out.throughput
        );
    }

    #[test]
    fn sort_s_beats_bittorrent_homogeneously() {
        let cfg = small();
        let sort_s = homogeneous(presets::sort_s(), &cfg, 7);
        let bt = homogeneous(presets::bittorrent(), &cfg, 7);
        assert!(
            sort_s.throughput >= bt.throughput,
            "Sort-S {} vs BT {}",
            sort_s.throughput,
            bt.throughput
        );
    }

    #[test]
    fn prop_share_population_fails_to_bootstrap_with_defect_strangers() {
        // §4.4: "It is imperative ... that the resource allocation method
        // should not be Prop Share" for the B3 protocol family — nobody
        // ever receives anything, so proportional gives nothing.
        let p = SwarmProtocol {
            allocation: Allocation::PropShare,
            ..presets::sort_s()
        };
        let out = homogeneous(p, &small(), 8);
        assert_eq!(out.throughput, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = homogeneous(presets::bittorrent(), &small(), 42);
        let b = homogeneous(presets::bittorrent(), &small(), 42);
        assert_eq!(a, b);
        let c = homogeneous(presets::bittorrent(), &small(), 43);
        assert_ne!(a.utilities, c.utilities);
    }

    #[test]
    fn mixed_population_group_means() {
        let cfg = small();
        let protos = [presets::bittorrent(), presets::freerider()];
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= 10)).collect();
        let out = run(&protos, &assignment, &cfg, 9);
        assert_eq!(out.group_means.len(), 2);
        assert!(out.group_means[0].is_finite());
        assert!(out.group_means[1].is_finite());
        // Cooperators outperform freeriders in a half-half split.
        assert!(out.group_means[0] > out.group_means[1]);
    }

    #[test]
    fn churn_reduces_but_does_not_kill_throughput() {
        let mut cfg = small();
        let base = homogeneous(presets::bittorrent(), &cfg, 10);
        cfg.churn = ChurnModel::PerRound { rate: 0.1 };
        let churned = homogeneous(presets::bittorrent(), &cfg, 10);
        assert!(churned.throughput > 0.0);
        assert!(churned.throughput < base.throughput);
    }

    #[test]
    fn utilities_are_nonnegative_and_sized() {
        let cfg = small();
        let out = homogeneous(presets::loyal_when_needed(), &cfg, 11);
        assert_eq!(out.utilities.len(), cfg.peers);
        assert!(out.utilities.iter().all(|&u| u >= 0.0));
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn bad_assignment_length_panics() {
        let cfg = small();
        let _ = run(&[presets::bittorrent()], &[0; 3], &cfg, 1);
    }

    #[test]
    fn heterogeneous_capacities_with_piatek() {
        let cfg = SimConfig {
            peers: 50,
            rounds: 60,
            bandwidth: BandwidthDist::Piatek,
            churn: ChurnModel::None,
            aspiration_gain: 0.1,
            stratified_bandwidth: true,
        };
        let out = homogeneous(presets::bittorrent(), &cfg, 12);
        let lo = out.capacities.iter().cloned().fold(f64::MAX, f64::min);
        let hi = out.capacities.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo > 3.0, "Piatek population should be heterogeneous");
        assert!(out.throughput > 0.0);
    }
}
