//! The paper's P2P file-swarming design space and its cycle-based
//! simulator (Sections 4.2–4.3).
//!
//! # The design space (3270 protocols)
//!
//! | Dimension | Actualizations |
//! |-----------|----------------|
//! | Stranger policy | none (h=0) ∪ {B1 Periodic, B2 When-needed, B3 Defect} × h ∈ {1,2,3} → **10** |
//! | Selection | none (k=0) ∪ {C1 TFT, C2 TF2T} × {I1 Fastest, I2 Slowest, I3 Proximity, I4 Adaptive, I5 Loyal, I6 Random} × k ∈ {1..9} → **109** |
//! | Allocation | R1 Equal Split, R2 Prop Share, R3 Freeride → **3** |
//!
//! 10 × 109 × 3 = **3270** unique protocols, exactly the paper's count.
//!
//! # The simulation model (§4.3.1)
//!
//! Cycle-based: 50 peers, 500 rounds, full connectivity for peer
//! discovery, capacities drawn from the Piatek et al. distribution, every
//! peer always has data others want. Each round a peer selects partners
//! from its interaction history, optionally contacts strangers, and
//! divides its upload capacity according to its allocation policy.
//!
//! Two modeling decisions documented in `DESIGN.md` §5 matter most:
//! *contacts* (including 0-byte "defect" contacts) create next-round
//! candidacy, and upload capacity is divided into **per-slot quanta** —
//! unfilled slots waste capacity, which is what makes low partner counts
//! perform so well homogeneously (the paper's §4.4 discussion of the
//! Sort-Slowest k=1 protocol) while high partner counts are robust.

pub mod adapter;
pub mod engine;
pub mod history;
pub mod metrics;
pub mod presets;
pub mod protocol;

pub use adapter::{SwarmDomain, SwarmSim};
pub use engine::{run, RunOutcome, SimConfig};
pub use protocol::{Allocation, CandidateList, Ranking, StrangerPolicy, SwarmProtocol, SPACE_SIZE};
