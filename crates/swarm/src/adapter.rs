//! Plugs the cycle simulator into the DSA framework.

use crate::engine::{run, SimConfig};
use crate::protocol::SwarmProtocol;
use dsa_core::sim::EncounterSim;

/// The file-swarming domain as an [`EncounterSim`], ready for
/// [`dsa_core::pra::quantify`].
#[derive(Debug, Clone)]
pub struct SwarmSim {
    /// Simulation parameters shared by every run of the sweep.
    pub config: SimConfig,
}

impl SwarmSim {
    /// Creates the adapter with the paper's §4.3.1 parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            config: SimConfig::default(),
        }
    }

    /// Creates the adapter with the reduced laptop-scale parameters.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            config: SimConfig::fast(),
        }
    }
}

impl EncounterSim for SwarmSim {
    type Protocol = SwarmProtocol;

    fn run_homogeneous(&self, protocol: &SwarmProtocol, seed: u64) -> f64 {
        let assignment = vec![0usize; self.config.peers];
        run(&[*protocol], &assignment, &self.config, seed).throughput
    }

    fn run_encounter(
        &self,
        a: &SwarmProtocol,
        b: &SwarmProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.peers;
        // The paper's splits (50/50, 10/90, 90/10) land exactly on
        // integers for n = 50.
        let (_, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let out = run(&[*a, *b], &assignment, &self.config, seed);
        (out.group_means[0], out.group_means[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dsa_workloads::bandwidth::BandwidthDist;
    use dsa_workloads::churn::ChurnModel;

    fn sim() -> SwarmSim {
        SwarmSim {
            config: SimConfig {
                peers: 20,
                rounds: 80,
                bandwidth: BandwidthDist::Constant(10.0),
                churn: ChurnModel::None,
                aspiration_gain: 0.1,
                stratified_bandwidth: true,
            },
        }
    }

    #[test]
    fn homogeneous_matches_engine() {
        let s = sim();
        let via_trait = s.run_homogeneous(&presets::bittorrent(), 5);
        let direct = run(
            &[presets::bittorrent()],
            &vec![0; s.config.peers],
            &s.config,
            5,
        )
        .throughput;
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn encounter_splits_population() {
        let s = sim();
        let (coop, free) = s.run_encounter(&presets::bittorrent(), &presets::freerider(), 0.5, 6);
        assert!(coop.is_finite() && free.is_finite());
        assert!(coop > free, "cooperators should beat freeriders");
    }

    #[test]
    fn extreme_fractions_keep_one_peer() {
        let s = sim();
        // fraction so small it would round to zero peers.
        let (a, b) = s.run_encounter(&presets::bittorrent(), &presets::bittorrent(), 0.001, 7);
        assert!(a.is_finite());
        assert!(b.is_finite());
    }

    #[test]
    fn deterministic_in_seed() {
        let s = sim();
        let x = s.run_encounter(&presets::birds(), &presets::bittorrent(), 0.5, 11);
        let y = s.run_encounter(&presets::birds(), &presets::bittorrent(), 0.5, 11);
        assert_eq!(x, y);
    }
}
