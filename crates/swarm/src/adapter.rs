//! Plugs the cycle simulator into the DSA framework, both as a typed
//! [`EncounterSim`] and as a registered [`Domain`].

use crate::engine::{run, SimConfig};
use crate::protocol::{design_space, SwarmProtocol};
use crate::{metrics, presets};
use dsa_core::domain::{Domain, DynDomain, Effort};
use dsa_core::sim::EncounterSim;
use dsa_workloads::churn::ChurnModel;
use std::sync::Arc;

/// The file-swarming domain as an [`EncounterSim`], ready for
/// [`dsa_core::pra::quantify`].
#[derive(Debug, Clone)]
pub struct SwarmSim {
    /// Simulation parameters shared by every run of the sweep.
    pub config: SimConfig,
}

impl SwarmSim {
    /// Creates the adapter with the paper's §4.3.1 parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            config: SimConfig::default(),
        }
    }

    /// Creates the adapter with the reduced laptop-scale parameters.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            config: SimConfig::fast(),
        }
    }
}

impl EncounterSim for SwarmSim {
    type Protocol = SwarmProtocol;

    fn run_homogeneous(&self, protocol: &SwarmProtocol, seed: u64) -> f64 {
        dsa_core::sim::with_zero_assignment(self.config.peers, |assignment| {
            run(&[*protocol], assignment, &self.config, seed).throughput
        })
    }

    fn run_encounter(
        &self,
        a: &SwarmProtocol,
        b: &SwarmProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.peers;
        // The paper's splits (50/50, 10/90, 90/10) land exactly on
        // integers for n = 50.
        let (_, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let out = run(&[*a, *b], &assignment, &self.config, seed);
        (out.group_means[0], out.group_means[1])
    }
}

/// The file-swarming domain for the generic registry
/// ([`dsa_core::domain`]): the paper's 3270-protocol space behind the
/// type-erased interface the CLI, sweep cache and cross-domain figures
/// share.
pub struct SwarmDomain;

impl Domain for SwarmDomain {
    type Sim = SwarmSim;

    fn name(&self) -> &'static str {
        "swarm"
    }

    fn space(&self) -> dsa_core::DesignSpace {
        design_space()
    }

    fn protocol(&self, index: usize) -> SwarmProtocol {
        SwarmProtocol::from_index(index)
    }

    fn code(&self, index: usize) -> String {
        SwarmProtocol::from_index(index).to_string()
    }

    fn presets(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("bittorrent", presets::bittorrent().index()),
            ("birds", presets::birds().index()),
            ("loyal", presets::loyal_when_needed().index()),
            ("sorts", presets::sort_s().index()),
            ("random", presets::random_rank().index()),
            ("freerider", presets::freerider().index()),
        ]
    }

    fn aliases(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("bt", presets::bittorrent().index()),
            ("sort-s", presets::sort_s().index()),
        ]
    }

    fn attackers(&self) -> Vec<(&'static str, usize)> {
        vec![("freerider", presets::freerider().index())]
    }

    fn supports_churn(&self) -> bool {
        true
    }

    fn population(&self, effort: Effort) -> usize {
        self.sim(effort, 0.0).config.peers
    }

    fn supports_mixed(&self) -> bool {
        true
    }

    fn run_mixed(&self, effort: Effort, groups: &[(usize, usize)], seed: u64) -> Option<Vec<f64>> {
        // The cycle engine hosts any number of protocol groups natively
        // through its per-peer assignment; the population is exactly the
        // groups' total. Group layout (contiguous, in `groups` order)
        // matches `split_population`, so two groups reproduce
        // `run_encounter` bit for bit and one group the homogeneous run.
        let n: usize = groups.iter().map(|&(_, count)| count).sum();
        let config = SimConfig {
            peers: n,
            ..self.sim(effort, 0.0).config
        };
        let protocols: Vec<SwarmProtocol> = groups
            .iter()
            .map(|&(p, _)| SwarmProtocol::from_index(p))
            .collect();
        let mut assignment = Vec::with_capacity(n);
        for (g, &(_, count)) in groups.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(g, count));
        }
        Some(run(&protocols, &assignment, &config, seed).group_means)
    }

    fn sim(&self, effort: Effort, churn: f64) -> SwarmSim {
        // Rounds per effort level mirror the harness scale presets
        // (`dsa-bench`'s smoke/lab/paper) so generic and typed sweeps
        // agree bit for bit.
        let rounds = match effort {
            Effort::Smoke => 60,
            Effort::Lab => 120,
            Effort::Paper => SimConfig::default().rounds,
        };
        let config = SimConfig {
            rounds,
            churn: if churn > 0.0 {
                ChurnModel::PerRound { rate: churn }
            } else {
                ChurnModel::None
            },
            ..SimConfig::default()
        };
        SwarmSim { config }
    }

    fn sim_signature(&self, effort: Effort) -> String {
        // Fingerprint the SimConfig itself (not the SwarmSim wrapper) so
        // the typed sweep path in dsa-bench, which builds its SimConfig
        // from a Scale preset, produces the same signature and shares
        // the cache entry.
        format!("{:?}", self.sim(effort, 0.0).config)
    }

    fn simulate_report(&self, index: usize, effort: Effort, churn: f64, seed: u64) -> String {
        let sim = self.sim(effort, churn);
        let p = SwarmProtocol::from_index(index);
        let out = dsa_core::sim::with_zero_assignment(sim.config.peers, |assignment| {
            run(&[p], assignment, &sim.config, seed)
        });
        let (fast, slow) = metrics::fast_slow_split(&out);
        format!(
            "protocol    : {p}\n\
             throughput  : {:.2} KiB/round/peer\n\
             utilization : {:.3}\n\
             fairness    : {:.3} (Jain)\n\
             fast / slow : {fast:.2} / {slow:.2}\n",
            out.throughput,
            metrics::utilization(&out),
            metrics::jain_fairness(&out),
        )
    }
}

/// Registers (or refreshes) the swarm domain in the global registry and
/// returns its handle.
pub fn register() -> Arc<dyn DynDomain> {
    dsa_core::domain::register_domain(SwarmDomain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dsa_workloads::bandwidth::BandwidthDist;
    use dsa_workloads::churn::ChurnModel;

    fn sim() -> SwarmSim {
        SwarmSim {
            config: SimConfig {
                peers: 20,
                rounds: 80,
                bandwidth: BandwidthDist::Constant(10.0),
                churn: ChurnModel::None,
                aspiration_gain: 0.1,
                stratified_bandwidth: true,
            },
        }
    }

    #[test]
    fn homogeneous_matches_engine() {
        let s = sim();
        let via_trait = s.run_homogeneous(&presets::bittorrent(), 5);
        let direct = run(
            &[presets::bittorrent()],
            &vec![0; s.config.peers],
            &s.config,
            5,
        )
        .throughput;
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn encounter_splits_population() {
        let s = sim();
        let (coop, free) = s.run_encounter(&presets::bittorrent(), &presets::freerider(), 0.5, 6);
        assert!(coop.is_finite() && free.is_finite());
        assert!(coop > free, "cooperators should beat freeriders");
    }

    #[test]
    fn extreme_fractions_keep_one_peer() {
        let s = sim();
        // fraction so small it would round to zero peers.
        let (a, b) = s.run_encounter(&presets::bittorrent(), &presets::bittorrent(), 0.001, 7);
        assert!(a.is_finite());
        assert!(b.is_finite());
    }

    #[test]
    fn deterministic_in_seed() {
        let s = sim();
        let x = s.run_encounter(&presets::birds(), &presets::bittorrent(), 0.5, 11);
        let y = s.run_encounter(&presets::birds(), &presets::bittorrent(), 0.5, 11);
        assert_eq!(x, y);
    }

    #[test]
    fn domain_parses_presets_and_roundtrips_codes() {
        let d = register();
        assert_eq!(d.name(), "swarm");
        assert_eq!(d.size(), crate::protocol::SPACE_SIZE);
        let i = d.parse("bittorrent").unwrap();
        assert_eq!(i, presets::bittorrent().index());
        assert_eq!(d.parse("bt").unwrap(), i);
        assert_eq!(d.code(i), presets::bittorrent().to_string());
        assert!(d.parse("9999").is_err());
        assert!(d.supports_churn());
    }

    #[test]
    fn churn_hook_changes_the_encounter_stream() {
        let d = register();
        let bt = presets::bittorrent().index();
        let fr = presets::freerider().index();
        let calm = d.run_encounter(bt, fr, 0.9, Effort::Smoke, 9);
        let churned = d.run_encounter_churn(bt, fr, 0.9, Effort::Smoke, 0.1, 9);
        assert_ne!(calm, churned, "churn must perturb the swarm encounter");
        // No dedicated whitewash design point in the swarm space: churn
        // is the only identity-shedding channel.
        assert!(d.whitewasher().is_none());
    }

    #[test]
    fn native_mixed_honours_the_degeneracy_contracts() {
        let d = register();
        assert!(d.supports_mixed());
        let n = d.population(Effort::Smoke);
        let bt = presets::bittorrent().index();
        let fr = presets::freerider().index();
        // One group == the homogeneous run, bit for bit.
        assert_eq!(
            d.run_mixed(&[(bt, n)], Effort::Smoke, 7),
            vec![d.run_homogeneous(bt, Effort::Smoke, 7)]
        );
        // Two groups == the plain encounter at the count ratio.
        let (ua, ub) = d.run_encounter(bt, fr, 0.5, Effort::Smoke, 7);
        assert_eq!(
            d.run_mixed(&[(bt, n / 2), (fr, n - n / 2)], Effort::Smoke, 7),
            vec![ua, ub]
        );
        // Three groups run natively in ONE simulation and stay
        // deterministic in the seed.
        let groups = [(bt, 30), (presets::birds().index(), 10), (fr, 10)];
        let us = d.run_mixed(&groups, Effort::Smoke, 9);
        assert_eq!(us.len(), 3);
        assert_eq!(us, d.run_mixed(&groups, Effort::Smoke, 9));
        assert!(us.iter().all(|u| u.is_finite()));
    }

    #[test]
    fn domain_simulate_report_names_metrics() {
        let d = SwarmDomain;
        let report = d.simulate_report(presets::bittorrent().index(), Effort::Smoke, 0.0, 3);
        assert!(report.contains("throughput"));
        assert!(report.contains("fairness"));
    }
}
