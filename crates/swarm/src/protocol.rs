//! Protocol descriptors and the 3270-point enumeration.
//!
//! Every protocol is a combination of the paper's actualized dimensions.
//! Protocols are canonically indexed (`0..SPACE_SIZE`) in a fixed mixed
//! radix: stranger policy (10) × selection policy (109) × allocation (3),
//! matching §4.2's arithmetic `10 × 109 × 3 = 3270`.

use std::fmt;

/// Number of protocols in the paper's actualized design space.
pub const SPACE_SIZE: usize = 10 * 109 * 3;

/// Maximum number of strangers a policy may cooperate with (`h ≤ 3`).
pub const MAX_STRANGERS: u8 = 3;

/// Maximum number of partners (`k ≤ 9`).
pub const MAX_PARTNERS: u8 = 9;

/// Stranger policy (dimension B of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrangerPolicy {
    /// B1: give resources to up to `h` strangers every round.
    Periodic,
    /// B2: give to strangers only while the partner set is not full
    /// (strangers borrow vacant partner slots).
    WhenNeeded,
    /// B3: always defect on strangers — contact them but transfer nothing
    /// (a 0-byte contact still registers in the recipient's history; see
    /// `DESIGN.md` §5).
    Defect,
}

impl StrangerPolicy {
    /// All policies in enumeration order (B1, B2, B3).
    pub const ALL: [StrangerPolicy; 3] = [
        StrangerPolicy::Periodic,
        StrangerPolicy::WhenNeeded,
        StrangerPolicy::Defect,
    ];

    /// Paper label (B1/B2/B3).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Periodic => "B1",
            Self::WhenNeeded => "B2",
            Self::Defect => "B3",
        }
    }
}

/// Candidate-list rule (dimension C of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateList {
    /// C1 (TFT): only peers that interacted with me in the last round.
    Tft,
    /// C2 (TF2T): peers that interacted in either of the last two rounds.
    Tf2t,
}

impl CandidateList {
    /// All rules in enumeration order (C1, C2).
    pub const ALL: [CandidateList; 2] = [CandidateList::Tft, CandidateList::Tf2t];

    /// Paper label (C1/C2).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Tft => "C1",
            Self::Tf2t => "C2",
        }
    }
}

/// Ranking function over the candidate list (dimension I of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ranking {
    /// I1: fastest first (BitTorrent's choice).
    Fastest,
    /// I2: slowest first.
    Slowest,
    /// I3: closest to one's own upload rate first (Birds).
    Proximity,
    /// I4: closest to an adaptive aspiration level first (Win-Stay-
    /// Lose-Shift inspired).
    Adaptive,
    /// I5: longest-standing cooperators first.
    Loyal,
    /// I6: uniformly random order.
    Random,
}

impl Ranking {
    /// All rankings in enumeration order (I1..I6).
    pub const ALL: [Ranking; 6] = [
        Ranking::Fastest,
        Ranking::Slowest,
        Ranking::Proximity,
        Ranking::Adaptive,
        Ranking::Loyal,
        Ranking::Random,
    ];

    /// Paper label (I1..I6).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Fastest => "I1",
            Self::Slowest => "I2",
            Self::Proximity => "I3",
            Self::Adaptive => "I4",
            Self::Loyal => "I5",
            Self::Random => "I6",
        }
    }
}

/// Resource-allocation policy (dimension R of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Allocation {
    /// R1: equal split over slots.
    EqualSplit,
    /// R2: proportional to what each partner gave last round.
    PropShare,
    /// R3: give nothing to partners (free-ride); stranger slots are
    /// unaffected (the paper fixes stranger allocation, §4.2 footnote).
    Freeride,
}

impl Allocation {
    /// All policies in enumeration order (R1, R2, R3).
    pub const ALL: [Allocation; 3] = [
        Allocation::EqualSplit,
        Allocation::PropShare,
        Allocation::Freeride,
    ];

    /// Paper label (R1/R2/R3).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::EqualSplit => "R1",
            Self::PropShare => "R2",
            Self::Freeride => "R3",
        }
    }
}

/// A complete protocol: one actualization per dimension.
///
/// `stranger_slots == 0` means "never contact strangers" (the policy field
/// is then irrelevant and canonicalized to B1); `partner_slots == 0` means
/// "select nobody" (candidates/ranking canonicalized to C1/I1). These two
/// degenerate levels are the paper's "+1" policies that bring the counts
/// to 10 and 109.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwarmProtocol {
    /// Stranger policy (B dimension).
    pub stranger_policy: StrangerPolicy,
    /// `h`: stranger slots, `0..=3`.
    pub stranger_slots: u8,
    /// Candidate-list rule (C dimension).
    pub candidates: CandidateList,
    /// Ranking function (I dimension).
    pub ranking: Ranking,
    /// `k`: partner slots, `0..=9`.
    pub partner_slots: u8,
    /// Allocation policy (R dimension).
    pub allocation: Allocation,
}

impl SwarmProtocol {
    /// Canonicalizes the degenerate levels so that equal behavior implies
    /// equal representation (and hence equal index).
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.stranger_slots == 0 {
            self.stranger_policy = StrangerPolicy::Periodic;
        }
        if self.partner_slots == 0 {
            self.candidates = CandidateList::Tft;
            self.ranking = Ranking::Fastest;
        }
        self
    }

    /// The stranger-dimension index in `0..10`.
    #[must_use]
    pub fn stranger_index(&self) -> usize {
        if self.stranger_slots == 0 {
            0
        } else {
            let policy = StrangerPolicy::ALL
                .iter()
                .position(|p| *p == self.stranger_policy)
                .expect("policy in ALL");
            1 + (usize::from(self.stranger_slots) - 1) * 3 + policy
        }
    }

    /// The selection-dimension index in `0..109`.
    #[must_use]
    pub fn selection_index(&self) -> usize {
        if self.partner_slots == 0 {
            0
        } else {
            let c = CandidateList::ALL
                .iter()
                .position(|x| *x == self.candidates)
                .expect("candidate rule in ALL");
            let r = Ranking::ALL
                .iter()
                .position(|x| *x == self.ranking)
                .expect("ranking in ALL");
            1 + (usize::from(self.partner_slots) - 1) * 12 + c * 6 + r
        }
    }

    /// The allocation-dimension index in `0..3`.
    #[must_use]
    pub fn allocation_index(&self) -> usize {
        Allocation::ALL
            .iter()
            .position(|a| *a == self.allocation)
            .expect("allocation in ALL")
    }

    /// The flat index in `0..SPACE_SIZE` (canonicalized).
    #[must_use]
    pub fn index(&self) -> usize {
        let c = self.canonical();
        (c.stranger_index() * 109 + c.selection_index()) * 3 + c.allocation_index()
    }

    /// Decodes a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= SPACE_SIZE`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < SPACE_SIZE, "protocol index {index} out of range");
        let allocation = Allocation::ALL[index % 3];
        let rest = index / 3;
        let selection = rest % 109;
        let stranger = rest / 109;

        let (stranger_policy, stranger_slots) = if stranger == 0 {
            (StrangerPolicy::Periodic, 0)
        } else {
            let s = stranger - 1;
            (StrangerPolicy::ALL[s % 3], (s / 3 + 1) as u8)
        };
        let (candidates, ranking, partner_slots) = if selection == 0 {
            (CandidateList::Tft, Ranking::Fastest, 0)
        } else {
            let s = selection - 1;
            let k = (s / 12 + 1) as u8;
            let c = CandidateList::ALL[(s % 12) / 6];
            let r = Ranking::ALL[s % 6];
            (c, r, k)
        };

        Self {
            stranger_policy,
            stranger_slots,
            candidates,
            ranking,
            partner_slots,
            allocation,
        }
    }

    /// Iterates the entire design space in index order.
    pub fn all() -> impl Iterator<Item = SwarmProtocol> {
        (0..SPACE_SIZE).map(Self::from_index)
    }

    /// Whether the protocol never uploads anything to partners (R3).
    #[must_use]
    pub fn is_freerider(&self) -> bool {
        self.allocation == Allocation::Freeride
    }

    /// Whether the protocol belongs to the Birds family (§4.4.2: "a
    /// protocol that at the very least ranks others by Proximity").
    #[must_use]
    pub fn is_birds_family(&self) -> bool {
        self.partner_slots > 0 && self.ranking == Ranking::Proximity
    }

    /// The number of *reserved* upload slots, which defines the per-slot
    /// bandwidth quantum `capacity / reserved_slots`:
    ///
    /// * B1 reserves `k + h` (dedicated stranger slots),
    /// * B2 reserves `k` (strangers borrow vacant partner slots),
    /// * B3 and h = 0 reserve `k` (defect contacts carry no bandwidth).
    ///
    /// A protocol with no slots at all reserves 1 to keep the quantum
    /// finite (it never uploads anyway).
    #[must_use]
    pub fn reserved_slots(&self) -> u8 {
        let base = match (self.stranger_policy, self.stranger_slots) {
            (StrangerPolicy::Periodic, h) if h > 0 => self.partner_slots + h,
            _ => self.partner_slots,
        };
        base.max(1)
    }
}

impl fmt::Display for SwarmProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.canonical();
        if c.stranger_slots == 0 {
            write!(f, "B0h0")?;
        } else {
            write!(f, "{}h{}", c.stranger_policy.label(), c.stranger_slots)?;
        }
        if c.partner_slots == 0 {
            write!(f, "-k0")?;
        } else {
            write!(
                f,
                "-{}-{}k{}",
                c.candidates.label(),
                c.ranking.label(),
                c.partner_slots
            )?;
        }
        write!(f, "-{}", c.allocation.label())
    }
}

/// Builds the generic [`dsa_core::DesignSpace`] descriptor for this
/// domain, with human-readable level names (used by the harness output
/// and the regression encoder).
#[must_use]
pub fn design_space() -> dsa_core::DesignSpace {
    let stranger_levels: Vec<String> = (0..10)
        .map(|i| {
            if i == 0 {
                "none".to_string()
            } else {
                let s = i - 1;
                format!("{}h{}", StrangerPolicy::ALL[s % 3].label(), s / 3 + 1)
            }
        })
        .collect();
    let selection_levels: Vec<String> = (0..109)
        .map(|i| {
            if i == 0 {
                "k0".to_string()
            } else {
                let s = i - 1;
                format!(
                    "{}-{}k{}",
                    CandidateList::ALL[(s % 12) / 6].label(),
                    Ranking::ALL[s % 6].label(),
                    s / 12 + 1
                )
            }
        })
        .collect();
    let alloc_levels: Vec<String> = Allocation::ALL
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    dsa_core::DesignSpace::new(
        "p2p-file-swarming",
        vec![
            dsa_core::Dimension::new("Stranger", stranger_levels),
            dsa_core::Dimension::new("Selection", selection_levels),
            dsa_core::Dimension::new("Allocation", alloc_levels),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_size_is_3270() {
        assert_eq!(SPACE_SIZE, 3270);
        assert_eq!(SwarmProtocol::all().count(), 3270);
    }

    #[test]
    fn index_roundtrip_entire_space() {
        for i in 0..SPACE_SIZE {
            let p = SwarmProtocol::from_index(i);
            assert_eq!(p.index(), i, "roundtrip failed at {i}: {p:?}");
        }
    }

    #[test]
    fn all_protocols_are_distinct() {
        let set: HashSet<SwarmProtocol> = SwarmProtocol::all().collect();
        assert_eq!(set.len(), SPACE_SIZE);
    }

    #[test]
    fn canonicalization_merges_degenerate_levels() {
        let a = SwarmProtocol {
            stranger_policy: StrangerPolicy::Defect,
            stranger_slots: 0,
            candidates: CandidateList::Tf2t,
            ranking: Ranking::Loyal,
            partner_slots: 0,
            allocation: Allocation::EqualSplit,
        };
        let b = SwarmProtocol {
            stranger_policy: StrangerPolicy::Periodic,
            stranger_slots: 0,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: 0,
            allocation: Allocation::EqualSplit,
        };
        assert_eq!(a.index(), b.index());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn dimension_counts_match_paper() {
        let strangers: HashSet<usize> = SwarmProtocol::all().map(|p| p.stranger_index()).collect();
        let selections: HashSet<usize> =
            SwarmProtocol::all().map(|p| p.selection_index()).collect();
        assert_eq!(strangers.len(), 10);
        assert_eq!(selections.len(), 109);
    }

    #[test]
    fn display_is_compact_and_stable() {
        let p = SwarmProtocol {
            stranger_policy: StrangerPolicy::WhenNeeded,
            stranger_slots: 2,
            candidates: CandidateList::Tft,
            ranking: Ranking::Loyal,
            partner_slots: 7,
            allocation: Allocation::PropShare,
        };
        assert_eq!(p.to_string(), "B2h2-C1-I5k7-R2");
        let zero = SwarmProtocol::from_index(0);
        assert_eq!(zero.to_string(), "B0h0-k0-R1");
    }

    #[test]
    fn reserved_slots_by_policy() {
        let mk = |policy, h, k| SwarmProtocol {
            stranger_policy: policy,
            stranger_slots: h,
            candidates: CandidateList::Tft,
            ranking: Ranking::Fastest,
            partner_slots: k,
            allocation: Allocation::EqualSplit,
        };
        assert_eq!(mk(StrangerPolicy::Periodic, 2, 4).reserved_slots(), 6);
        assert_eq!(mk(StrangerPolicy::WhenNeeded, 2, 4).reserved_slots(), 4);
        assert_eq!(mk(StrangerPolicy::Defect, 2, 4).reserved_slots(), 4);
        assert_eq!(mk(StrangerPolicy::Periodic, 0, 4).reserved_slots(), 4);
        assert_eq!(mk(StrangerPolicy::Periodic, 0, 0).reserved_slots(), 1);
    }

    #[test]
    fn design_space_descriptor_matches() {
        let ds = design_space();
        assert_eq!(ds.size(), SPACE_SIZE);
        // The flat indexing must agree with SwarmProtocol::index().
        for i in [0usize, 1, 2, 3, 500, 3269] {
            let p = SwarmProtocol::from_index(i);
            let coords = vec![
                p.stranger_index(),
                p.selection_index(),
                p.allocation_index(),
            ];
            assert_eq!(ds.index(&coords), i);
        }
    }

    #[test]
    fn birds_family_detection() {
        let birds = SwarmProtocol {
            stranger_policy: StrangerPolicy::Periodic,
            stranger_slots: 1,
            candidates: CandidateList::Tft,
            ranking: Ranking::Proximity,
            partner_slots: 4,
            allocation: Allocation::EqualSplit,
        };
        assert!(birds.is_birds_family());
        let not = SwarmProtocol {
            ranking: Ranking::Fastest,
            ..birds
        };
        assert!(!not.is_birds_family());
        let degenerate = SwarmProtocol {
            partner_slots: 0,
            ..birds
        };
        assert!(!degenerate.is_birds_family());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = SwarmProtocol::from_index(SPACE_SIZE);
    }
}
