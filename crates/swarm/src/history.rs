//! Interaction history: the per-round contact/transfer ledger and the
//! loyalty counters.
//!
//! A *contact* is a directed interaction `giver → receiver` carrying an
//! amount ≥ 0. Zero-amount contacts exist (B3 defect contacts, R3
//! free-riding toward partners) and still register in the receiver's
//! history — this is what lets Sort-Slowest peers adopt 0-givers as
//! partners, the mechanism behind the paper's top-performance protocol
//! (§4.4; `DESIGN.md` §5).

/// One round's contact ledger for an `n`-peer population.
///
/// Stored as per-receiver rows of `(giver, amount)` pairs in one flat
/// arena (`row r = pairs[r * n .. r * n + deg[r]]`) rather than dense
/// n×n arrays: the engine's round loop appends ~degree contacts per
/// receiver and then iterates exactly those, so the sparse layout makes
/// [`Ledger::record_new`] a two-write append, [`Ledger::row`] a
/// contiguous read, and [`Ledger::clear`] an O(n) counter reset — no
/// per-slot zeroing of untouched memory. Entries keep their insertion
/// order; the engine records in ascending giver order, which is what
/// keeps row iteration bit-compatible with the dense scan it replaced.
#[derive(Debug, Clone)]
pub struct Ledger {
    n: usize,
    pairs: Vec<(usize, f64)>,
    deg: Vec<usize>,
}

/// Compares live rows only — stale arena slots beyond each row's length
/// are not part of the ledger's logical content.
impl PartialEq for Ledger {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.deg == other.deg
            && (0..self.n).all(|r| self.row(r) == other.row(r))
    }
}

impl Ledger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pairs: vec![(0, 0.0); n * n],
            deg: vec![0; n],
        }
    }

    /// Clears all entries (reused between rounds to avoid reallocation).
    /// O(n): stale pairs beyond each row's length are simply ignored.
    pub fn clear(&mut self) {
        self.deg.fill(0);
    }

    /// Records a contact `giver → receiver` transferring `amount ≥ 0`.
    /// Repeated records accumulate the amount.
    #[inline]
    pub fn record(&mut self, receiver: usize, giver: usize, amount: f64) {
        debug_assert!(amount >= 0.0, "negative transfer");
        let base = receiver * self.n;
        let row = &mut self.pairs[base..base + self.deg[receiver]];
        if let Some(e) = row.iter_mut().find(|e| e.0 == giver) {
            e.1 += amount;
        } else {
            self.pairs[base + self.deg[receiver]] = (giver, amount);
            self.deg[receiver] += 1;
        }
    }

    /// [`Ledger::record`] for a `(receiver, giver)` pair known to be new
    /// this round — skips the duplicate scan. The engine's round loop
    /// qualifies: each giver contacts a receiver at most once per round
    /// (partners and strangers are disjoint).
    #[inline]
    pub fn record_new(&mut self, receiver: usize, giver: usize, amount: f64) {
        debug_assert!(amount >= 0.0, "negative transfer");
        debug_assert!(
            !self.contacted(receiver, giver),
            "record_new on an existing contact"
        );
        let base = receiver * self.n;
        self.pairs[base + self.deg[receiver]] = (giver, amount);
        self.deg[receiver] += 1;
    }

    /// The `(giver, amount)` contacts of `receiver` this round, in
    /// insertion order.
    #[inline]
    #[must_use]
    pub fn row(&self, receiver: usize) -> &[(usize, f64)] {
        &self.pairs[receiver * self.n..receiver * self.n + self.deg[receiver]]
    }

    /// Whether `giver` contacted `receiver` this round.
    #[inline]
    #[must_use]
    pub fn contacted(&self, receiver: usize, giver: usize) -> bool {
        self.row(receiver).iter().any(|e| e.0 == giver)
    }

    /// Amount received by `receiver` from `giver` this round (0 if no
    /// contact).
    #[inline]
    #[must_use]
    pub fn amount(&self, receiver: usize, giver: usize) -> f64 {
        self.row(receiver)
            .iter()
            .find(|e| e.0 == giver)
            .map_or(0.0, |e| e.1)
    }

    /// Total received by `receiver` this round, summed in insertion
    /// order (ascending giver order when written by the engine — the
    /// same bits as the dense row scan this replaced, since skipped
    /// zero slots are additive identities).
    #[must_use]
    pub fn received_total(&self, receiver: usize) -> f64 {
        self.row(receiver).iter().map(|e| e.1).sum()
    }

    /// Erases all state involving peer `p` (both as receiver and giver);
    /// used when churn replaces a peer.
    pub fn forget_peer(&mut self, p: usize) {
        self.deg[p] = 0;
        for r in 0..self.n {
            let base = r * self.n;
            let mut kept = 0;
            for c in 0..self.deg[r] {
                let e = self.pairs[base + c];
                if e.0 != p {
                    self.pairs[base + kept] = e;
                    kept += 1;
                }
            }
            self.deg[r] = kept;
        }
    }

    /// Population size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if sized for zero peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Consecutive-cooperation counters: `loyalty(i, j)` = number of
/// consecutive rounds, up to and including the last, in which `j` gave `i`
/// a *positive* amount. Zero-amount contacts break loyalty (they are
/// defections), which is why Sort-Loyal protocols form stable productive
/// partnerships rather than latching onto 0-givers.
#[derive(Debug, Clone, PartialEq)]
pub struct Loyalty {
    n: usize,
    streak: Vec<u32>,
    /// Scratch marks for [`Loyalty::update`]; always all-false between
    /// calls (set and unset within one update).
    mark: Vec<bool>,
}

impl Loyalty {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            streak: vec![0; n * n],
            mark: vec![false; n],
        }
    }

    /// Updates all counters from a finished round's ledger.
    pub fn update(&mut self, round: &Ledger) {
        debug_assert_eq!(round.len(), self.n);
        for i in 0..self.n {
            let row = round.row(i);
            for &(g, a) in row {
                self.mark[g] = a > 0.0;
            }
            let base = i * self.n;
            for (j, s) in self.streak[base..base + self.n].iter_mut().enumerate() {
                if self.mark[j] {
                    *s += 1;
                } else {
                    *s = 0;
                }
            }
            for &(g, _) in row {
                self.mark[g] = false;
            }
        }
    }

    /// The current streak of `j` giving to `i`.
    #[inline]
    #[must_use]
    pub fn streak(&self, receiver: usize, giver: usize) -> u32 {
        self.streak[receiver * self.n + giver]
    }

    /// The receiver's streak row indexed by giver.
    #[inline]
    #[must_use]
    pub fn row(&self, receiver: usize) -> &[u32] {
        &self.streak[receiver * self.n..(receiver + 1) * self.n]
    }

    /// Erases all streaks involving peer `p` (churn replacement).
    pub fn forget_peer(&mut self, p: usize) {
        for j in 0..self.n {
            self.streak[p * self.n + j] = 0;
            self.streak[j * self.n + p] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 5.0);
        assert!(l.contacted(0, 1));
        assert!(!l.contacted(1, 0));
        assert_eq!(l.amount(0, 1), 5.0);
        assert_eq!(l.amount(0, 2), 0.0);
    }

    #[test]
    fn zero_amount_contact_registers() {
        let mut l = Ledger::new(2);
        l.record(1, 0, 0.0);
        assert!(l.contacted(1, 0));
        assert_eq!(l.amount(1, 0), 0.0);
    }

    #[test]
    fn amounts_accumulate() {
        let mut l = Ledger::new(2);
        l.record(0, 1, 2.0);
        l.record(0, 1, 3.0);
        assert_eq!(l.amount(0, 1), 5.0);
    }

    #[test]
    fn record_new_appends_and_row_preserves_order() {
        let mut l = Ledger::new(4);
        l.record_new(0, 1, 2.0);
        l.record_new(0, 3, 4.0);
        assert_eq!(l.row(0), &[(1, 2.0), (3, 4.0)]);
        assert_eq!(l.amount(0, 3), 4.0);
    }

    #[test]
    fn received_total_sums_givers() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 2.0);
        l.record(0, 2, 4.0);
        assert_eq!(l.received_total(0), 6.0);
        assert_eq!(l.received_total(1), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut l = Ledger::new(2);
        l.record(0, 1, 2.0);
        l.clear();
        assert!(!l.contacted(0, 1));
        assert_eq!(l.received_total(0), 0.0);
        assert!(l.row(0).is_empty());
    }

    #[test]
    fn forget_peer_erases_both_directions() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 2.0);
        l.record(1, 2, 3.0);
        l.forget_peer(1);
        assert!(!l.contacted(0, 1));
        assert!(!l.contacted(1, 2));
    }

    #[test]
    fn forget_peer_compacts_but_keeps_others() {
        let mut l = Ledger::new(4);
        l.record(0, 1, 1.0);
        l.record(0, 2, 2.0);
        l.record(0, 3, 3.0);
        l.forget_peer(2);
        assert_eq!(l.row(0), &[(1, 1.0), (3, 3.0)]);
    }

    #[test]
    fn loyalty_counts_consecutive_positive_rounds() {
        let mut loy = Loyalty::new(2);
        let mut round = Ledger::new(2);
        round.record(0, 1, 1.0);
        loy.update(&round);
        loy.update(&round);
        assert_eq!(loy.streak(0, 1), 2);
        assert_eq!(loy.streak(1, 0), 0);
    }

    #[test]
    fn loyalty_broken_by_zero_contact() {
        let mut loy = Loyalty::new(2);
        let mut giving = Ledger::new(2);
        giving.record(0, 1, 1.0);
        loy.update(&giving);
        assert_eq!(loy.streak(0, 1), 1);
        // Next round j contacts but gives 0: streak resets.
        let mut stingy = Ledger::new(2);
        stingy.record(0, 1, 0.0);
        loy.update(&stingy);
        assert_eq!(loy.streak(0, 1), 0);
    }

    #[test]
    fn loyalty_forget_peer() {
        let mut loy = Loyalty::new(2);
        let mut round = Ledger::new(2);
        round.record(0, 1, 1.0);
        round.record(1, 0, 1.0);
        loy.update(&round);
        loy.forget_peer(0);
        assert_eq!(loy.streak(0, 1), 0);
        assert_eq!(loy.streak(1, 0), 0);
    }
}
