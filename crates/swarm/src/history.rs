//! Interaction history: the per-round contact/transfer ledger and the
//! loyalty counters.
//!
//! A *contact* is a directed interaction `giver → receiver` carrying an
//! amount ≥ 0. Zero-amount contacts exist (B3 defect contacts, R3
//! free-riding toward partners) and still register in the receiver's
//! history — this is what lets Sort-Slowest peers adopt 0-givers as
//! partners, the mechanism behind the paper's top-performance protocol
//! (§4.4; `DESIGN.md` §5).

/// One round's dense contact ledger for an `n`-peer population.
///
/// Indexed `(receiver, giver)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    n: usize,
    contact: Vec<bool>,
    amount: Vec<f64>,
}

impl Ledger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            contact: vec![false; n * n],
            amount: vec![0.0; n * n],
        }
    }

    /// Clears all entries (reused between rounds to avoid reallocation).
    pub fn clear(&mut self) {
        self.contact.fill(false);
        self.amount.fill(0.0);
    }

    /// Records a contact `giver → receiver` transferring `amount ≥ 0`.
    /// Repeated records accumulate the amount.
    #[inline]
    pub fn record(&mut self, receiver: usize, giver: usize, amount: f64) {
        debug_assert!(amount >= 0.0, "negative transfer");
        let idx = receiver * self.n + giver;
        self.contact[idx] = true;
        self.amount[idx] += amount;
    }

    /// Whether `giver` contacted `receiver` this round.
    #[inline]
    #[must_use]
    pub fn contacted(&self, receiver: usize, giver: usize) -> bool {
        self.contact[receiver * self.n + giver]
    }

    /// Amount received by `receiver` from `giver` this round (0 if no
    /// contact).
    #[inline]
    #[must_use]
    pub fn amount(&self, receiver: usize, giver: usize) -> f64 {
        self.amount[receiver * self.n + giver]
    }

    /// Total received by `receiver` this round.
    #[must_use]
    pub fn received_total(&self, receiver: usize) -> f64 {
        self.amount[receiver * self.n..(receiver + 1) * self.n]
            .iter()
            .sum()
    }

    /// Erases all state involving peer `p` (both as receiver and giver);
    /// used when churn replaces a peer.
    pub fn forget_peer(&mut self, p: usize) {
        for j in 0..self.n {
            let as_recv = p * self.n + j;
            self.contact[as_recv] = false;
            self.amount[as_recv] = 0.0;
            let as_giver = j * self.n + p;
            self.contact[as_giver] = false;
            self.amount[as_giver] = 0.0;
        }
    }

    /// Population size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if sized for zero peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Consecutive-cooperation counters: `loyalty(i, j)` = number of
/// consecutive rounds, up to and including the last, in which `j` gave `i`
/// a *positive* amount. Zero-amount contacts break loyalty (they are
/// defections), which is why Sort-Loyal protocols form stable productive
/// partnerships rather than latching onto 0-givers.
#[derive(Debug, Clone, PartialEq)]
pub struct Loyalty {
    n: usize,
    streak: Vec<u32>,
}

impl Loyalty {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            streak: vec![0; n * n],
        }
    }

    /// Updates all counters from a finished round's ledger.
    pub fn update(&mut self, round: &Ledger) {
        debug_assert_eq!(round.len(), self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                let idx = i * self.n + j;
                if round.amount(i, j) > 0.0 {
                    self.streak[idx] += 1;
                } else {
                    self.streak[idx] = 0;
                }
            }
        }
    }

    /// The current streak of `j` giving to `i`.
    #[inline]
    #[must_use]
    pub fn streak(&self, receiver: usize, giver: usize) -> u32 {
        self.streak[receiver * self.n + giver]
    }

    /// Erases all streaks involving peer `p` (churn replacement).
    pub fn forget_peer(&mut self, p: usize) {
        for j in 0..self.n {
            self.streak[p * self.n + j] = 0;
            self.streak[j * self.n + p] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 5.0);
        assert!(l.contacted(0, 1));
        assert!(!l.contacted(1, 0));
        assert_eq!(l.amount(0, 1), 5.0);
        assert_eq!(l.amount(0, 2), 0.0);
    }

    #[test]
    fn zero_amount_contact_registers() {
        let mut l = Ledger::new(2);
        l.record(1, 0, 0.0);
        assert!(l.contacted(1, 0));
        assert_eq!(l.amount(1, 0), 0.0);
    }

    #[test]
    fn amounts_accumulate() {
        let mut l = Ledger::new(2);
        l.record(0, 1, 2.0);
        l.record(0, 1, 3.0);
        assert_eq!(l.amount(0, 1), 5.0);
    }

    #[test]
    fn received_total_sums_givers() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 2.0);
        l.record(0, 2, 4.0);
        assert_eq!(l.received_total(0), 6.0);
        assert_eq!(l.received_total(1), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut l = Ledger::new(2);
        l.record(0, 1, 2.0);
        l.clear();
        assert!(!l.contacted(0, 1));
        assert_eq!(l.received_total(0), 0.0);
    }

    #[test]
    fn forget_peer_erases_both_directions() {
        let mut l = Ledger::new(3);
        l.record(0, 1, 2.0);
        l.record(1, 2, 3.0);
        l.forget_peer(1);
        assert!(!l.contacted(0, 1));
        assert!(!l.contacted(1, 2));
    }

    #[test]
    fn loyalty_counts_consecutive_positive_rounds() {
        let mut loy = Loyalty::new(2);
        let mut round = Ledger::new(2);
        round.record(0, 1, 1.0);
        loy.update(&round);
        loy.update(&round);
        assert_eq!(loy.streak(0, 1), 2);
        assert_eq!(loy.streak(1, 0), 0);
    }

    #[test]
    fn loyalty_broken_by_zero_contact() {
        let mut loy = Loyalty::new(2);
        let mut giving = Ledger::new(2);
        giving.record(0, 1, 1.0);
        loy.update(&giving);
        assert_eq!(loy.streak(0, 1), 1);
        // Next round j contacts but gives 0: streak resets.
        let mut stingy = Ledger::new(2);
        stingy.record(0, 1, 0.0);
        loy.update(&stingy);
        assert_eq!(loy.streak(0, 1), 0);
    }

    #[test]
    fn loyalty_forget_peer() {
        let mut loy = Loyalty::new(2);
        let mut round = Ledger::new(2);
        round.record(0, 1, 1.0);
        round.record(1, 0, 1.0);
        loy.update(&round);
        loy.forget_peer(0);
        assert_eq!(loy.streak(0, 1), 0);
        assert_eq!(loy.streak(1, 0), 0);
    }
}
