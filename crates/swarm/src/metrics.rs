//! Post-run analysis helpers: utilization, class breakdowns.

use crate::engine::RunOutcome;

/// Population utilization: throughput as a fraction of the mean upload
/// capacity. 1.0 means every uploaded byte found a recipient slot and no
/// quantum was wasted.
#[must_use]
pub fn utilization(outcome: &RunOutcome) -> f64 {
    let mean_capacity =
        outcome.capacities.iter().sum::<f64>() / outcome.capacities.len().max(1) as f64;
    if mean_capacity <= 0.0 {
        return 0.0;
    }
    outcome.throughput / mean_capacity
}

/// Mean utility of peers whose capacity is at or above the population
/// median ("fast"), and of those below ("slow") — the Section 2 class
/// split, measured empirically.
#[must_use]
pub fn fast_slow_split(outcome: &RunOutcome) -> (f64, f64) {
    let median = dsa_stats::describe::median(&outcome.capacities);
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    for (u, c) in outcome.utilities.iter().zip(&outcome.capacities) {
        if *c >= median {
            fast.push(*u);
        } else {
            slow.push(*u);
        }
    }
    (
        dsa_stats::describe::mean(&fast),
        dsa_stats::describe::mean(&slow),
    )
}

/// Jain's fairness index over per-peer utilities: 1 = perfectly equal,
/// 1/n = maximally concentrated. An extension metric beyond the paper,
/// useful for characterizing what the high-throughput protocols trade
/// away.
#[must_use]
pub fn jain_fairness(outcome: &RunOutcome) -> f64 {
    let xs = &outcome.utilities;
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(utilities: Vec<f64>, capacities: Vec<f64>) -> RunOutcome {
        let n = utilities.len();
        let throughput = utilities.iter().sum::<f64>() / n as f64;
        RunOutcome {
            utilities,
            capacities,
            assignment: vec![0; n],
            throughput,
            group_means: vec![throughput],
        }
    }

    #[test]
    fn utilization_full_and_half() {
        let full = outcome(vec![10.0, 10.0], vec![10.0, 10.0]);
        assert!((utilization(&full) - 1.0).abs() < 1e-12);
        let half = outcome(vec![5.0, 5.0], vec![10.0, 10.0]);
        assert!((utilization(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fast_slow_split_separates_classes() {
        let o = outcome(vec![1.0, 2.0, 8.0, 9.0], vec![1.0, 2.0, 10.0, 12.0]);
        let (fast, slow) = fast_slow_split(&o);
        assert!(fast > slow);
    }

    #[test]
    fn jain_bounds() {
        let equal = outcome(vec![3.0, 3.0, 3.0], vec![3.0; 3]);
        assert!((jain_fairness(&equal) - 1.0).abs() < 1e-12);
        let concentrated = outcome(vec![9.0, 0.0, 0.0], vec![3.0; 3]);
        assert!((jain_fairness(&concentrated) - 1.0 / 3.0).abs() < 1e-12);
        let dead = outcome(vec![0.0, 0.0], vec![3.0; 2]);
        assert_eq!(jain_fairness(&dead), 0.0);
    }
}
