//! Named protocols: the paper's §5 clients and the Table 2 mapping of
//! existing systems onto the generic design space.

use crate::protocol::{Allocation, CandidateList, Ranking, StrangerPolicy, SwarmProtocol};

/// The reference BitTorrent client as a point in the space: TFT candidate
/// list, fastest-first ranking, 4 regular unchoke slots, 1 optimistic
/// unchoke (periodic stranger cooperation), equal split.
#[must_use]
pub fn bittorrent() -> SwarmProtocol {
    SwarmProtocol {
        stranger_policy: StrangerPolicy::Periodic,
        stranger_slots: 1,
        candidates: CandidateList::Tft,
        ranking: Ranking::Fastest,
        partner_slots: 4,
        allocation: Allocation::EqualSplit,
    }
}

/// Birds (§2.3, §5): BitTorrent with the ranking function replaced by
/// proximity to one's own upload rate — "birds of a feather stick
/// together".
#[must_use]
pub fn birds() -> SwarmProtocol {
    SwarmProtocol {
        ranking: Ranking::Proximity,
        ..bittorrent()
    }
}

/// Loyal-When-needed (§5): the DSA-discovered variant combining the Sort
/// Loyal ranking with the When-needed stranger policy — high Performance
/// *and* high Robustness in the sweep.
#[must_use]
pub fn loyal_when_needed() -> SwarmProtocol {
    SwarmProtocol {
        stranger_policy: StrangerPolicy::WhenNeeded,
        stranger_slots: 1,
        candidates: CandidateList::Tft,
        ranking: Ranking::Loyal,
        partner_slots: 4,
        allocation: Allocation::EqualSplit,
    }
}

/// Sort-S (§5): the counter-intuitive top performer — defect on
/// strangers, sort slowest-first, keep a single partner, equal split.
#[must_use]
pub fn sort_s() -> SwarmProtocol {
    SwarmProtocol {
        stranger_policy: StrangerPolicy::Defect,
        stranger_slots: 1,
        candidates: CandidateList::Tft,
        ranking: Ranking::Slowest,
        partner_slots: 1,
        allocation: Allocation::EqualSplit,
    }
}

/// The Sort Random client of Figure 10 (ranking I6), which the paper
/// observes "performs as well as BitTorrent", recalling Leong et al. [15].
#[must_use]
pub fn random_rank() -> SwarmProtocol {
    SwarmProtocol {
        ranking: Ranking::Random,
        ..bittorrent()
    }
}

/// A canonical free-rider: keeps partners and strangers but uploads
/// nothing to partners and defects on strangers.
#[must_use]
pub fn freerider() -> SwarmProtocol {
    SwarmProtocol {
        stranger_policy: StrangerPolicy::Defect,
        stranger_slots: 1,
        candidates: CandidateList::Tft,
        ranking: Ranking::Fastest,
        partner_slots: 4,
        allocation: Allocation::Freeride,
    }
}

/// One row of Table 2: an existing system mapped onto the generic design
/// space, with the paper's wording for each dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// System name as printed in Table 2.
    pub system: &'static str,
    /// "Peer Discovery" column (not actualized in the simulator; §4.2
    /// footnote: "we do not consider Peer Discovery").
    pub peer_discovery: &'static str,
    /// "Stranger Policy" column.
    pub stranger_policy: &'static str,
    /// "Selection Function" column.
    pub selection_function: &'static str,
    /// "Resource Allocation" column.
    pub resource_allocation: &'static str,
    /// The nearest protocol in the actualized space.
    pub nearest: SwarmProtocol,
}

/// Table 2 in full: existing protocols/designs mapped to the generic P2P
/// design space, each with its nearest actualized protocol.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            system: "P2P Replica Storage",
            peer_discovery: "Gossip based",
            stranger_policy: "Defect if set of partners full",
            selection_function: "Closest to own profile",
            resource_allocation: "Equal",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::WhenNeeded,
                stranger_slots: 1,
                candidates: CandidateList::Tft,
                ranking: Ranking::Proximity,
                partner_slots: 4,
                allocation: Allocation::EqualSplit,
            },
        },
        Table2Row {
            system: "GTG",
            peer_discovery: "orthogonal",
            stranger_policy: "Unconditional cooperation",
            selection_function: "Sort on Forwarding Rank",
            resource_allocation: "Equal",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::Periodic,
                stranger_slots: 2,
                candidates: CandidateList::Tft,
                ranking: Ranking::Fastest,
                partner_slots: 4,
                allocation: Allocation::EqualSplit,
            },
        },
        Table2Row {
            system: "Maze",
            peer_discovery: "Central server",
            stranger_policy: "Initialized with points",
            selection_function: "Ranked on points",
            resource_allocation: "Differentiated according to rank",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::Periodic,
                stranger_slots: 1,
                candidates: CandidateList::Tft,
                ranking: Ranking::Fastest,
                partner_slots: 6,
                allocation: Allocation::PropShare,
            },
        },
        Table2Row {
            system: "Pulse",
            peer_discovery: "Gossip based",
            stranger_policy: "Give positive score",
            selection_function: "Missing list, Forwarding list",
            resource_allocation: "Equal",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::Periodic,
                stranger_slots: 2,
                candidates: CandidateList::Tf2t,
                ranking: Ranking::Fastest,
                partner_slots: 4,
                allocation: Allocation::EqualSplit,
            },
        },
        Table2Row {
            system: "BarterCast",
            peer_discovery: "Gossip based",
            stranger_policy: "Unconditional cooperation",
            selection_function: "Rank/Ban according to reputation",
            resource_allocation: "orthogonal",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::Periodic,
                stranger_slots: 2,
                candidates: CandidateList::Tf2t,
                ranking: Ranking::Loyal,
                partner_slots: 4,
                allocation: Allocation::EqualSplit,
            },
        },
        Table2Row {
            system: "Private BT Communities",
            peer_discovery: "Central server",
            stranger_policy: "Initial credit",
            selection_function: "Credits/sharing ratio above level",
            resource_allocation: "Equal / Differentiated",
            nearest: SwarmProtocol {
                stranger_policy: StrangerPolicy::WhenNeeded,
                stranger_slots: 1,
                candidates: CandidateList::Tft,
                ranking: Ranking::Fastest,
                partner_slots: 4,
                allocation: Allocation::PropShare,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SPACE_SIZE;

    #[test]
    fn presets_are_inside_the_space() {
        for p in [
            bittorrent(),
            birds(),
            loyal_when_needed(),
            sort_s(),
            random_rank(),
            freerider(),
        ] {
            assert!(p.index() < SPACE_SIZE);
            // Round-trip through the index must preserve the protocol.
            assert_eq!(
                SwarmProtocol::from_index(p.index()).canonical(),
                p.canonical()
            );
        }
    }

    #[test]
    fn birds_differs_from_bittorrent_only_in_ranking() {
        let bt = bittorrent();
        let b = birds();
        assert_eq!(b.stranger_policy, bt.stranger_policy);
        assert_eq!(b.partner_slots, bt.partner_slots);
        assert_eq!(b.allocation, bt.allocation);
        assert_ne!(b.ranking, bt.ranking);
        assert!(b.is_birds_family());
    }

    #[test]
    fn sort_s_matches_paper_description() {
        let s = sort_s();
        assert_eq!(s.stranger_policy, StrangerPolicy::Defect);
        assert_eq!(s.ranking, Ranking::Slowest);
        assert_eq!(s.partner_slots, 1);
        assert_ne!(s.allocation, Allocation::PropShare);
    }

    #[test]
    fn loyal_when_needed_matches_paper_description() {
        let l = loyal_when_needed();
        assert_eq!(l.stranger_policy, StrangerPolicy::WhenNeeded);
        assert_eq!(l.ranking, Ranking::Loyal);
    }

    #[test]
    fn table2_covers_all_six_systems() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.system).collect();
        assert!(names.contains(&"Maze"));
        assert!(names.contains(&"BarterCast"));
        for r in rows {
            assert!(r.nearest.index() < SPACE_SIZE, "{} out of space", r.system);
        }
    }

    #[test]
    fn all_presets_distinct() {
        let idx: std::collections::HashSet<usize> = [
            bittorrent(),
            birds(),
            loyal_when_needed(),
            sort_s(),
            random_rank(),
            freerider(),
        ]
        .iter()
        .map(SwarmProtocol::index)
        .collect();
        assert_eq!(idx.len(), 6);
    }
}
