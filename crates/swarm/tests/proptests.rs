//! Property-based tests of the cycle simulator's conservation laws and
//! the protocol space encoding.

use dsa_swarm::engine::{run, SimConfig};
use dsa_swarm::protocol::{Allocation, StrangerPolicy, SwarmProtocol, SPACE_SIZE};
use dsa_workloads::bandwidth::BandwidthDist;
use proptest::prelude::*;

fn tiny_config() -> SimConfig {
    SimConfig {
        peers: 10,
        rounds: 20,
        bandwidth: BandwidthDist::Constant(6.0),
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: total downloads never exceed total possible uploads.
    #[test]
    fn no_data_from_nowhere(idx in 0usize..SPACE_SIZE, seed in any::<u64>()) {
        let cfg = tiny_config();
        let p = SwarmProtocol::from_index(idx);
        let out = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        let total: f64 = out.utilities.iter().sum();
        prop_assert!(total <= cfg.peers as f64 * 6.0 + 1e-9);
    }

    /// Freeriders that defect on strangers produce exactly zero flow.
    #[test]
    fn dead_protocols_are_dead(idx in 0usize..SPACE_SIZE, seed in any::<u64>()) {
        let p = SwarmProtocol::from_index(idx);
        prop_assume!(p.allocation == Allocation::Freeride);
        prop_assume!(p.stranger_slots == 0 || p.stranger_policy == StrangerPolicy::Defect);
        let cfg = tiny_config();
        let out = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        prop_assert_eq!(out.throughput, 0.0);
    }

    /// Group means are consistent with per-peer utilities.
    #[test]
    fn group_means_consistent(split in 1usize..9, seed in any::<u64>()) {
        let cfg = tiny_config();
        let protos = [
            dsa_swarm::presets::bittorrent(),
            dsa_swarm::presets::birds(),
        ];
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= split)).collect();
        let out = run(&protos, &assignment, &cfg, seed);
        for g in 0..2 {
            let members: Vec<f64> = out
                .utilities
                .iter()
                .zip(&out.assignment)
                .filter(|(_, a)| **a == g)
                .map(|(u, _)| *u)
                .collect();
            let mean = members.iter().sum::<f64>() / members.len() as f64;
            prop_assert!((out.group_means[g] - mean).abs() < 1e-9);
        }
    }

    /// The flat protocol index is a bijection onto the struct space.
    #[test]
    fn index_bijection(a in 0usize..SPACE_SIZE, b in 0usize..SPACE_SIZE) {
        prop_assume!(a != b);
        prop_assert_ne!(SwarmProtocol::from_index(a), SwarmProtocol::from_index(b));
    }

    /// Churn never breaks conservation or determinism.
    #[test]
    fn churn_safe(rate in 0.0f64..0.3, seed in any::<u64>()) {
        let mut cfg = tiny_config();
        cfg.churn = dsa_workloads::churn::ChurnModel::PerRound { rate };
        let p = dsa_swarm::presets::loyal_when_needed();
        let a = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        let b = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.throughput <= 6.0 + 1e-9);
    }
}
