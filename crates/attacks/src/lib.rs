//! Cross-domain adversary subsystem — re-quantifying the Robustness axis
//! under parameterized attack models.
//!
//! The paper's R axis measures robustness against "cheating and malicious
//! behavior", but fixes the adversary to a single canned deviant inside
//! each domain's design space. This crate models the adversary as a first
//! class, *domain-agnostic* object: an [`model::AttackModel`] transforms a
//! domain's encounter stream (through the [`dsa_core::domain::DynDomain`]
//! hooks — plain, churned, attacker-set) into an adversarial encounter with
//! a tunable population *budget*, so incentive guarantees are measured
//! against an adversary with resources, not a point attacker.
//!
//! Four built-in models ([`models`]) compose with every registered domain
//! for free:
//!
//! * **sybil** — one real adversary multiplexes `k` identities onto one
//!   payoff (Sybil amplification; stresses transitive/indirect mechanisms).
//! * **collusion** — a ring sharing private history coordinates on the
//!   best deviant strategy from the domain's canonical attacker set.
//! * **whitewash** — an identity-shedding schedule: the attacker re-enters
//!   with a fresh identity every `period` rounds (driven through the
//!   domain's churn hook).
//! * **adaptive** — defection that probes the attacker candidates for a
//!   share of the run, then switches to the most profitable mid-run.
//!
//! [`sweep`] measures, for every protocol in a domain's design space and
//! every attack budget in a grid, whether a defending majority beats the
//! adversary's effective per-capita payoff — the *robustness-under-budget*
//! surface — in parallel and cached under the workspace's stamped-CSV
//! scheme (`results/attack-<domain>-<model>-<scale>.csv`).

pub mod model;
pub mod models;
pub mod sweep;

pub use model::{lookup, register_attack, registry, AttackContext, AttackModel};
pub use models::{parameterized, parse_param_spec, register_builtin};
pub use sweep::{AttackConfig, AttackSweep, DEFAULT_BUDGETS};
