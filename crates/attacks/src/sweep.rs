//! The robustness-under-budget sweep and its stamped-CSV cache.
//!
//! For each attack budget β in a grid and each protocol Π in a domain's
//! design space, the sweep measures the share of runs in which a `1 − β`
//! majority running Π strictly beats the adversary's effective per-capita
//! payoff — the Robustness axis re-quantified against an adversary with
//! resources. Each (budget, protocol) cell derives its seeds from its
//! indices, so results are bit-identical across thread counts.
//!
//! Results cache under `results/attack-<domain>-<model>-<scale>.csv` with
//! the workspace's stamp scheme ([`dsa_core::cache::SweepKey`]), extended
//! by the attack fingerprint (model name, parameters *and* the budget
//! grid): changing any of them — or the domain's space, the simulator
//! scale, the seed — mismatches the stamp and recomputes, never trusts.

use crate::model::{AttackContext, AttackModel};
use dsa_core::cache::{read_stamped, write_stamped, SweepKey};
use dsa_core::domain::{fnv1a, DynDomain, Effort};
use dsa_core::parallel::parallel_map_indexed;
use dsa_core::results::{quote_csv, split_csv};
use dsa_workloads::seeds::SeedSeq;
use std::path::{Path, PathBuf};

/// The default attack budget grid: 5% to 50% of the population (50% is
/// the paper's "highest number that an invading protocol can have").
pub const DEFAULT_BUDGETS: [f64; 6] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Configuration of a robustness-under-budget sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Attack budgets (population shares in `(0, 1)`, strictly
    /// increasing), one sweep cross-section per entry.
    pub budgets: Vec<f64>,
    /// Runs per (budget, protocol) cell.
    pub encounter_runs: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Master seed; the sweep is a pure function of it.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            budgets: DEFAULT_BUDGETS.to_vec(),
            encounter_runs: 2,
            threads: 0,
            seed: 0x5EED,
        }
    }
}

impl AttackConfig {
    /// The full cache key of this sweep against a domain and model: the
    /// plain sweep key (domain, space hash, scale, simulator + run
    /// fingerprint, seed, n) re-stamped with the attack fingerprint.
    #[must_use]
    pub fn key(
        &self,
        domain: &dyn DynDomain,
        model: &dyn AttackModel,
        scale: &str,
        effort: Effort,
    ) -> SweepKey {
        let canon = format!(
            "{}|enc_runs={}",
            domain.sim_signature(effort),
            self.encounter_runs
        );
        SweepKey {
            domain: domain.name().to_string(),
            space_hash: domain.space_hash(),
            scale: scale.to_string(),
            params: fnv1a(canon.as_bytes()),
            seed: self.seed,
            len: domain.size(),
            attack: 0,
            evo: 0,
            attrib: 0,
        }
        .with_attack(model.key(&self.budgets))
    }
}

/// A finished robustness-under-budget sweep with its key and provenance.
#[derive(Debug, Clone)]
pub struct AttackSweep {
    /// The key the sweep was computed (or validated) under.
    pub key: SweepKey,
    /// Attack model name (part of the cache file name).
    pub model: String,
    /// The budget grid, in sweep order.
    pub budgets: Vec<f64>,
    /// Protocol display codes, in index order.
    pub names: Vec<String>,
    /// `robustness[b][i]`: protocol `i`'s survival rate at budget
    /// `budgets[b]`.
    pub robustness: Vec<Vec<f64>>,
    /// Whether this sweep was served from the cache.
    pub from_cache: bool,
}

impl AttackSweep {
    /// The cache file path for a (domain, model, scale) triple.
    #[must_use]
    pub fn cache_path(out_dir: &Path, domain: &str, model: &str, scale: &str) -> PathBuf {
        out_dir.join(format!("attack-{domain}-{model}-{scale}.csv"))
    }

    /// This sweep's own cache file path.
    #[must_use]
    pub fn path(&self, out_dir: &Path) -> PathBuf {
        Self::cache_path(out_dir, &self.key.domain, &self.model, &self.key.scale)
    }

    /// Runs the sweep (no caching): the attack-side analogue of the PRA
    /// tournament phase, parallel over protocols within each budget.
    ///
    /// Traced as an `attacks.sweep` span; with metrics enabled, each
    /// (budget, protocol) cell's latency lands in the `attacks.cell_ns`
    /// histogram and the sweep's throughput in the `attacks.rows_per_sec`
    /// gauge.
    ///
    /// # Panics
    ///
    /// Panics when a budget lies outside `(0, 1)` or the grid is not
    /// strictly increasing (a grid with duplicates would write a cache
    /// body its own loader groups wrongly).
    #[must_use]
    pub fn compute(
        domain: &dyn DynDomain,
        model: &dyn AttackModel,
        effort: Effort,
        config: &AttackConfig,
        scale: &str,
    ) -> Self {
        for &b in &config.budgets {
            assert!(
                b > 0.0 && b < 1.0,
                "attack budget must be in (0,1), got {b}"
            );
        }
        assert!(
            config.budgets.windows(2).all(|w| w[1] > w[0]),
            "attack budgets must be strictly increasing, got {:?}",
            config.budgets
        );
        let _sweep_span = dsa_obs::span("attacks.sweep");
        let started = dsa_obs::metrics_enabled().then(std::time::Instant::now);
        let n = domain.size();
        let runs = config.encounter_runs.max(1);
        // Phase tag 0xA77A separates the attack seed stream from the PRA
        // phases run under the same master seed.
        let root = SeedSeq::new(config.seed).child(0xA77A);
        let robustness: Vec<Vec<f64>> = config
            .budgets
            .iter()
            .enumerate()
            .map(|(bi, &budget)| {
                let ctx = AttackContext {
                    domain,
                    effort,
                    budget,
                };
                let node = root.child(bi as u64);
                parallel_map_indexed(n, config.threads, |i| {
                    let t0 = dsa_obs::metrics_enabled().then(std::time::Instant::now);
                    let cell = node.child(i as u64);
                    let mut wins = 0usize;
                    for r in 0..runs {
                        let (def, adv) = model.encounter(&ctx, i, cell.child(r as u64).seed());
                        if def > adv {
                            wins += 1;
                        }
                    }
                    if let Some(t0) = t0 {
                        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        dsa_obs::observe("attacks.cell_ns", ns);
                    }
                    wins as f64 / runs as f64
                })
            })
            .collect();
        if let Some(started) = started {
            let secs = started.elapsed().as_secs_f64();
            let cells = (config.budgets.len() * n) as f64;
            if secs > 0.0 {
                dsa_obs::gauge_set("attacks.rows_per_sec", cells / secs);
            }
        }
        Self {
            key: config.key(domain, model, scale, effort),
            model: model.name().to_string(),
            budgets: config.budgets.clone(),
            names: domain.codes(),
            robustness,
            from_cache: false,
        }
    }

    /// Attempts to load a cached sweep matching `key`. Returns `Ok(None)`
    /// for every "recompute, don't trust" case: missing file, missing or
    /// mismatched stamp (including a different attack fingerprint or
    /// budget grid), or the wrong number of rows.
    ///
    /// # Errors
    ///
    /// Returns an error when the stamp matches but the body cannot be
    /// parsed (corruption must surface, not be silently recomputed over).
    pub fn load(
        key: &SweepKey,
        model: &str,
        budgets: &[f64],
        out_dir: &Path,
    ) -> Result<Option<Self>, String> {
        let path = Self::cache_path(out_dir, &key.domain, model, &key.scale);
        let Some(body) = read_stamped(&path, key)? else {
            return Ok(None);
        };
        let (file_budgets, names, robustness) = parse_body(&body, key.len)
            .map_err(|e| format!("corrupt attack cache {}: {e}", path.display()))?;
        // The attack fingerprint already covers the grid; a body that
        // disagrees with its own stamp is stale, not trusted.
        if file_budgets != budgets {
            return Ok(None);
        }
        Ok(Some(Self {
            key: key.clone(),
            model: model.to_string(),
            budgets: file_budgets,
            names,
            robustness,
            from_cache: true,
        }))
    }

    /// Loads the cached sweep for (domain, model, scale), or computes and
    /// caches it.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache cannot be written.
    pub fn load_or_compute(
        domain: &dyn DynDomain,
        model: &dyn AttackModel,
        effort: Effort,
        config: &AttackConfig,
        scale: &str,
        out_dir: &Path,
    ) -> Result<Self, String> {
        let key = config.key(domain, model, scale, effort);
        if let Some(cached) = Self::load(&key, model.name(), &config.budgets, out_dir)? {
            return Ok(cached);
        }
        let sweep = Self::compute(domain, model, effort, config, scale);
        sweep.store(out_dir)?;
        Ok(sweep)
    }

    /// Writes the sweep to its cache path via
    /// [`dsa_core::cache::write_stamped`] (atomic temp sibling + rename).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be written.
    pub fn store(&self, out_dir: &Path) -> Result<PathBuf, String> {
        let path = self.path(out_dir);
        write_stamped(&path, &self.key, &self.to_csv())?;
        Ok(path)
    }

    /// The body CSV (no stamp line): one row per (budget, protocol), in
    /// budget-major order. `{}` on f64 prints the shortest representation
    /// that parses back bit-identically, so cached and fresh sweeps never
    /// diverge.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("budget,index,name,robustness\n");
        for (b, row) in self.budgets.iter().zip(&self.robustness) {
            for (i, r) in row.iter().enumerate() {
                out.push_str(&format!("{b},{i},{},{r}\n", quote_csv(&self.names[i])));
            }
        }
        out
    }

    /// Mean robustness over the space, per budget — the y values of the
    /// budget-vs-robustness figure.
    #[must_use]
    pub fn mean_robustness(&self) -> Vec<f64> {
        self.robustness
            .iter()
            .map(|row| row.iter().sum::<f64>() / row.len().max(1) as f64)
            .collect()
    }

    /// Share of protocols whose survival rate is at least `threshold`,
    /// per budget.
    #[must_use]
    pub fn surviving_share(&self, threshold: f64) -> Vec<f64> {
        self.robustness
            .iter()
            .map(|row| {
                row.iter().filter(|&&r| r >= threshold).count() as f64 / row.len().max(1) as f64
            })
            .collect()
    }
}

/// A parsed body: `(budgets, names, robustness[budget][protocol])`.
type ParsedBody = (Vec<f64>, Vec<String>, Vec<Vec<f64>>);

/// Parses the body CSV back into `(budgets, names, robustness)`.
fn parse_body(body: &str, n: usize) -> Result<ParsedBody, String> {
    let mut lines = body.lines();
    let header = lines.next().ok_or("empty body")?;
    if header != "budget,index,name,robustness" {
        return Err(format!("unexpected header: {header}"));
    }
    let mut budgets: Vec<f64> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut robustness: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", lineno + 2));
        }
        let parse = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 2))
        };
        let budget = parse(&fields[0], "budget")?;
        let index: usize = fields[1]
            .parse()
            .map_err(|e| format!("line {}: bad index: {e}", lineno + 2))?;
        if budgets.last() != Some(&budget) {
            budgets.push(budget);
            robustness.push(Vec::with_capacity(n));
        }
        let row = robustness.last_mut().expect("pushed above");
        if index != row.len() {
            return Err(format!("line {}: indices out of order", lineno + 2));
        }
        if budgets.len() == 1 {
            names.push(fields[2].clone());
        }
        row.push(parse(&fields[3], "robustness")?);
    }
    if robustness.iter().any(|row| row.len() != n) || robustness.is_empty() {
        return Err(format!("expected {n} rows per budget"));
    }
    Ok((budgets, names, robustness))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> AttackSweep {
        AttackSweep {
            key: SweepKey {
                domain: "toy".into(),
                space_hash: 0xABC,
                scale: "smoke".into(),
                params: 0x123,
                seed: 7,
                len: 3,
                attack: 0x456,
                evo: 0,
                attrib: 0,
            },
            model: "sybil".into(),
            budgets: vec![0.1, 0.5],
            names: vec!["a".into(), "b, with comma".into(), "c".into()],
            robustness: vec![vec![1.0, 0.5, 0.0], vec![0.5, 0.25, 0.0]],
            from_cache: false,
        }
    }

    #[test]
    fn csv_body_roundtrips() {
        let s = fake();
        let (budgets, names, rob) = parse_body(&s.to_csv(), 3).unwrap();
        assert_eq!(budgets, s.budgets);
        assert_eq!(names, s.names);
        assert_eq!(rob, s.robustness);
    }

    #[test]
    fn parse_body_rejects_garbage() {
        assert!(parse_body("", 3).is_err());
        assert!(parse_body("wrong,header\n", 3).is_err());
        assert!(parse_body("budget,index,name,robustness\n", 3).is_err());
        assert!(parse_body("budget,index,name,robustness\n0.1,0,a,1\n", 3).is_err());
        assert!(parse_body("budget,index,name,robustness\n0.1,1,a,1\n", 1).is_err());
        assert!(parse_body("budget,index,name,robustness\n0.1,0,a,x\n", 1).is_err());
    }

    #[test]
    fn summaries_average_per_budget() {
        let s = fake();
        assert_eq!(s.mean_robustness(), vec![0.5, 0.25]);
        assert_eq!(s.surviving_share(0.5), vec![2.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    fn cache_file_name_embeds_domain_model_scale() {
        let s = fake();
        assert_eq!(
            s.path(Path::new("results")),
            PathBuf::from("results/attack-toy-sybil-smoke.csv")
        );
    }
}
