//! The [`AttackModel`] trait and the global attack registry.
//!
//! Mirrors [`dsa_core::domain`]: models are registered once (idempotently,
//! replace-by-name) and every consumer — the `dsa <domain> attack` CLI
//! family, the robustness-under-budget sweep and the `experiments attacks`
//! figure — enumerates [`registry`] or [`lookup`]s a model by name, so a
//! new attack composes with all registered domains without new plumbing.

use dsa_core::domain::{fnv1a, DynDomain, Effort};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything an attack model may consult about the world it attacks:
/// the (type-erased) domain, the simulator fidelity, and the adversary's
/// population budget.
pub struct AttackContext<'a> {
    /// The domain under attack.
    pub domain: &'a dyn DynDomain,
    /// Simulator fidelity level.
    pub effort: Effort,
    /// Share of the population the adversary controls (as identities),
    /// in `(0, 1)`.
    pub budget: f64,
}

impl AttackContext<'_> {
    /// The deviant protocols an adversary may adopt: the domain's
    /// canonical attackers, falling back to protocol 0 for a domain that
    /// names none (every space enumerates *some* protocol there).
    #[must_use]
    pub fn candidates(&self) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for (_, i) in self.domain.attackers() {
            if !out.contains(&i) {
                out.push(i);
            }
        }
        if out.is_empty() {
            out.push(0);
        }
        out
    }

    /// The adversary's default strategy: the first candidate.
    #[must_use]
    pub fn primary_attacker(&self) -> usize {
        self.candidates()[0]
    }

    /// The identity-shedding strategy: the domain's whitewasher design
    /// point when actualized, else the primary attacker.
    #[must_use]
    pub fn whitewash_attacker(&self) -> usize {
        self.domain
            .whitewasher()
            .unwrap_or_else(|| self.primary_attacker())
    }
}

/// A parameterized adversary that transforms a domain's encounter stream.
///
/// Implementations must be deterministic in `seed` and thread-safe: the
/// robustness-under-budget sweep calls [`Self::encounter`] from many
/// worker threads with index-derived seeds.
pub trait AttackModel: Send + Sync + 'static {
    /// Short, CLI- and filename-safe model name (e.g. `"sybil"`).
    fn name(&self) -> &'static str;

    /// One-line human description, including the parameter values.
    fn describe(&self) -> String;

    /// Stable textual fingerprint of the model parameters. It feeds the
    /// sweep-cache attack key: changing a parameter invalidates cached
    /// sweeps computed under the old value.
    fn signature(&self) -> String;

    /// Runs one adversarial encounter: a `1 − budget` defender majority
    /// running protocol `defender` against this adversary spending
    /// `budget`. Returns `(defender mean utility, adversary's effective
    /// per-capita payoff)`; the defender survives iff the former strictly
    /// exceeds the latter (ties are losses, as in the paper's
    /// tournaments).
    fn encounter(&self, ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64);

    /// The cache fingerprint of this model under a budget grid
    /// ([`dsa_core::cache::SweepKey::with_attack`] consumes it). Never 0,
    /// so an attack stamp can never validate a plain PRA sweep.
    fn key(&self, budgets: &[f64]) -> u64 {
        let canon = format!("{}|{}|budgets={budgets:?}", self.name(), self.signature());
        fnv1a(canon.as_bytes()).max(1)
    }
}

fn global() -> &'static Mutex<Vec<Arc<dyn AttackModel>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<dyn AttackModel>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers an attack model in the global registry. Re-registering a
/// name replaces the previous entry (idempotent), preserving its
/// position.
pub fn register_attack(model: Arc<dyn AttackModel>) {
    let mut reg = global().lock().expect("attack registry poisoned");
    if let Some(slot) = reg.iter_mut().find(|m| m.name() == model.name()) {
        *slot = model;
    } else {
        reg.push(model);
    }
}

/// A snapshot of the registry, in registration order.
#[must_use]
pub fn registry() -> Vec<Arc<dyn AttackModel>> {
    global().lock().expect("attack registry poisoned").clone()
}

/// Looks a registered attack model up by name.
#[must_use]
pub fn lookup(name: &str) -> Option<Arc<dyn AttackModel>> {
    global()
        .lock()
        .expect("attack registry poisoned")
        .iter()
        .find(|m| m.name() == name)
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(&'static str);

    impl AttackModel for Nop {
        fn name(&self) -> &'static str {
            self.0
        }

        fn describe(&self) -> String {
            "does nothing".into()
        }

        fn signature(&self) -> String {
            "nop".into()
        }

        fn encounter(&self, _ctx: &AttackContext<'_>, _defender: usize, _seed: u64) -> (f64, f64) {
            (1.0, 0.0)
        }
    }

    #[test]
    fn registry_registers_replaces_and_looks_up() {
        register_attack(Arc::new(Nop("nop-a")));
        register_attack(Arc::new(Nop("nop-a")));
        let hits = registry().iter().filter(|m| m.name() == "nop-a").count();
        assert_eq!(hits, 1, "re-registration must replace, not duplicate");
        assert!(lookup("nop-a").is_some());
        assert!(lookup("no-such-attack").is_none());
    }

    #[test]
    fn cache_key_depends_on_parameters_and_grid() {
        let m = Nop("nop-b");
        let grid = [0.1, 0.5];
        assert_ne!(m.key(&grid), 0);
        assert_eq!(m.key(&grid), m.key(&[0.1, 0.5]));
        assert_ne!(m.key(&grid), m.key(&[0.1, 0.4]));
        assert_ne!(m.key(&grid), Nop("nop-c").key(&grid));
    }
}
