//! The built-in attack models.
//!
//! Each model is a different transformation of the same primitive — a
//! mixed-population encounter between a defending majority and an
//! adversarial minority — so every model works on every registered domain
//! (the encounter hooks are part of [`DynDomain`]). Payoffs are compared
//! *per capita*: the defender survives an attack only when an honest
//! peer's utility strictly exceeds what one real adversary takes home.

use crate::model::{register_attack, AttackContext, AttackModel};
use dsa_workloads::seeds::SeedSeq;
use std::sync::Arc;

// Re-exported for doc links.
#[allow(unused_imports)]
use dsa_core::domain::DynDomain;

/// Sybil amplification: one real adversary operates `identities`
/// concurrent identities, multiplexing their takes onto one payoff.
///
/// The budget counts *identities*, so the defender faces the same
/// population mix as a plain invasion — but the adversary's per-capita
/// payoff is `k` per-identity takes minus an upkeep cost of
/// `upkeep` × one take per extra identity. With cheap identities
/// (`upkeep` → 0) the amplification is linear in `k`, which is exactly
/// why mechanisms without an identity cost collapse under Sybil attacks.
#[derive(Debug, Clone)]
pub struct Sybil {
    /// Identities per real adversary (`k ≥ 1`; 1 = plain invasion).
    pub identities: u32,
    /// Maintenance cost per extra identity, as a fraction of one
    /// identity's take.
    pub upkeep: f64,
}

impl Default for Sybil {
    fn default() -> Self {
        Self {
            identities: 3,
            upkeep: 0.2,
        }
    }
}

impl AttackModel for Sybil {
    fn name(&self) -> &'static str {
        "sybil"
    }

    fn describe(&self) -> String {
        format!(
            "one adversary multiplexes k={} identities (upkeep {:.0}% per extra)",
            self.identities,
            self.upkeep * 100.0
        )
    }

    fn signature(&self) -> String {
        format!("sybil k={} upkeep={}", self.identities, self.upkeep)
    }

    fn encounter(&self, ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        let attacker = ctx.primary_attacker();
        let (def, per_identity) =
            ctx.domain
                .run_encounter(defender, attacker, 1.0 - ctx.budget, ctx.effort, seed);
        let k = f64::from(self.identities.max(1));
        let amplification = k - self.upkeep * (k - 1.0);
        (def, per_identity * amplification)
    }
}

/// A collusion ring sharing private history. Where the domain's engine
/// hosts mixed populations ([`DynDomain::supports_mixed`]), the ring
/// fields its whole deviant portfolio in *one* run: the budget is split
/// evenly across every strategy in the domain's canonical attacker set
/// and the proceeds are pooled, so the defender faces all deviants at
/// once and the ring's per-capita payoff is the member-weighted mean —
/// the population-level hook's mixed-strategy adversary. Domains without
/// a native multi-protocol engine (gossip) keep the PR 3 pairwise path:
/// the ring observes the same environment under every deviant strategy
/// (same seed) and coordinates on the most profitable one.
#[derive(Debug, Clone, Default)]
pub struct Collusion;

impl Collusion {
    /// The pairwise best-response path: compare every candidate in the
    /// same world (same seed), then everyone plays the winner. This is
    /// the PR 3 behaviour, kept bit-identical as the fallback for
    /// domains that cannot host mixed populations.
    fn pairwise_best_response(ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        ctx.candidates()
            .into_iter()
            .map(|c| {
                ctx.domain
                    .run_encounter(defender, c, 1.0 - ctx.budget, ctx.effort, seed)
            })
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("candidates() is never empty")
    }

    /// The mixed-ring path: one population hosting the defender majority
    /// plus the ring's budget split evenly over the candidate strategies.
    fn mixed_ring(ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        let n = ctx.domain.population(ctx.effort).max(2);
        // `split_population` is the engines' own split, so a
        // single-candidate ring reproduces the plain invasion (and the
        // pairwise path) bit for bit.
        let def_count = dsa_core::sim::split_population(n, 1.0 - ctx.budget).0;
        let ring_total = n - def_count;
        let candidates = ctx.candidates();
        // With fewer ring members than strategies, the ring fields its
        // portfolio head first (candidates() orders the canonical set).
        let k = candidates.len().min(ring_total);
        let base = ring_total / k;
        let extra = ring_total % k;
        let mut groups = Vec::with_capacity(k + 1);
        groups.push((defender, def_count));
        for (idx, &c) in candidates.iter().take(k).enumerate() {
            groups.push((c, base + usize::from(idx < extra)));
        }
        let utilities = ctx.domain.run_mixed(&groups, ctx.effort, seed);
        let ring_take: f64 = utilities[1..]
            .iter()
            .zip(&groups[1..])
            .map(|(&u, &(_, count))| u * count as f64)
            .sum();
        (utilities[0], ring_take / ring_total as f64)
    }
}

impl AttackModel for Collusion {
    fn name(&self) -> &'static str {
        "collusion"
    }

    fn describe(&self) -> String {
        "ring pools a mixed deviant portfolio in one run (best-response pairwise fallback)".into()
    }

    fn signature(&self) -> String {
        // v2: the mixed-ring path landed; bumping the signature
        // invalidates caches computed under the pairwise-only model.
        "collusion v2 mixed-ring|pairwise".into()
    }

    fn encounter(&self, ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        if ctx.domain.supports_mixed() {
            Self::mixed_ring(ctx, defender, seed)
        } else {
            Self::pairwise_best_response(ctx, defender, seed)
        }
    }
}

/// A whitewashing churn schedule: the adversary sheds its identity and
/// re-enters every `period` rounds, which the domain experiences as
/// identity churn at rate `1 / period` (through the
/// [`DynDomain::run_encounter_churn`] hook). The adversary plays the
/// domain's whitewasher design point when one is actualized, else its
/// primary attacker.
///
/// Domains without a churn model see the plain encounter — whitewashing
/// is free where identity is not tracked, which is itself the measured
/// result.
#[derive(Debug, Clone)]
pub struct Whitewash {
    /// Rounds between identity resets.
    pub period: u32,
}

impl Default for Whitewash {
    fn default() -> Self {
        Self { period: 10 }
    }
}

impl AttackModel for Whitewash {
    fn name(&self) -> &'static str {
        "whitewash"
    }

    fn describe(&self) -> String {
        format!(
            "attacker re-enters with a fresh identity every {} rounds",
            self.period
        )
    }

    fn signature(&self) -> String {
        format!("whitewash period={}", self.period)
    }

    fn encounter(&self, ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        let attacker = ctx.whitewash_attacker();
        let churn = 1.0 / f64::from(self.period.max(1));
        ctx.domain.run_encounter_churn(
            defender,
            attacker,
            1.0 - ctx.budget,
            ctx.effort,
            churn,
            seed,
        )
    }
}

/// Adaptive defection: the adversary spends a `probe_share` fraction of
/// the run probing every candidate strategy, then switches to the most
/// profitable for the remainder. Both sides' payoffs blend the probe and
/// exploit phases, so a large probe share models a cautious adversary
/// that pays for its exploration.
#[derive(Debug, Clone)]
pub struct Adaptive {
    /// Fraction of the run spent probing, in `[0, 1)`.
    pub probe_share: f64,
}

impl Default for Adaptive {
    fn default() -> Self {
        Self { probe_share: 0.25 }
    }
}

impl AttackModel for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn describe(&self) -> String {
        format!(
            "probes every deviant strategy for {:.0}% of the run, then switches to the best",
            self.probe_share * 100.0
        )
    }

    fn signature(&self) -> String {
        format!("adaptive probe_share={}", self.probe_share)
    }

    fn encounter(&self, ctx: &AttackContext<'_>, defender: usize, seed: u64) -> (f64, f64) {
        let root = SeedSeq::new(seed);
        let candidates = ctx.candidates();
        let probes: Vec<(f64, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                ctx.domain.run_encounter(
                    defender,
                    c,
                    1.0 - ctx.budget,
                    ctx.effort,
                    root.child(i as u64).seed(),
                )
            })
            .collect();
        let best = probes
            .iter()
            .enumerate()
            .max_by(|x, y| x.1 .1.total_cmp(&y.1 .1))
            .map_or(0, |(i, _)| i);
        // The exploit phase is a fresh run (disjoint seed subtree): the
        // adversary commits to the chosen strategy in an unseen world.
        let exploit = ctx.domain.run_encounter(
            defender,
            candidates[best],
            1.0 - ctx.budget,
            ctx.effort,
            root.child(0x1000 + best as u64).seed(),
        );
        let n = probes.len() as f64;
        let probe_def = probes.iter().map(|p| p.0).sum::<f64>() / n;
        let probe_att = probes.iter().map(|p| p.1).sum::<f64>() / n;
        let t = self.probe_share.clamp(0.0, 1.0);
        (
            t * probe_def + (1.0 - t) * exploit.0,
            t * probe_att + (1.0 - t) * exploit.1,
        )
    }
}

/// Builds a variant of a built-in model with one parameter overridden —
/// the attacker-parameter sweep axis (`dsa <domain> attack run --param
/// k=2,4,8`). Every variant carries the parameter in its
/// [`AttackModel::signature`], so its cache fingerprint
/// ([`AttackModel::key`]) differs per value and parameter grids
/// self-invalidate like budget grids do.
///
/// Supported parameters: `k` / `upkeep` (sybil), `period` (whitewash),
/// `probe` (adaptive). Collusion has no tunable parameter.
///
/// # Errors
///
/// Returns a message when the model is unknown, the parameter does not
/// belong to the model, or the value is out of the parameter's range.
pub fn parameterized(name: &str, param: &str, value: f64) -> Result<Arc<dyn AttackModel>, String> {
    match (name, param) {
        ("sybil", "k") => {
            if !(value >= 1.0 && value <= f64::from(u32::MAX) && value.fract() == 0.0) {
                return Err(format!("sybil k must be a positive integer, got {value}"));
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(Arc::new(Sybil {
                identities: value as u32,
                ..Sybil::default()
            }))
        }
        ("sybil", "upkeep") => {
            if !(0.0..=1.0).contains(&value) {
                return Err(format!("sybil upkeep must be in [0,1], got {value}"));
            }
            Ok(Arc::new(Sybil {
                upkeep: value,
                ..Sybil::default()
            }))
        }
        ("whitewash", "period") => {
            if !(value >= 1.0 && value <= f64::from(u32::MAX) && value.fract() == 0.0) {
                return Err(format!(
                    "whitewash period must be a positive integer, got {value}"
                ));
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(Arc::new(Whitewash {
                period: value as u32,
            }))
        }
        ("adaptive", "probe") => {
            if !(0.0..1.0).contains(&value) {
                return Err(format!("adaptive probe must be in [0,1), got {value}"));
            }
            Ok(Arc::new(Adaptive { probe_share: value }))
        }
        ("sybil" | "whitewash" | "adaptive" | "collusion", _) => Err(format!(
            "model '{name}' has no parameter '{param}' (supported: sybil k|upkeep, \
             whitewash period, adaptive probe)"
        )),
        _ => Err(format!("unknown attack model '{name}'")),
    }
}

/// Parses an attacker-parameter grid specification `name=v1,v2,...`
/// (e.g. `k=2,4,8`) into the parameter name and its value list. Range
/// validation happens in [`parameterized`], which knows each parameter's
/// domain.
///
/// # Errors
///
/// Returns a message when the specification is malformed (no `=`, no
/// name, or a non-numeric value — an empty value list is impossible,
/// since an empty token already fails the numeric parse).
pub fn parse_param_spec(spec: &str) -> Result<(String, Vec<f64>), String> {
    let (param, values) = spec
        .split_once('=')
        .ok_or_else(|| format!("--param expects name=v1,v2,..., got '{spec}'"))?;
    if param.is_empty() {
        return Err("--param expects a parameter name before '='".into());
    }
    let grid: Vec<f64> = values
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|e| format!("bad {param} value '{t}': {e}"))
        })
        .collect::<Result<_, String>>()?;
    Ok((param.to_string(), grid))
}

/// Registers the four built-in models (idempotently) and returns them in
/// registration order — the attack-side analogue of the domain crates'
/// `adapter::register()`.
pub fn register_builtin() -> Vec<Arc<dyn AttackModel>> {
    let models: Vec<Arc<dyn AttackModel>> = vec![
        Arc::new(Sybil::default()),
        Arc::new(Collusion),
        Arc::new(Whitewash::default()),
        Arc::new(Adaptive::default()),
    ];
    for m in &models {
        register_attack(Arc::clone(m));
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registration_is_idempotent() {
        let first = register_builtin();
        let names: Vec<&str> = first.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["sybil", "collusion", "whitewash", "adaptive"]);
        register_builtin();
        let registered = crate::model::registry();
        for name in names {
            assert_eq!(
                registered.iter().filter(|m| m.name() == name).count(),
                1,
                "{name} registered exactly once"
            );
        }
    }

    #[test]
    fn signatures_fingerprint_parameters() {
        let a = Sybil {
            identities: 3,
            upkeep: 0.2,
        };
        let b = Sybil {
            identities: 4,
            upkeep: 0.2,
        };
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.key(&[0.1]), b.key(&[0.1]));
        assert_ne!(
            Whitewash { period: 10 }.signature(),
            Whitewash { period: 20 }.signature()
        );
        assert_ne!(
            Adaptive { probe_share: 0.25 }.signature(),
            Adaptive { probe_share: 0.5 }.signature()
        );
    }
}
