//! Integration tests of the adversary subsystem against an analytic toy
//! domain whose encounter outcomes can be computed by hand.

use dsa_attacks::model::{AttackContext, AttackModel};
use dsa_attacks::models::{Adaptive, Collusion, Sybil, Whitewash};
use dsa_attacks::sweep::{AttackConfig, AttackSweep};
use dsa_core::domain::{erase, Domain, DynDomain, Effort};
use dsa_core::sim::EncounterSim;
use dsa_core::space::{DesignSpace, Dimension};
use std::path::PathBuf;
use std::sync::Arc;

/// Analytic simulator: protocol `x`'s group utility is `10x` plus its
/// population share; churn adds `100 × rate` to the minority side (the
/// toy's stand-in for "identity churn favors the identity shedder").
/// A sub-microscopic seed jitter hits both sides equally, so seeds
/// matter to the bits but never to a comparison.
#[derive(Debug)]
struct GridSim {
    churn: f64,
}

impl EncounterSim for GridSim {
    type Protocol = usize;

    fn run_homogeneous(&self, protocol: &usize, seed: u64) -> f64 {
        *protocol as f64 + (seed % 997) as f64 * 1e-9
    }

    fn run_encounter(&self, a: &usize, b: &usize, fraction_a: f64, seed: u64) -> (f64, f64) {
        let jitter = (seed % 997) as f64 * 1e-9;
        let d = 10.0 * *a as f64 + fraction_a + jitter;
        let m = 10.0 * *b as f64 + (1.0 - fraction_a) + 100.0 * self.churn + jitter;
        (d, m)
    }
}

/// Four-protocol toy domain; protocol 0 is the canonical deviant.
struct GridDomain;

impl Domain for GridDomain {
    type Sim = GridSim;

    fn name(&self) -> &'static str {
        "grid"
    }

    fn space(&self) -> DesignSpace {
        DesignSpace::new(
            "grid-space",
            vec![Dimension::new(
                "Level",
                (0..4).map(|i| format!("L{i}")).collect(),
            )],
        )
    }

    fn protocol(&self, index: usize) -> usize {
        index
    }

    fn code(&self, index: usize) -> String {
        format!("L{index}")
    }

    fn presets(&self) -> Vec<(&'static str, usize)> {
        vec![("deviant", 0)]
    }

    fn attackers(&self) -> Vec<(&'static str, usize)> {
        vec![("deviant", 0)]
    }

    fn supports_churn(&self) -> bool {
        true
    }

    fn sim(&self, _effort: Effort, churn: f64) -> GridSim {
        GridSim { churn }
    }
}

fn grid() -> Arc<dyn DynDomain> {
    erase(GridDomain)
}

fn ctx(domain: &dyn DynDomain, budget: f64) -> AttackContext<'_> {
    AttackContext {
        domain,
        effort: Effort::Smoke,
        budget,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-attacks-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sybil_amplifies_per_capita_payoff_linearly_in_k() {
    let d = grid();
    let plain = Sybil {
        identities: 1,
        upkeep: 0.0,
    };
    let tripled = Sybil {
        identities: 3,
        upkeep: 0.0,
    };
    // Defender L2 at budget 0.2: d = 20.8, one identity takes 0.2.
    let (def1, adv1) = plain.encounter(&ctx(&*d, 0.2), 2, 5);
    let (def3, adv3) = tripled.encounter(&ctx(&*d, 0.2), 2, 5);
    assert_eq!(def1, def3, "the defender sees the same population mix");
    assert!((adv3 - 3.0 * adv1).abs() < 1e-12, "k multiplexes the take");
    // Upkeep taxes the extra identities only.
    let taxed = Sybil {
        identities: 3,
        upkeep: 0.5,
    };
    let (_, adv_taxed) = taxed.encounter(&ctx(&*d, 0.2), 2, 5);
    assert!((adv_taxed - 2.0 * adv1).abs() < 1e-12, "k − 0.5(k−1) = 2");
}

#[test]
fn collusion_with_one_candidate_matches_plain_invasion() {
    let d = grid();
    let plain = Sybil {
        identities: 1,
        upkeep: 0.0,
    };
    for defender in 0..4 {
        assert_eq!(
            Collusion.encounter(&ctx(&*d, 0.3), defender, 9),
            plain.encounter(&ctx(&*d, 0.3), defender, 9),
        );
    }
}

#[test]
fn collusion_falls_back_to_pr3_pairwise_best_response_without_mixed_support() {
    // The gossip domain has no native multi-protocol engine
    // (supports_mixed is false), so the upgraded collusion model must
    // keep the original pairwise path bit for bit: every candidate
    // compared in the same world (same seed), ring plays the winner.
    let d = dsa_gossip::adapter::register();
    assert!(!d.supports_mixed());
    let budget = 0.3;
    let c = ctx(&*d, budget);
    for defender in [0, 17, 55] {
        for seed in [1, 9, 1234] {
            let expected = c
                .candidates()
                .into_iter()
                .map(|cand| d.run_encounter(defender, cand, 1.0 - budget, Effort::Smoke, seed))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .unwrap();
            assert_eq!(Collusion.encounter(&c, defender, seed), expected);
        }
    }
}

#[test]
fn collusion_fields_a_mixed_ring_on_mixed_capable_domains() {
    // The reputation domain hosts mixed populations natively and names
    // two canonical attackers (freerider, whitewasher): the ring fields
    // both in ONE run and pools the take.
    let d = dsa_reputation::adapter::register();
    assert!(d.supports_mixed());
    let budget = 0.25;
    let c = ctx(&*d, budget);
    let defender = d.parse("tft").unwrap();
    let (def, ring) = Collusion.encounter(&c, defender, 11);
    assert!(def.is_finite() && ring.is_finite());
    // Deterministic in the seed.
    assert_eq!(Collusion.encounter(&c, defender, 11), (def, ring));
    // The pooled payoff is reproduced by the explicit run_mixed call:
    // defender majority + the budget split evenly over both deviants.
    let n = d.population(Effort::Smoke);
    let def_count = dsa_core::sim::split_population(n, 1.0 - budget).0;
    let ring_total = n - def_count;
    let candidates = c.candidates();
    let base = ring_total / candidates.len();
    let extra = ring_total % candidates.len();
    let mut groups = vec![(defender, def_count)];
    for (idx, &cand) in candidates.iter().enumerate() {
        groups.push((cand, base + usize::from(idx < extra)));
    }
    let us = d.run_mixed(&groups, Effort::Smoke, 11);
    let pooled: f64 = us[1..]
        .iter()
        .zip(&groups[1..])
        .map(|(&u, &(_, count))| u * count as f64)
        .sum::<f64>()
        / ring_total as f64;
    assert_eq!((def, ring), (us[0], pooled));
}

#[test]
fn whitewash_reaps_the_churn_bonus() {
    let d = grid();
    let ww = Whitewash { period: 10 };
    let plain = Sybil {
        identities: 1,
        upkeep: 0.0,
    };
    let (_, adv_plain) = plain.encounter(&ctx(&*d, 0.2), 2, 5);
    let (_, adv_ww) = ww.encounter(&ctx(&*d, 0.2), 2, 5);
    // churn = 1/period = 0.1 → +10 utility in the toy's churn model.
    assert!((adv_ww - adv_plain - 10.0).abs() < 1e-9);
    // A shorter period (faster identity shedding) is strictly stronger.
    let faster = Whitewash { period: 5 };
    let (_, adv_faster) = faster.encounter(&ctx(&*d, 0.2), 2, 5);
    assert!(adv_faster > adv_ww);
}

#[test]
fn adaptive_blends_probe_and_exploit_phases() {
    let d = grid();
    // With one candidate and a share-independent toy, probing just mixes
    // two seeds of the same encounter: the blend stays within jitter of
    // the plain outcome.
    let adaptive = Adaptive { probe_share: 0.25 };
    let plain = Sybil {
        identities: 1,
        upkeep: 0.0,
    };
    let (def_a, adv_a) = adaptive.encounter(&ctx(&*d, 0.2), 2, 5);
    let (def_p, adv_p) = plain.encounter(&ctx(&*d, 0.2), 2, 5);
    assert!((def_a - def_p).abs() < 1e-5);
    assert!((adv_a - adv_p).abs() < 1e-5);
}

#[test]
fn sweep_robustness_is_monotone_in_budget_and_matches_hand_math() {
    let d = grid();
    let model = Sybil {
        identities: 1,
        upkeep: 0.0,
    };
    let cfg = AttackConfig {
        budgets: vec![0.2, 0.5],
        encounter_runs: 2,
        threads: 1,
        seed: 3,
    };
    let sweep = AttackSweep::compute(&*d, &model, Effort::Smoke, &cfg, "smoke");
    // L0 vs deviant L0: survive iff 1 − β > β — true at 0.2, tie (loss)
    // at 0.5. Everyone else out-earns the deviant by ≥ 10.
    assert_eq!(sweep.robustness[0], vec![1.0, 1.0, 1.0, 1.0]);
    assert_eq!(sweep.robustness[1], vec![0.0, 1.0, 1.0, 1.0]);
    assert_eq!(sweep.mean_robustness(), vec![1.0, 0.75]);
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    // Guards the Sybil identity multiplexing (and every other model)
    // against scheduling-order leaks: 1 worker and 8 workers must write
    // byte-identical CSVs.
    let d = grid();
    for model in dsa_attacks::register_builtin() {
        let mut cfg = AttackConfig {
            budgets: vec![0.1, 0.3, 0.5],
            encounter_runs: 3,
            threads: 1,
            seed: 0xD15C,
        };
        let serial = AttackSweep::compute(&*d, &*model, Effort::Smoke, &cfg, "smoke");
        cfg.threads = 8;
        let parallel = AttackSweep::compute(&*d, &*model, Effort::Smoke, &cfg, "smoke");
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "thread-count leak in model '{}'",
            model.name()
        );
        assert_eq!(serial.key, parallel.key, "threads must not enter the key");
    }
}

#[test]
fn cache_roundtrips_and_stale_stamps_self_invalidate() {
    let dir = temp_dir("cache");
    let d = grid();
    let model = Sybil::default();
    let cfg = AttackConfig {
        budgets: vec![0.1, 0.5],
        encounter_runs: 1,
        threads: 1,
        seed: 11,
    };
    let fresh =
        AttackSweep::load_or_compute(&*d, &model, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(!fresh.from_cache);
    assert!(fresh.path(&dir).ends_with("attack-grid-sybil-smoke.csv"));

    // Re-running with the same config hits the cache, bit-identically.
    let cached =
        AttackSweep::load_or_compute(&*d, &model, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(cached.from_cache);
    assert_eq!(cached.to_csv(), fresh.to_csv());

    // Changing the budget grid mismatches the stamp and recomputes.
    let mut regrid = cfg.clone();
    regrid.budgets = vec![0.1, 0.4];
    let recomputed =
        AttackSweep::load_or_compute(&*d, &model, Effort::Smoke, &regrid, "smoke", &dir).unwrap();
    assert!(!recomputed.from_cache, "changed grid must recompute");

    // So does changing the model parameters (same file name!)...
    let stronger = Sybil {
        identities: 5,
        upkeep: 0.2,
    };
    let re2 = AttackSweep::load_or_compute(&*d, &stronger, Effort::Smoke, &regrid, "smoke", &dir)
        .unwrap();
    assert!(!re2.from_cache, "changed model parameters must recompute");

    // ... and the seed.
    let mut reseeded = regrid.clone();
    reseeded.seed ^= 1;
    let re3 = AttackSweep::load_or_compute(&*d, &stronger, Effort::Smoke, &reseeded, "smoke", &dir)
        .unwrap();
    assert!(!re3.from_cache, "changed seed must recompute");

    // A corrupt body under a matching stamp is a hard error.
    let path = re3.path(&dir);
    let text = std::fs::read_to_string(&path).unwrap();
    let stamp = text.split_once('\n').unwrap().0;
    std::fs::write(
        &path,
        format!("{stamp}\nbudget,index,name,robustness\n0.1,0,L0,NOPE\n"),
    )
    .unwrap();
    assert!(
        AttackSweep::load_or_compute(&*d, &stronger, Effort::Smoke, &reseeded, "smoke", &dir)
            .is_err()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parameterized_variants_behave_and_fingerprint_per_value() {
    use dsa_attacks::models::{parameterized, parse_param_spec};
    let d = grid();
    // A k=4 sybil variant amplifies exactly like the hand-built struct.
    let k4 = parameterized("sybil", "k", 4.0).unwrap();
    let hand = Sybil {
        identities: 4,
        ..Sybil::default()
    };
    assert_eq!(
        k4.encounter(&ctx(&*d, 0.2), 2, 5),
        hand.encounter(&ctx(&*d, 0.2), 2, 5)
    );
    // Every parameter value is a distinct cache fingerprint, and every
    // variant differs from the default model's.
    let grid_budgets = [0.1, 0.5];
    let k2 = parameterized("sybil", "k", 2.0).unwrap();
    assert_ne!(k2.key(&grid_budgets), k4.key(&grid_budgets));
    assert_ne!(k2.key(&grid_budgets), Sybil::default().key(&grid_budgets));
    let p5 = parameterized("whitewash", "period", 5.0).unwrap();
    let p20 = parameterized("whitewash", "period", 20.0).unwrap();
    assert_ne!(p5.key(&grid_budgets), p20.key(&grid_budgets));
    let probe = parameterized("adaptive", "probe", 0.5).unwrap();
    assert_ne!(
        probe.key(&grid_budgets),
        Adaptive::default().key(&grid_budgets)
    );
    // Bad specs are rejected with a message, not silently defaulted.
    assert!(parameterized("sybil", "period", 3.0).is_err());
    assert!(parameterized("collusion", "k", 3.0).is_err());
    assert!(parameterized("no-such-model", "k", 3.0).is_err());
    assert!(parameterized("sybil", "k", 0.5).is_err());
    assert!(parameterized("adaptive", "probe", 1.5).is_err());
    // The grid specification parser.
    let (name, values) = parse_param_spec("k=2,4,8").unwrap();
    assert_eq!(name, "k");
    assert_eq!(values, vec![2.0, 4.0, 8.0]);
    assert!(parse_param_spec("k").is_err());
    assert!(parse_param_spec("=2").is_err());
    assert!(parse_param_spec("k=2,x").is_err());
}

#[test]
fn parameter_grid_caches_self_invalidate() {
    // An attack sweep cached under sybil k=2 must never validate the
    // k=4 variant's key: the parameter is folded into the attack
    // fingerprint exactly like the budget grid.
    use dsa_attacks::models::parameterized;
    let dir = temp_dir("param");
    let d = grid();
    let cfg = AttackConfig {
        budgets: vec![0.1, 0.5],
        encounter_runs: 1,
        threads: 1,
        seed: 11,
    };
    let k2 = parameterized("sybil", "k", 2.0).unwrap();
    let first =
        AttackSweep::load_or_compute(&*d, &*k2, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(!first.from_cache);
    let k4 = parameterized("sybil", "k", 4.0).unwrap();
    let second =
        AttackSweep::load_or_compute(&*d, &*k4, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(!second.from_cache, "k=4 must not trust the k=2 cache");
    // Re-running k=4 now hits its own cache.
    let third =
        AttackSweep::load_or_compute(&*d, &*k4, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(third.from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_builtin_model_composes_with_the_domain() {
    let d = grid();
    for model in dsa_attacks::register_builtin() {
        let cfg = AttackConfig {
            budgets: vec![0.25],
            encounter_runs: 1,
            threads: 1,
            seed: 2,
        };
        let sweep = AttackSweep::compute(&*d, &*model, Effort::Smoke, &cfg, "smoke");
        assert_eq!(sweep.robustness.len(), 1);
        assert_eq!(sweep.robustness[0].len(), 4);
        assert!(sweep.robustness[0].iter().all(|r| (0.0..=1.0).contains(r)));
        // The strongest protocol in the toy always out-earns any
        // adversary built from the weakest.
        assert_eq!(sweep.robustness[0][3], 1.0, "model {}", model.name());
    }
}
