//! The reputation design space: five dimensions, actualized.
//!
//! Parameterization (the §3 method applied to reputation systems):
//!
//! 1. **Reputation source** — which records feed a serving decision:
//!    private history, one-hop gossip, transitive (BarterCast-style)
//!    inference through intermediaries, or EigenTrust-style *normalized*
//!    transitive trust (witnesses share one unit of influence, split in
//!    proportion to the trust the server places in each).
//! 2. **Record maintenance** — how records age: kept forever, decayed
//!    exponentially, or truncated to a sliding window.
//! 3. **Stranger policy** — how peers with no interaction record are
//!    bootstrapped: denied, served optimistically, or served with a coin
//!    flip.
//! 4. **Response function** — how scores map to service: threshold ban,
//!    proportional allocation, rank-based selection, or never serving
//!    (the free-rider actualization).
//! 5. **Identity policy** — whether a peer keeps a stable identity or
//!    periodically *whitewashes* (re-enters under a fresh pseudonym,
//!    escaping its accumulated record).
//!
//! 4 × 3 × 3 × 4 × 2 = **288** protocols.

use std::fmt;

/// Where the serving decision's reputation score comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Only the server's own interaction history.
    Private,
    /// Own history plus one-hop gossiped opinions of sampled peers.
    Gossiped,
    /// Own history plus transitive inference: an intermediary's opinion
    /// counts up to the trust placed in the intermediary (BarterCast).
    Transitive,
    /// Own history plus *normalized* transitive trust (EigenTrust): each
    /// consulted intermediary's opinion is weighted by the server's trust
    /// in the intermediary divided by the total trust over all consulted
    /// intermediaries, so the witnesses share one unit of influence and
    /// no single loud record can dominate the inference.
    EigenTrust,
}

impl Source {
    /// All actualizations, enumeration order.
    pub const ALL: [Source; 4] = [
        Source::Private,
        Source::Gossiped,
        Source::Transitive,
        Source::EigenTrust,
    ];
}

/// How reputation records age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Maintenance {
    /// Records accumulate forever.
    Keep,
    /// Records decay exponentially each round.
    Decay,
    /// Only the last few rounds of contributions count.
    Window,
}

impl Maintenance {
    /// All actualizations, enumeration order.
    pub const ALL: [Maintenance; 3] = [Maintenance::Keep, Maintenance::Decay, Maintenance::Window];
}

/// How requests from unknown peers are bootstrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stranger {
    /// Never serve strangers.
    Deny,
    /// Always admit strangers at the baseline weight.
    Optimistic,
    /// Admit each stranger request with a configured probability.
    Probabilistic,
}

impl Stranger {
    /// All actualizations, enumeration order.
    pub const ALL: [Stranger; 3] = [
        Stranger::Deny,
        Stranger::Optimistic,
        Stranger::Probabilistic,
    ];
}

/// How scores map to allocated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Response {
    /// Serve every requester above the score threshold equally; ban the
    /// rest.
    ThresholdBan,
    /// Split capacity proportionally to requester scores.
    Proportional,
    /// Serve the top half of requesters ranked by score, equally.
    RankBased,
    /// Never serve anyone (the free-rider actualization).
    Freeride,
}

impl Response {
    /// All actualizations, enumeration order.
    pub const ALL: [Response; 4] = [
        Response::ThresholdBan,
        Response::Proportional,
        Response::RankBased,
        Response::Freeride,
    ];
}

/// Whether a peer keeps its identity or periodically whitewashes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Identity {
    /// One identity for the whole session.
    Stable,
    /// Re-enter under a fresh pseudonym every few rounds: every other
    /// peer's record of this peer is wiped (the whitewashing attack).
    Whitewash,
}

impl Identity {
    /// All actualizations, enumeration order.
    pub const ALL: [Identity; 2] = [Identity::Stable, Identity::Whitewash];
}

/// A complete reputation protocol: one actualization per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepProtocol {
    /// Reputation source.
    pub source: Source,
    /// Record maintenance.
    pub maintenance: Maintenance,
    /// Stranger bootstrap policy.
    pub stranger: Stranger,
    /// Response function.
    pub response: Response,
    /// Identity policy.
    pub identity: Identity,
}

/// Size of the actualized reputation space (4 × 3 × 3 × 4 × 2).
pub const REP_SPACE_SIZE: usize = 288;

impl RepProtocol {
    /// Flat index in `0..REP_SPACE_SIZE` (mixed radix, [`Source`] most
    /// significant).
    #[must_use]
    pub fn index(&self) -> usize {
        let s = Source::ALL
            .iter()
            .position(|x| x == &self.source)
            .expect("in ALL");
        let m = Maintenance::ALL
            .iter()
            .position(|x| x == &self.maintenance)
            .expect("in ALL");
        let st = Stranger::ALL
            .iter()
            .position(|x| x == &self.stranger)
            .expect("in ALL");
        let r = Response::ALL
            .iter()
            .position(|x| x == &self.response)
            .expect("in ALL");
        let id = Identity::ALL
            .iter()
            .position(|x| x == &self.identity)
            .expect("in ALL");
        (((s * 3 + m) * 3 + st) * 4 + r) * 2 + id
    }

    /// Decodes a flat index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < REP_SPACE_SIZE, "reputation index out of range");
        let id = index % 2;
        let r = (index / 2) % 4;
        let st = (index / 8) % 3;
        let m = (index / 24) % 3;
        let s = index / 72;
        Self {
            source: Source::ALL[s],
            maintenance: Maintenance::ALL[m],
            stranger: Stranger::ALL[st],
            response: Response::ALL[r],
            identity: Identity::ALL[id],
        }
    }

    /// Iterates the whole space in index order.
    pub fn all() -> impl Iterator<Item = RepProtocol> {
        (0..REP_SPACE_SIZE).map(Self::from_index)
    }

    /// The baseline "private history, kept forever, optimistic bootstrap,
    /// proportional allocation, stable identity" protocol.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            source: Source::Private,
            maintenance: Maintenance::Keep,
            stranger: Stranger::Optimistic,
            response: Response::Proportional,
            identity: Identity::Stable,
        }
    }
}

impl fmt::Display for RepProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}/{:?}/{:?}/{:?}/{:?}",
            self.source, self.maintenance, self.stranger, self.response, self.identity
        )
    }
}

/// The generic design-space descriptor for this domain.
#[must_use]
pub fn design_space() -> dsa_core::DesignSpace {
    dsa_core::DesignSpace::new(
        "reputation",
        vec![
            dsa_core::Dimension::new(
                "Source",
                Source::ALL.iter().map(|s| format!("{s:?}")).collect(),
            ),
            dsa_core::Dimension::new(
                "Maintenance",
                Maintenance::ALL.iter().map(|s| format!("{s:?}")).collect(),
            ),
            dsa_core::Dimension::new(
                "Stranger",
                Stranger::ALL.iter().map(|s| format!("{s:?}")).collect(),
            ),
            dsa_core::Dimension::new(
                "Response",
                Response::ALL.iter().map(|s| format!("{s:?}")).collect(),
            ),
            dsa_core::Dimension::new(
                "Identity",
                Identity::ALL.iter().map(|s| format!("{s:?}")).collect(),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_size_and_roundtrip() {
        assert_eq!(RepProtocol::all().count(), REP_SPACE_SIZE);
        for i in 0..REP_SPACE_SIZE {
            assert_eq!(RepProtocol::from_index(i).index(), i);
        }
    }

    #[test]
    fn protocols_distinct() {
        let set: HashSet<RepProtocol> = RepProtocol::all().collect();
        assert_eq!(set.len(), REP_SPACE_SIZE);
    }

    #[test]
    fn descriptor_matches_flat_encoding() {
        let space = design_space();
        assert_eq!(space.size(), REP_SPACE_SIZE);
        // The DesignSpace mixed-radix order must agree with index():
        // coordinates of a flat index name the same actualizations.
        for i in [0, 1, 17, 99, REP_SPACE_SIZE - 1] {
            let p = RepProtocol::from_index(i);
            let coords = space.coords(i);
            assert_eq!(Source::ALL[coords[0]], p.source);
            assert_eq!(Maintenance::ALL[coords[1]], p.maintenance);
            assert_eq!(Stranger::ALL[coords[2]], p.stranger);
            assert_eq!(Response::ALL[coords[3]], p.response);
            assert_eq!(Identity::ALL[coords[4]], p.identity);
        }
    }

    #[test]
    fn space_exceeds_hundred_protocols() {
        let space = design_space();
        assert!(space.size() >= 100);
        assert!(space.dimensions().len() >= 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_bounds() {
        let _ = RepProtocol::from_index(REP_SPACE_SIZE);
    }
}
