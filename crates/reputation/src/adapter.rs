//! Plugs the reputation simulator into the DSA framework, both as a
//! typed [`EncounterSim`] and as a registered [`Domain`].

use crate::engine::{run, RepConfig};
use crate::presets;
use crate::protocol::{design_space, RepProtocol};
use dsa_core::domain::{Domain, DynDomain, Effort};
use dsa_core::sim::EncounterSim;
use dsa_workloads::churn::ChurnModel;
use std::sync::Arc;

/// The reputation domain as an [`EncounterSim`], ready for
/// [`dsa_core::pra::quantify`], tournament sampling and heuristic search.
#[derive(Debug, Clone, Default)]
pub struct RepSim {
    /// Simulation parameters shared by every run of the sweep.
    pub config: RepConfig,
}

impl EncounterSim for RepSim {
    type Protocol = RepProtocol;

    fn run_homogeneous(&self, protocol: &RepProtocol, seed: u64) -> f64 {
        let u = dsa_core::sim::with_zero_assignment(self.config.peers, |assignment| {
            run(&[*protocol], assignment, &self.config, seed)
        });
        u.iter().sum::<f64>() / u.len() as f64
    }

    fn run_encounter(
        &self,
        a: &RepProtocol,
        b: &RepProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.peers;
        let (count_a, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let u = run(&[*a, *b], &assignment, &self.config, seed);
        let mean = |lo: usize, hi: usize| u[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        (mean(0, count_a), mean(count_a, n))
    }
}

/// The reputation domain for the generic registry
/// ([`dsa_core::domain`]): the 288-protocol space behind the type-erased
/// interface the CLI, sweep cache and cross-domain figures share.
pub struct RepDomain;

impl Domain for RepDomain {
    type Sim = RepSim;

    fn name(&self) -> &'static str {
        "rep"
    }

    fn space(&self) -> dsa_core::DesignSpace {
        design_space()
    }

    fn protocol(&self, index: usize) -> RepProtocol {
        RepProtocol::from_index(index)
    }

    fn code(&self, index: usize) -> String {
        RepProtocol::from_index(index).to_string()
    }

    fn presets(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("baseline", RepProtocol::baseline().index()),
            ("tft", presets::private_tft().index()),
            ("bartercast", presets::bartercast().index()),
            ("eigentrust", presets::eigentrust().index()),
            ("elitist", presets::elitist().index()),
            ("prober", presets::prober().index()),
            ("freerider", presets::freerider().index()),
            ("whitewasher", presets::whitewasher().index()),
        ]
    }

    fn aliases(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("bc", presets::bartercast().index()),
            ("et", presets::eigentrust().index()),
            ("ww", presets::whitewasher().index()),
        ]
    }

    fn attackers(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("freerider", presets::freerider().index()),
            ("whitewasher", presets::whitewasher().index()),
        ]
    }

    fn whitewasher(&self) -> Option<usize> {
        Some(presets::whitewasher().index())
    }

    fn supports_churn(&self) -> bool {
        true
    }

    fn population(&self, effort: Effort) -> usize {
        self.sim(effort, 0.0).config.peers
    }

    fn supports_mixed(&self) -> bool {
        true
    }

    fn run_mixed(&self, effort: Effort, groups: &[(usize, usize)], seed: u64) -> Option<Vec<f64>> {
        // The reputation engine hosts any number of protocol groups
        // natively through its per-peer assignment; groups occupy
        // contiguous peer ranges in `groups` order (the
        // `split_population` layout), and each group's mean is computed
        // with the same slice arithmetic as `run_encounter`, so the one-
        // and two-group cases reproduce the plain hooks bit for bit.
        let mut config = self.sim(effort, 0.0).config;
        config.peers = groups.iter().map(|&(_, count)| count).sum();
        let protocols: Vec<RepProtocol> = groups
            .iter()
            .map(|&(p, _)| RepProtocol::from_index(p))
            .collect();
        let mut assignment = Vec::with_capacity(config.peers);
        for (g, &(_, count)) in groups.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(g, count));
        }
        let u = run(&protocols, &assignment, &config, seed);
        let mut means = Vec::with_capacity(groups.len());
        let mut lo = 0;
        for &(_, count) in groups {
            means.push(u[lo..lo + count].iter().sum::<f64>() / count as f64);
            lo += count;
        }
        Some(means)
    }

    fn sim(&self, effort: Effort, churn: f64) -> RepSim {
        let mut config = match effort {
            Effort::Smoke => RepConfig::fast(),
            Effort::Lab => RepConfig::default(),
            Effort::Paper => RepConfig {
                peers: 32,
                rounds: 160,
                ..RepConfig::default()
            },
        };
        if churn > 0.0 {
            config.churn = ChurnModel::PerRound { rate: churn };
        }
        RepSim { config }
    }

    fn simulate_report(&self, index: usize, effort: Effort, churn: f64, seed: u64) -> String {
        let sim = self.sim(effort, churn);
        let p = RepProtocol::from_index(index);
        let u = dsa_core::sim::with_zero_assignment(sim.config.peers, |assignment| {
            run(&[p], assignment, &sim.config, seed)
        });
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        let mut sorted = u;
        sorted.sort_by(f64::total_cmp);
        format!(
            "protocol      : {p}\n\
             mean utility  : {mean:.2} service units/peer\n\
             min / median / max : {:.2} / {:.2} / {:.2}\n",
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1]
        )
    }
}

/// Registers (or refreshes) the reputation domain in the global registry
/// and returns its handle.
pub fn register() -> Arc<dyn DynDomain> {
    dsa_core::domain::register_domain(RepDomain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn homogeneous_matches_engine() {
        let sim = RepSim::default();
        let p = RepProtocol::baseline();
        let via_trait = sim.run_homogeneous(&p, 5);
        let u = run(&[p], &vec![0; sim.config.peers], &sim.config, 5);
        assert_eq!(via_trait, u.iter().sum::<f64>() / u.len() as f64);
    }

    #[test]
    fn cooperators_beat_freeriders_at_even_split() {
        let sim = RepSim::default();
        let (coop, free) =
            sim.run_encounter(&presets::private_tft(), &presets::freerider(), 0.5, 6);
        assert!(coop > free, "coop {coop} free {free}");
    }

    #[test]
    fn extreme_fractions_keep_one_peer() {
        let sim = RepSim::default();
        let (a, b) =
            sim.run_encounter(&RepProtocol::baseline(), &RepProtocol::baseline(), 0.001, 7);
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn deterministic_in_seed() {
        let sim = RepSim::default();
        let x = sim.run_encounter(&presets::bartercast(), &presets::whitewasher(), 0.5, 11);
        let y = sim.run_encounter(&presets::bartercast(), &presets::whitewasher(), 0.5, 11);
        assert_eq!(x, y);
    }

    #[test]
    fn domain_parses_presets_and_names_attackers() {
        let d = register();
        assert_eq!(d.name(), "rep");
        assert_eq!(d.size(), crate::protocol::REP_SPACE_SIZE);
        assert_eq!(d.parse("ww").unwrap(), presets::whitewasher().index());
        assert_eq!(d.parse("et").unwrap(), presets::eigentrust().index());
        assert_eq!(
            d.parse("eigentrust").unwrap(),
            presets::eigentrust().index()
        );
        let attackers: Vec<String> = d.attackers().into_iter().map(|(n, _)| n).collect();
        assert_eq!(attackers, vec!["freerider", "whitewasher"]);
        assert!(d.supports_churn());
        // The whitewash hook names the identity-shedding design point.
        assert_eq!(d.whitewasher(), Some(presets::whitewasher().index()));
    }

    #[test]
    fn churn_hook_changes_the_encounter_stream() {
        // With churn active, the encounter outcome must differ from the
        // churn-free stream (the identity-churn attack hook is live), and
        // stay deterministic in the seed.
        let d = register();
        let host = presets::private_tft().index();
        let ww = presets::whitewasher().index();
        let calm = d.run_encounter(host, ww, 0.9, Effort::Smoke, 11);
        let churned = d.run_encounter_churn(host, ww, 0.9, Effort::Smoke, 0.1, 11);
        assert_ne!(calm, churned);
        assert_eq!(
            churned,
            d.run_encounter_churn(host, ww, 0.9, Effort::Smoke, 0.1, 11)
        );
    }

    #[test]
    fn native_mixed_honours_the_degeneracy_contracts() {
        let d = register();
        assert!(d.supports_mixed());
        let n = d.population(Effort::Smoke);
        let tft = presets::private_tft().index();
        let fr = presets::freerider().index();
        assert_eq!(
            d.run_mixed(&[(tft, n)], Effort::Smoke, 5),
            vec![d.run_homogeneous(tft, Effort::Smoke, 5)]
        );
        let (ua, ub) = d.run_encounter(tft, fr, 0.25, Effort::Smoke, 5);
        let quarter = (n as f64 * 0.25).round() as usize;
        assert_eq!(
            d.run_mixed(&[(tft, quarter), (fr, n - quarter)], Effort::Smoke, 5),
            vec![ua, ub]
        );
        // Three protocol groups share ONE community.
        let groups = [(tft, 8), (presets::bartercast().index(), 4), (fr, 4)];
        let us = d.run_mixed(&groups, Effort::Smoke, 6);
        assert_eq!(us.len(), 3);
        assert_eq!(us, d.run_mixed(&groups, Effort::Smoke, 6));
    }

    #[test]
    fn domain_simulate_report_shows_distribution() {
        let report =
            RepDomain.simulate_report(presets::bartercast().index(), Effort::Smoke, 0.0, 3);
        assert!(report.contains("min / median / max"));
    }
}
