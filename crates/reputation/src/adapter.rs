//! Plugs the reputation simulator into the DSA framework.

use crate::engine::{run, RepConfig};
use crate::protocol::RepProtocol;
use dsa_core::sim::EncounterSim;

/// The reputation domain as an [`EncounterSim`], ready for
/// [`dsa_core::pra::quantify`], tournament sampling and heuristic search.
#[derive(Debug, Clone, Default)]
pub struct RepSim {
    /// Simulation parameters shared by every run of the sweep.
    pub config: RepConfig,
}

impl EncounterSim for RepSim {
    type Protocol = RepProtocol;

    fn run_homogeneous(&self, protocol: &RepProtocol, seed: u64) -> f64 {
        let u = run(
            &[*protocol],
            &vec![0; self.config.peers],
            &self.config,
            seed,
        );
        u.iter().sum::<f64>() / u.len() as f64
    }

    fn run_encounter(
        &self,
        a: &RepProtocol,
        b: &RepProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.peers;
        let (count_a, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let u = run(&[*a, *b], &assignment, &self.config, seed);
        let mean = |lo: usize, hi: usize| u[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        (mean(0, count_a), mean(count_a, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn homogeneous_matches_engine() {
        let sim = RepSim::default();
        let p = RepProtocol::baseline();
        let via_trait = sim.run_homogeneous(&p, 5);
        let u = run(&[p], &vec![0; sim.config.peers], &sim.config, 5);
        assert_eq!(via_trait, u.iter().sum::<f64>() / u.len() as f64);
    }

    #[test]
    fn cooperators_beat_freeriders_at_even_split() {
        let sim = RepSim::default();
        let (coop, free) =
            sim.run_encounter(&presets::private_tft(), &presets::freerider(), 0.5, 6);
        assert!(coop > free, "coop {coop} free {free}");
    }

    #[test]
    fn extreme_fractions_keep_one_peer() {
        let sim = RepSim::default();
        let (a, b) =
            sim.run_encounter(&RepProtocol::baseline(), &RepProtocol::baseline(), 0.001, 7);
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn deterministic_in_seed() {
        let sim = RepSim::default();
        let x = sim.run_encounter(&presets::bartercast(), &presets::whitewasher(), 0.5, 11);
        let y = sim.run_encounter(&presets::bartercast(), &presets::whitewasher(), 0.5, 11);
        assert_eq!(x, y);
    }
}
