//! Named reputation protocols used by the CLI, examples and docs.

use crate::protocol::{Identity, Maintenance, RepProtocol, Response, Source, Stranger};

/// Pure private-history tit-for-tat: serve whoever has served you,
/// judged over a sliding window, with an optimistic bootstrap.
#[must_use]
pub fn private_tft() -> RepProtocol {
    RepProtocol {
        source: Source::Private,
        maintenance: Maintenance::Window,
        stranger: Stranger::Optimistic,
        response: Response::ThresholdBan,
        identity: Identity::Stable,
    }
}

/// BarterCast-flavored: transitive reputation through intermediaries,
/// exponentially decayed, proportional allocation.
#[must_use]
pub fn bartercast() -> RepProtocol {
    RepProtocol {
        source: Source::Transitive,
        maintenance: Maintenance::Decay,
        stranger: Stranger::Optimistic,
        response: Response::Proportional,
        identity: Identity::Stable,
    }
}

/// EigenTrust-flavored: normalized transitive trust through
/// intermediaries (witnesses share one unit of influence in proportion to
/// the trust placed in them), exponentially decayed, proportional
/// allocation.
#[must_use]
pub fn eigentrust() -> RepProtocol {
    RepProtocol {
        source: Source::EigenTrust,
        ..bartercast()
    }
}

/// A gossip-informed elitist: pools one-hop opinions and serves only the
/// top-ranked half of its requesters, never strangers.
#[must_use]
pub fn elitist() -> RepProtocol {
    RepProtocol {
        source: Source::Gossiped,
        maintenance: Maintenance::Keep,
        stranger: Stranger::Deny,
        response: Response::RankBased,
        identity: Identity::Stable,
    }
}

/// A cautious prober: private history, probabilistic stranger admission.
#[must_use]
pub fn prober() -> RepProtocol {
    RepProtocol {
        source: Source::Private,
        maintenance: Maintenance::Decay,
        stranger: Stranger::Probabilistic,
        response: Response::Proportional,
        identity: Identity::Stable,
    }
}

/// The pure free-rider: requests service, never serves.
#[must_use]
pub fn freerider() -> RepProtocol {
    RepProtocol {
        source: Source::Private,
        maintenance: Maintenance::Keep,
        stranger: Stranger::Deny,
        response: Response::Freeride,
        identity: Identity::Stable,
    }
}

/// The whitewashing attacker: free-rides *and* periodically re-enters
/// under a fresh identity to shed the bad record.
#[must_use]
pub fn whitewasher() -> RepProtocol {
    RepProtocol {
        response: Response::Freeride,
        identity: Identity::Whitewash,
        ..freerider()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RepConfig};

    #[test]
    fn presets_are_distinct_points() {
        let set: std::collections::HashSet<usize> = [
            private_tft(),
            bartercast(),
            eigentrust(),
            elitist(),
            prober(),
            freerider(),
            whitewasher(),
        ]
        .iter()
        .map(RepProtocol::index)
        .collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn cooperative_presets_sustain_service() {
        let cfg = RepConfig::default();
        for p in [private_tft(), bartercast(), eigentrust(), prober()] {
            let u = run(&[p], &vec![0; cfg.peers], &cfg, 3);
            let mean = u.iter().sum::<f64>() / u.len() as f64;
            assert!(mean > 0.0, "{p} produced no service");
        }
    }

    #[test]
    fn attacker_presets_self_destruct_homogeneously() {
        // A population consisting only of attackers serves nothing.
        let cfg = RepConfig::default();
        for p in [freerider(), whitewasher()] {
            let u = run(&[p], &vec![0; cfg.peers], &cfg, 4);
            assert!(u.iter().all(|&x| x == 0.0), "{p} should starve");
        }
    }

    #[test]
    fn whitewasher_outlasts_freerider_against_bartercast() {
        // Against a reputation-keeping majority with optimistic
        // bootstrap, shedding identity re-opens the stranger channel, so
        // the whitewasher should receive at least as much as the honest
        // free-rider.
        let cfg = RepConfig::default();
        let sim = crate::adapter::RepSim { config: cfg };
        let host = bartercast();
        let (_, fr) =
            dsa_core::sim::EncounterSim::run_encounter(&sim, &host, &freerider(), 0.75, 8);
        let (_, ww) =
            dsa_core::sim::EncounterSim::run_encounter(&sim, &host, &whitewasher(), 0.75, 8);
        assert!(ww >= fr, "whitewasher {ww} vs freerider {fr}");
    }
}
