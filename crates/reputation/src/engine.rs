//! Cycle-based simulator of a reputation-mediated sharing community.
//!
//! Each round every peer requests service from a few random peers; each
//! peer then divides its upload capacity among its incoming requesters
//! according to its protocol — scoring requesters through its reputation
//! *source*, aging records per its *maintenance* policy, bootstrapping
//! unknown requesters per its *stranger* policy and mapping scores to
//! service through its *response* function. Peers with the *whitewash*
//! identity policy periodically shed their accumulated record; churned
//! peers are replaced by fresh ones (reusing the slot) with empty records
//! on both sides. Utility = total service received, the
//! application-defined performance measure for this domain.

use crate::protocol::{Identity, Maintenance, RepProtocol, Response, Source, Stranger};
use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::churn::ChurnModel;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RepConfig {
    /// Number of peers.
    pub peers: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Requests each peer issues per round.
    pub requests: usize,
    /// Upload-capacity distribution (service units per round).
    pub capacity: BandwidthDist,
    /// Peer replacement process (whitewashing's blunt cousin).
    pub churn: ChurnModel,
    /// Peers consulted per decision by the Gossiped/Transitive sources.
    pub gossip_sources: usize,
    /// Rounds between identity resets for whitewashing peers.
    pub whitewash_period: usize,
    /// Per-round retention factor for [`Maintenance::Decay`].
    pub decay: f64,
    /// Window length in rounds for [`Maintenance::Window`].
    pub window: usize,
    /// Score a requester must strictly exceed under
    /// [`Response::ThresholdBan`].
    pub threshold: f64,
    /// Admission probability for [`Stranger::Probabilistic`].
    pub optimism: f64,
}

impl Default for RepConfig {
    fn default() -> Self {
        Self {
            // Dense enough that window-limited reciprocity can sustain
            // itself: a directed pair interacts ~3/23 of rounds, about
            // once per default window.
            peers: 24,
            rounds: 80,
            requests: 3,
            capacity: BandwidthDist::Uniform { lo: 5.0, hi: 15.0 },
            churn: ChurnModel::None,
            gossip_sources: 3,
            whitewash_period: 16,
            decay: 0.9,
            window: 8,
            threshold: 0.0,
            optimism: 0.5,
        }
    }
}

impl RepConfig {
    /// Reduced parameters for tests and tournament subsampling.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            peers: 16,
            rounds: 40,
            ..Self::default()
        }
    }
}

/// All peers' reputation ledgers as flat row-major matrices (row = owner,
/// column = subject), plus per-peer capacity and accumulated utility.
///
/// The per-peer struct-of-Vecs layout this replaces cost two dependent
/// pointer loads per ledger probe; the decision phase probes ledgers ~10⁵
/// times per run, so the flat layout is what makes the witness loops run
/// at memory speed. Row `i` of each matrix is `[i * n .. (i + 1) * n]`.
#[derive(Debug, Default)]
struct LedgerMat {
    n: usize,
    /// Ring slots per owner (`window`, or 1 when unused).
    window: usize,
    /// Maintained opinion scores (service received from each peer, aged
    /// per the owner's maintenance policy).
    opinion: Vec<f64>,
    /// Current-round contributions, folded in at end of round.
    accum: Vec<f64>,
    /// Last `window` rounds' contributions (Window policy), owner-major:
    /// `ring[owner * window * n + slot * n + subject]`. Empty when no
    /// protocol in the run uses [`Maintenance::Window`].
    ring: Vec<f64>,
    /// Next ring slot to overwrite, per owner.
    ring_pos: Vec<usize>,
    /// Whether the owner has ever interacted with each peer (in either
    /// direction) — peers never seen are *strangers*.
    seen: Vec<bool>,
}

impl LedgerMat {
    fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.opinion)
            + vec_bytes(&self.accum)
            + vec_bytes(&self.ring)
            + vec_bytes(&self.ring_pos)
            + vec_bytes(&self.seen)
    }

    /// Folds owner `i`'s round contributions into its opinion row.
    fn end_round(&mut self, i: usize, maintenance: Maintenance, decay: f64) {
        let row = i * self.n..(i + 1) * self.n;
        let opinion = &mut self.opinion[row.clone()];
        let accum = &mut self.accum[row];
        match maintenance {
            Maintenance::Keep => {
                for (o, a) in opinion.iter_mut().zip(accum.iter()) {
                    *o += a;
                }
            }
            Maintenance::Decay => {
                for (o, a) in opinion.iter_mut().zip(accum.iter()) {
                    *o = *o * decay + a;
                }
            }
            Maintenance::Window => {
                let base = i * self.window * self.n + self.ring_pos[i] * self.n;
                let oldest = &mut self.ring[base..base + self.n];
                for ((o, a), old) in opinion.iter_mut().zip(accum.iter()).zip(oldest) {
                    *o += a - *old;
                    *old = *a;
                }
                self.ring_pos[i] = (self.ring_pos[i] + 1) % self.window;
            }
        }
        accum.fill(0.0);
    }

    /// Erases every trace of peer `p` from owner `i`'s ledger
    /// (whitewash / churn).
    fn forget(&mut self, i: usize, p: usize) {
        self.opinion[i * self.n + p] = 0.0;
        self.accum[i * self.n + p] = 0.0;
        if !self.ring.is_empty() {
            for slot in 0..self.window {
                self.ring[i * self.window * self.n + slot * self.n + p] = 0.0;
            }
        }
        self.seen[i * self.n + p] = false;
    }

    /// Resets owner `i`'s whole ledger (it is a fresh peer) in place.
    fn reset(&mut self, i: usize) {
        let row = i * self.n..(i + 1) * self.n;
        self.opinion[row.clone()].fill(0.0);
        self.accum[row.clone()].fill(0.0);
        if !self.ring.is_empty() {
            let base = i * self.window * self.n;
            self.ring[base..base + self.window * self.n].fill(0.0);
        }
        self.ring_pos[i] = 0;
        self.seen[row].fill(false);
    }
}

/// Reusable working memory for [`run_with_scratch`]: request lists
/// (flattened), the grant buffer, the per-decision scoring buffers and
/// the two index samplers, allocated once and recycled across runs.
/// After one warm run at a given population size, subsequent runs
/// through the same scratch perform zero steady-state heap allocations
/// per round (enforced by the `count-allocs` tests in `dsa-bench`).
///
/// A scratch carries no results between runs — every buffer is resized
/// and cleared before being read — so reusing one (even dirty, from a
/// different protocol or population) is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct RepScratch {
    /// Incoming-request lists, flattened: the peers that asked `s` for
    /// service this round live in `req_data[s * n .. s * n + req_len[s]]`
    /// in deterministic order.
    req_data: Vec<usize>,
    req_len: Vec<usize>,
    /// One peer's outgoing request targets (per-peer transient).
    req_out: Vec<usize>,
    /// Sampler for the request phase (draws from `0..n-1`).
    req_sampler: sampling::IndexSampler,
    /// Round's buffered grants `(server, requester, amount)`.
    grants: Vec<(usize, usize, f64)>,
    decision: DecisionScratch,
    /// Run state, reused across runs: the flat ledger matrices and the
    /// per-peer capacity / accumulated-utility vectors. Fully
    /// re-initialized during setup, so nothing carries over between runs.
    ledgers: LedgerMat,
    capacity: Vec<f64>,
    received: Vec<f64>,
}

impl RepScratch {
    /// Heap bytes held by the arena — every buffer's capacity times its
    /// element size, including the nested decision scratch, ledger
    /// matrices and index samplers. Monotone across runs through one
    /// scratch; published as the `mem.arena.rep_bytes` high-water gauge.
    #[must_use]
    pub fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.req_data)
            + vec_bytes(&self.req_len)
            + vec_bytes(&self.req_out)
            + self.req_sampler.footprint()
            + vec_bytes(&self.grants)
            + self.decision.footprint()
            + self.ledgers.footprint()
            + vec_bytes(&self.capacity)
            + vec_bytes(&self.received)
    }
}

/// Buffers for one server's allocation decision.
#[derive(Debug, Default)]
struct DecisionScratch {
    scores: Vec<Option<f64>>,
    admitted: Vec<Option<f64>>,
    weights: Vec<f64>,
    /// RankBased: admitted requester positions, their shuffled order,
    /// the shuffled score values, and the ranking over those values.
    eligible: Vec<usize>,
    order: Vec<usize>,
    values: Vec<f64>,
    ranks: Vec<usize>,
    /// Sampler + buffer for the gossip-witness draws (from `0..n`).
    gossip_sampler: sampling::IndexSampler,
    gossip_out: Vec<usize>,
    /// EigenTrust witness buffer: (trust in witness, witness's opinion).
    witnesses: Vec<(f64, f64)>,
}

impl DecisionScratch {
    fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.scores)
            + vec_bytes(&self.admitted)
            + vec_bytes(&self.weights)
            + vec_bytes(&self.eligible)
            + vec_bytes(&self.order)
            + vec_bytes(&self.values)
            + vec_bytes(&self.ranks)
            + self.gossip_sampler.footprint()
            + vec_bytes(&self.gossip_out)
            + vec_bytes(&self.witnesses)
    }
}

/// Runs one reputation simulation; returns per-peer utilities.
///
/// Deterministic in `seed`: all randomness flows through one generator
/// consumed in fixed iteration order. Traced as a `rep.run` span with
/// `rep.{setup,rounds,payoff}` phase children when tracing is on.
///
/// Thin wrapper over [`run_with_scratch`] using a thread-local
/// [`RepScratch`], so callers that loop over runs on one thread — sweep
/// workers, benchmarks, tests — automatically reuse one arena per thread.
///
/// # Panics
///
/// Panics if there are fewer than two peers or the assignment does not
/// cover every peer.
pub fn run(
    protocols: &[RepProtocol],
    assignment: &[usize],
    config: &RepConfig,
    seed: u64,
) -> Vec<f64> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<RepScratch> =
            std::cell::RefCell::new(RepScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run_with_scratch(protocols, assignment, config, seed, &mut scratch),
        // Re-entrant call on this thread: fall back to a fresh scratch
        // rather than aliasing the one already borrowed.
        Err(_) => run_with_scratch(
            protocols,
            assignment,
            config,
            seed,
            &mut RepScratch::default(),
        ),
    })
}

/// [`run`] against a caller-owned [`RepScratch`]. Output is bit-identical
/// to [`run`] regardless of the scratch's prior contents.
///
/// # Panics
///
/// Panics if there are fewer than two peers or the assignment does not
/// cover every peer.
pub fn run_with_scratch(
    protocols: &[RepProtocol],
    assignment: &[usize],
    config: &RepConfig,
    seed: u64,
    scratch: &mut RepScratch,
) -> Vec<f64> {
    let n = config.peers;
    assert!(n >= 2, "need at least two peers");
    assert_eq!(assignment.len(), n, "assignment must cover every peer");

    let _run_span = dsa_obs::span("rep.run");
    let setup_span = dsa_obs::span("rep.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    scratch.capacity.clear();
    scratch
        .capacity
        .extend((0..n).map(|_| config.capacity.sample(&mut rng)));
    scratch.received.clear();
    scratch.received.resize(n, 0.0);

    // The ring matrix is the one large piece of state most runs never
    // read: only materialize it when some protocol windows its records.
    let needs_window = protocols
        .iter()
        .any(|p| p.maintenance == Maintenance::Window);
    let window = config.window.max(1);
    let led = &mut scratch.ledgers;
    led.n = n;
    led.window = window;
    led.opinion.clear();
    led.opinion.resize(n * n, 0.0);
    led.accum.clear();
    led.accum.resize(n * n, 0.0);
    led.ring.clear();
    if needs_window {
        led.ring.resize(n * window * n, 0.0);
    }
    led.ring_pos.clear();
    led.ring_pos.resize(n, 0);
    led.seen.clear();
    led.seen.resize(n * n, false);

    scratch.req_data.clear();
    scratch.req_data.resize(n * n, 0);
    scratch.req_len.clear();
    scratch.req_len.resize(n, 0);
    drop(setup_span);

    // Allocation count at the edge of the round loop: the loop is the
    // steady state, so its delta — fed to mem.run_allocs.rep under
    // --alloc — must be zero once this scratch is warm. Setup and
    // payoff assembly allocate outputs by design and stay outside
    // the window.
    let loop_allocs = dsa_obs::alloc::thread_count();
    let rounds_span = dsa_obs::span("rep.rounds");
    let RepScratch {
        req_data,
        req_len,
        req_out,
        req_sampler,
        grants,
        decision,
        ledgers,
        capacity,
        received,
    } = scratch;
    // Maintenance is fusable across owners when every assigned protocol
    // ages records the same non-windowed way.
    let uniform_maintenance = {
        let first = protocols[assignment[0]].maintenance;
        (first != Maintenance::Window
            && assignment
                .iter()
                .all(|&a| protocols[a].maintenance == first))
        .then_some(first)
    };
    for round in 0..config.rounds {
        // 1. Every peer issues its requests to distinct random targets.
        // Request lists are rebuilt each round: `req_data` row `s` holds
        // the peers that asked `s` for service, in deterministic order.
        {
            req_len.fill(0);
            for i in 0..n {
                req_sampler.sample_into(n - 1, config.requests, &mut rng, req_out);
                for &t in req_out.iter() {
                    let target = if t >= i { t + 1 } else { t };
                    req_data[target * n + req_len[target]] = i;
                    req_len[target] += 1;
                }
            }
        }

        // 2. Every peer allocates its capacity among its requesters.
        // Grants are buffered and applied after all decisions, so every
        // decision sees the same start-of-round ledgers regardless of
        // peer iteration order.
        {
            grants.clear();
            for s in 0..n {
                let proto = &protocols[assignment[s]];
                let requesters = &req_data[s * n..s * n + req_len[s]];
                if proto.response == Response::Freeride || requesters.is_empty() {
                    continue;
                }
                decision_weights(s, requesters, proto, ledgers, config, &mut rng, decision);
                let weights = &decision.weights;
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    continue;
                }
                for (&r, &w) in requesters.iter().zip(weights) {
                    if w > 0.0 {
                        grants.push((s, r, capacity[s] * w / total));
                    }
                }
            }
        }

        // 3. Apply grants: service flows server → requester; the
        // requester's opinion of the server grows; both sides are no
        // longer strangers to each other.
        for &(s, r, amount) in grants.iter() {
            received[r] += amount;
            ledgers.accum[r * n + s] += amount;
            ledgers.seen[r * n + s] = true;
            ledgers.seen[s * n + r] = true;
        }

        // 4. Record maintenance. Homogeneous Keep/Decay populations (the
        // common case) fold the whole matrix in one fused pass — row
        // order is preserved, so the arithmetic is per-cell identical to
        // the per-owner loop it shortcuts.
        match uniform_maintenance {
            Some(Maintenance::Keep) => {
                for (o, a) in ledgers.opinion.iter_mut().zip(ledgers.accum.iter()) {
                    *o += a;
                }
                ledgers.accum.fill(0.0);
            }
            Some(Maintenance::Decay) => {
                let decay = config.decay;
                for (o, a) in ledgers.opinion.iter_mut().zip(ledgers.accum.iter()) {
                    *o = *o * decay + a;
                }
                ledgers.accum.fill(0.0);
            }
            _ => {
                for i in 0..n {
                    let m = protocols[assignment[i]].maintenance;
                    ledgers.end_round(i, m, config.decay);
                }
            }
        }

        // 5. Whitewashing: the peer re-enters under a fresh pseudonym, so
        // everyone else's record of it vanishes; its own knowledge (and
        // accumulated utility) survives — that is the attack.
        if config.whitewash_period > 0 && (round + 1) % config.whitewash_period == 0 {
            for w in 0..n {
                if protocols[assignment[w]].identity == Identity::Whitewash {
                    for i in 0..n {
                        if i != w {
                            ledgers.forget(i, w);
                        }
                    }
                }
            }
        }

        // 6. Churn: a replaced slot hosts a brand-new peer — empty
        // records on both sides, fresh capacity. Utility keeps
        // accumulating per slot (it measures the protocol's service
        // stream, as in the swarm engine).
        if !config.churn.is_none() {
            for (p, cap) in capacity.iter_mut().enumerate() {
                if config.churn.departs(f64::INFINITY, &mut rng) {
                    *cap = config.capacity.sample(&mut rng);
                    ledgers.reset(p);
                    for i in 0..n {
                        if i != p {
                            ledgers.forget(i, p);
                        }
                    }
                }
            }
        }
    }

    drop(rounds_span);
    let loop_allocs = dsa_obs::alloc::thread_count().saturating_sub(loop_allocs);

    let _payoff_span = dsa_obs::span("rep.payoff");
    let out = received.clone();

    // Arena accounting (see the swarm engine for the pattern).
    if dsa_obs::metrics_enabled() {
        let bytes = scratch.footprint() as f64;
        dsa_obs::gauge_max("mem.arena.rep_bytes", bytes);
        dsa_obs::gauge_max("mem.arena_peak_bytes", bytes);
        if dsa_obs::alloc::enabled() {
            dsa_obs::observe_thread_dependent("mem.run_allocs.rep", loop_allocs);
        }
    }
    out
}

/// Computes the allocation weight of every requester of server `s` into
/// `ds.weights` (same length and values as the old allocating version).
fn decision_weights(
    s: usize,
    requesters: &[usize],
    proto: &RepProtocol,
    led: &LedgerMat,
    config: &RepConfig,
    rng: &mut Xoshiro256pp,
    ds: &mut DecisionScratch,
) {
    // Fast path: unless the stranger policy draws admission randomness
    // (Probabilistic) or the response draws tie-break randomness
    // (RankBased), the score → admission → weight chain is pointwise, so
    // the three passes fuse into one loop whose only RNG consumption is
    // the source lookups — the same stream the staged path consumes.
    if proto.stranger != Stranger::Probabilistic && proto.response != Response::RankBased {
        ds.weights.clear();
        for &r in requesters {
            let score = source_score(
                s,
                r,
                proto.source,
                led,
                config,
                rng,
                &mut ds.gossip_sampler,
                &mut ds.gossip_out,
                &mut ds.witnesses,
            );
            let w = match score {
                Some(v) => match proto.response {
                    Response::Freeride => 0.0,
                    Response::ThresholdBan => f64::from(u8::from(v > config.threshold)),
                    Response::Proportional => v.max(0.0),
                    Response::RankBased => unreachable!(),
                },
                None => match proto.stranger {
                    Stranger::Deny => 0.0,
                    // Admitted strangers ride on the unit bootstrap
                    // under both remaining response functions.
                    Stranger::Optimistic => {
                        f64::from(u8::from(proto.response != Response::Freeride))
                    }
                    Stranger::Probabilistic => unreachable!(),
                },
            };
            ds.weights.push(if w.is_finite() { w } else { 0.0 });
        }
        return;
    }

    // Score every requester through the protocol's reputation source;
    // None marks strangers (no record through any channel).
    ds.scores.clear();
    for &r in requesters {
        let score = source_score(
            s,
            r,
            proto.source,
            led,
            config,
            rng,
            &mut ds.gossip_sampler,
            &mut ds.gossip_out,
            &mut ds.witnesses,
        );
        ds.scores.push(score);
    }

    // Stranger policy: admitted strangers enter the response function at
    // the baseline score 0 with unit bootstrap weight.
    ds.admitted.clear();
    for score in &ds.scores {
        ds.admitted.push(match score {
            Some(v) => Some(*v),
            None => match proto.stranger {
                Stranger::Deny => None,
                Stranger::Optimistic => Some(0.0),
                Stranger::Probabilistic => rng.chance(config.optimism).then_some(0.0),
            },
        });
    }

    ds.weights.clear();
    match proto.response {
        Response::Freeride => ds.weights.resize(requesters.len(), 0.0),
        Response::ThresholdBan => {
            ds.weights
                .extend(ds.admitted.iter().zip(&ds.scores).map(|(adm, known)| {
                    match (adm, known) {
                        // Known requesters must beat the threshold;
                        // admitted strangers ride on the bootstrap.
                        (Some(v), Some(_)) => f64::from(u8::from(*v > config.threshold)),
                        (Some(_), None) => 1.0,
                        (None, _) => 0.0,
                    }
                }));
        }
        Response::Proportional => {
            ds.weights
                .extend(ds.admitted.iter().zip(&ds.scores).map(|(adm, known)| {
                    match (adm, known) {
                        (Some(v), Some(_)) => v.max(0.0),
                        // Bootstrap trickle: strangers weigh one unit.
                        (Some(_), None) => 1.0,
                        (None, _) => 0.0,
                    }
                }));
        }
        Response::RankBased => {
            // Rank admitted requesters by score; the top half (rounded
            // up) shares capacity equally. Ties break randomly so no
            // index is systematically favoured (cf. gossip's
            // top_partners).
            ds.eligible.clear();
            ds.eligible
                .extend((0..requesters.len()).filter(|&k| ds.admitted[k].is_some()));
            ds.weights.resize(requesters.len(), 0.0);
            if ds.eligible.is_empty() {
                return;
            }
            ds.order.clear();
            ds.order.extend_from_slice(&ds.eligible);
            sampling::shuffle(&mut ds.order, rng);
            ds.values.clear();
            ds.values
                .extend(ds.order.iter().map(|&k| ds.admitted[k].unwrap_or(0.0)));
            let keep = ds.eligible.len().div_ceil(2);
            sampling::rank_indices_into(&ds.values, false, &mut ds.ranks);
            for &rank in ds.ranks.iter().take(keep) {
                ds.weights[ds.order[rank]] = 1.0;
            }
        }
    }
    for w in &mut ds.weights {
        if !w.is_finite() {
            *w = 0.0;
        }
    }
}

/// Scores requester `r` from server `s`'s point of view, or `None` if
/// every consulted channel is silent (a stranger). `sampler`/`gossip_out`
/// /`witnesses` are caller-owned scratch (contents ignored, clobbered).
#[allow(clippy::too_many_arguments)]
fn source_score(
    s: usize,
    r: usize,
    source: Source,
    led: &LedgerMat,
    config: &RepConfig,
    rng: &mut Xoshiro256pp,
    sampler: &mut sampling::IndexSampler,
    gossip_out: &mut Vec<usize>,
    witnesses: &mut Vec<(f64, f64)>,
) -> Option<f64> {
    let n = led.n;
    let s_seen = &led.seen[s * n..(s + 1) * n];
    let s_op = &led.opinion[s * n..(s + 1) * n];
    let own_seen = s_seen[r];
    let own = s_op[r];
    if source == Source::Private {
        return own_seen.then_some(own);
    }
    let mut score = if own_seen { own } else { 0.0 };
    let mut heard = own_seen;
    sampler.sample_into(n, config.gossip_sources, rng, gossip_out);
    // The source match sits outside the witness loop so each variant
    // compiles to its own tight scan over the sampled witnesses.
    match source {
        // One-hop gossip: take the witness at face value.
        Source::Gossiped => {
            for &g in gossip_out.iter() {
                if g != s && g != r && led.seen[g * n + r] {
                    score += led.opinion[g * n + r];
                    heard = true;
                }
            }
        }
        // BarterCast-style: a witness counts only up to the trust the
        // server places in the witness itself.
        Source::Transitive => {
            for &g in gossip_out.iter() {
                if g != s && g != r && led.seen[g * n + r] && s_seen[g] {
                    score += led.opinion[g * n + r].min(s_op[g].max(0.0));
                    heard = true;
                }
            }
        }
        // EigenTrust-style: witnesses split one unit of influence in
        // proportion to the server's (non-negative) trust in them; an
        // untrusted witness carries no weight at all. Witnesses are
        // buffered as (trust, opinion) and folded in after the scan,
        // because the weights normalize over the *total* trust in the
        // consulted witnesses.
        Source::EigenTrust => {
            witnesses.clear();
            for &g in gossip_out.iter() {
                if g != s && g != r && led.seen[g * n + r] && s_seen[g] {
                    let trust = s_op[g].max(0.0);
                    if trust > 0.0 {
                        witnesses.push((trust, led.opinion[g * n + r]));
                    }
                }
            }
            if !witnesses.is_empty() {
                let total: f64 = witnesses.iter().map(|(t, _)| t).sum();
                score += witnesses.iter().map(|(t, o)| (t / total) * o).sum::<f64>();
                heard = true;
            }
        }
        Source::Private => unreachable!(),
    }
    heard.then_some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RepProtocol;

    fn homog(p: RepProtocol, seed: u64) -> f64 {
        let cfg = RepConfig::default();
        let u = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        u.iter().sum::<f64>() / u.len() as f64
    }

    #[test]
    fn baseline_community_shares() {
        // A cooperative population distributes most of its capacity:
        // mean utility per peer approaches mean capacity × rounds.
        let u = homog(RepProtocol::baseline(), 1);
        let cfg = RepConfig::default();
        assert!(u > 0.3 * 10.0 * cfg.rounds as f64, "utility {u}");
    }

    #[test]
    fn freerider_population_starves() {
        let mut p = RepProtocol::baseline();
        p.response = Response::Freeride;
        assert_eq!(homog(p, 2), 0.0);
    }

    #[test]
    fn deny_strangers_never_bootstraps() {
        // Everyone starts a stranger to everyone; universal Deny means
        // no first service ever flows, so reputation can never form.
        let mut p = RepProtocol::baseline();
        p.stranger = Stranger::Deny;
        assert_eq!(homog(p, 3), 0.0);
    }

    #[test]
    fn whitewashing_hurts_a_threshold_community() {
        // In a ThresholdBan community, shedding one's record resets the
        // earned score that service depends on.
        let mut stable = RepProtocol::baseline();
        stable.response = Response::ThresholdBan;
        let mut washer = stable;
        washer.identity = Identity::Whitewash;
        let cfg = RepConfig::default();
        let protos = [stable, washer];
        // Half the population whitewashes.
        let assignment: Vec<usize> = (0..cfg.peers)
            .map(|i| usize::from(i >= cfg.peers / 2))
            .collect();
        let u = run(&protos, &assignment, &cfg, 4);
        let mean = |g: usize| {
            let xs: Vec<f64> = u
                .iter()
                .zip(&assignment)
                .filter(|(_, a)| **a == g)
                .map(|(x, _)| *x)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean(0) > mean(1),
            "stable {} vs whitewash {}",
            mean(0),
            mean(1)
        );
    }

    #[test]
    fn reputation_starves_freeriders_relative_to_servers() {
        let cfg = RepConfig::default();
        let server = RepProtocol::baseline();
        let mut freerider = server;
        freerider.response = Response::Freeride;
        let protos = [server, freerider];
        let split = (3 * cfg.peers) / 4;
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= split)).collect();
        let u = run(&protos, &assignment, &cfg, 5);
        let servers = u[..split].iter().sum::<f64>() / split as f64;
        let riders = u[split..].iter().sum::<f64>() / (cfg.peers - split) as f64;
        assert!(servers > 2.0 * riders, "servers {servers} riders {riders}");
    }

    #[test]
    fn eigentrust_community_sustains_service() {
        // Normalized transitive trust still bootstraps and sustains a
        // cooperative community.
        let mut p = RepProtocol::baseline();
        p.source = Source::EigenTrust;
        let u = homog(p, 21);
        let cfg = RepConfig::default();
        assert!(u > 0.3 * 10.0 * cfg.rounds as f64, "utility {u}");
    }

    #[test]
    fn eigentrust_normalization_changes_the_inference() {
        // The normalized and the capped (BarterCast) transitive sources
        // must actually produce different communities — the new level is
        // a distinct actualization, not an alias.
        let mut et = RepProtocol::baseline();
        et.source = Source::EigenTrust;
        let mut tr = RepProtocol::baseline();
        tr.source = Source::Transitive;
        assert_ne!(homog(et, 22), homog(tr, 22));
        // And it stays deterministic in the seed.
        assert_eq!(homog(et, 23), homog(et, 23));
    }

    #[test]
    fn churn_is_deterministic_and_non_destructive() {
        let cfg = RepConfig {
            churn: ChurnModel::PerRound { rate: 0.05 },
            ..RepConfig::default()
        };
        let p = RepProtocol::baseline();
        let a = run(&[p], &vec![0; cfg.peers], &cfg, 6);
        let b = run(&[p], &vec![0; cfg.peers], &cfg, 6);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x.is_finite() && x >= 0.0));
    }

    #[test]
    fn deterministic_in_seed_and_varies_across_seeds() {
        let p = RepProtocol::baseline();
        assert_eq!(homog(p, 9), homog(p, 9));
        assert_ne!(homog(p, 9), homog(p, 10));
    }

    #[test]
    fn conservation_total_received_bounded_by_capacity() {
        // No service from nowhere: total received ≤ total capacity
        // offered over the run (capacity ≤ 15 per peer per round).
        let cfg = RepConfig::default();
        let u = run(&[RepProtocol::baseline()], &vec![0; cfg.peers], &cfg, 11);
        let total: f64 = u.iter().sum();
        let ceiling = 15.0 * (cfg.peers * cfg.rounds) as f64;
        assert!(total <= ceiling + 1e-9, "total {total} ceiling {ceiling}");
    }
}
