//! Cycle-based simulator of a reputation-mediated sharing community.
//!
//! Each round every peer requests service from a few random peers; each
//! peer then divides its upload capacity among its incoming requesters
//! according to its protocol — scoring requesters through its reputation
//! *source*, aging records per its *maintenance* policy, bootstrapping
//! unknown requesters per its *stranger* policy and mapping scores to
//! service through its *response* function. Peers with the *whitewash*
//! identity policy periodically shed their accumulated record; churned
//! peers are replaced by fresh ones (reusing the slot) with empty records
//! on both sides. Utility = total service received, the
//! application-defined performance measure for this domain.

use crate::protocol::{Identity, Maintenance, RepProtocol, Response, Source, Stranger};
use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::churn::ChurnModel;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RepConfig {
    /// Number of peers.
    pub peers: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Requests each peer issues per round.
    pub requests: usize,
    /// Upload-capacity distribution (service units per round).
    pub capacity: BandwidthDist,
    /// Peer replacement process (whitewashing's blunt cousin).
    pub churn: ChurnModel,
    /// Peers consulted per decision by the Gossiped/Transitive sources.
    pub gossip_sources: usize,
    /// Rounds between identity resets for whitewashing peers.
    pub whitewash_period: usize,
    /// Per-round retention factor for [`Maintenance::Decay`].
    pub decay: f64,
    /// Window length in rounds for [`Maintenance::Window`].
    pub window: usize,
    /// Score a requester must strictly exceed under
    /// [`Response::ThresholdBan`].
    pub threshold: f64,
    /// Admission probability for [`Stranger::Probabilistic`].
    pub optimism: f64,
}

impl Default for RepConfig {
    fn default() -> Self {
        Self {
            // Dense enough that window-limited reciprocity can sustain
            // itself: a directed pair interacts ~3/23 of rounds, about
            // once per default window.
            peers: 24,
            rounds: 80,
            requests: 3,
            capacity: BandwidthDist::Uniform { lo: 5.0, hi: 15.0 },
            churn: ChurnModel::None,
            gossip_sources: 3,
            whitewash_period: 16,
            decay: 0.9,
            window: 8,
            threshold: 0.0,
            optimism: 0.5,
        }
    }
}

impl RepConfig {
    /// Reduced parameters for tests and tournament subsampling.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            peers: 16,
            rounds: 40,
            ..Self::default()
        }
    }
}

/// Per-peer reputation ledger: this peer's view of every other peer.
struct Ledger {
    /// Maintained opinion scores (service received from each peer, aged
    /// per the owner's maintenance policy).
    opinion: Vec<f64>,
    /// Current-round contributions, folded in at end of round.
    accum: Vec<f64>,
    /// Ring of the last `window` rounds' contributions (Window policy).
    ring: Vec<Vec<f64>>,
    /// Next ring slot to overwrite.
    ring_pos: usize,
    /// Whether the owner has ever interacted with each peer (in either
    /// direction) — peers never seen are *strangers*.
    seen: Vec<bool>,
}

impl Ledger {
    fn new(n: usize, window: usize) -> Self {
        Self {
            opinion: vec![0.0; n],
            accum: vec![0.0; n],
            ring: vec![vec![0.0; n]; window.max(1)],
            ring_pos: 0,
            seen: vec![false; n],
        }
    }

    /// Folds the round's contributions into the opinion vector.
    fn end_round(&mut self, maintenance: Maintenance, decay: f64) {
        match maintenance {
            Maintenance::Keep => {
                for (o, a) in self.opinion.iter_mut().zip(&self.accum) {
                    *o += a;
                }
            }
            Maintenance::Decay => {
                for (o, a) in self.opinion.iter_mut().zip(&self.accum) {
                    *o = *o * decay + a;
                }
            }
            Maintenance::Window => {
                let oldest = &mut self.ring[self.ring_pos];
                for ((o, a), old) in self.opinion.iter_mut().zip(&self.accum).zip(oldest) {
                    *o += a - *old;
                    *old = *a;
                }
                self.ring_pos = (self.ring_pos + 1) % self.ring.len();
            }
        }
        self.accum.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Erases every trace of peer `p` (whitewash / churn).
    fn forget(&mut self, p: usize) {
        self.opinion[p] = 0.0;
        self.accum[p] = 0.0;
        for slot in &mut self.ring {
            slot[p] = 0.0;
        }
        self.seen[p] = false;
    }

    /// Resets the whole ledger (the owner is a fresh peer).
    fn reset(&mut self) {
        let n = self.opinion.len();
        *self = Self::new(n, self.ring.len());
    }
}

/// One peer's mutable simulation state.
struct Peer {
    capacity: f64,
    ledger: Ledger,
    /// Total service received (the utility).
    received: f64,
}

/// Runs one reputation simulation; returns per-peer utilities.
///
/// Deterministic in `seed`: all randomness flows through one generator
/// consumed in fixed iteration order. Traced as a `rep.run` span with
/// `rep.{setup,rounds,payoff}` phase children when tracing is on.
///
/// # Panics
///
/// Panics if there are fewer than two peers or the assignment does not
/// cover every peer.
pub fn run(
    protocols: &[RepProtocol],
    assignment: &[usize],
    config: &RepConfig,
    seed: u64,
) -> Vec<f64> {
    let n = config.peers;
    assert!(n >= 2, "need at least two peers");
    assert_eq!(assignment.len(), n, "assignment must cover every peer");

    let _run_span = dsa_obs::span("rep.run");
    let setup_span = dsa_obs::span("rep.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut peers: Vec<Peer> = (0..n)
        .map(|_| Peer {
            capacity: config.capacity.sample(&mut rng),
            ledger: Ledger::new(n, config.window),
            received: 0.0,
        })
        .collect();

    // Request lists are rebuilt each round: requesters[s] holds the peers
    // that asked s for service this round, in deterministic order.
    let mut requesters: Vec<Vec<usize>> = vec![Vec::new(); n];
    drop(setup_span);

    let rounds_span = dsa_obs::span("rep.rounds");
    for round in 0..config.rounds {
        // 1. Every peer issues its requests to distinct random targets.
        for list in &mut requesters {
            list.clear();
        }
        for i in 0..n {
            for t in sampling::sample_indices(n - 1, config.requests, &mut rng) {
                let target = if t >= i { t + 1 } else { t };
                requesters[target].push(i);
            }
        }

        // 2. Every peer allocates its capacity among its requesters.
        // Grants are buffered and applied after all decisions, so every
        // decision sees the same start-of-round ledgers regardless of
        // peer iteration order.
        let mut grants: Vec<(usize, usize, f64)> = Vec::new();
        for s in 0..n {
            let proto = &protocols[assignment[s]];
            if proto.response == Response::Freeride || requesters[s].is_empty() {
                continue;
            }
            let weights = decision_weights(s, &requesters[s], proto, &peers, config, &mut rng);
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                continue;
            }
            for (&r, &w) in requesters[s].iter().zip(&weights) {
                if w > 0.0 {
                    grants.push((s, r, peers[s].capacity * w / total));
                }
            }
        }

        // 3. Apply grants: service flows server → requester; the
        // requester's opinion of the server grows; both sides are no
        // longer strangers to each other.
        for &(s, r, amount) in &grants {
            peers[r].received += amount;
            peers[r].ledger.accum[s] += amount;
            peers[r].ledger.seen[s] = true;
            peers[s].ledger.seen[r] = true;
        }

        // 4. Record maintenance.
        for i in 0..n {
            let m = protocols[assignment[i]].maintenance;
            peers[i].ledger.end_round(m, config.decay);
        }

        // 5. Whitewashing: the peer re-enters under a fresh pseudonym, so
        // everyone else's record of it vanishes; its own knowledge (and
        // accumulated utility) survives — that is the attack.
        if config.whitewash_period > 0 && (round + 1) % config.whitewash_period == 0 {
            for w in 0..n {
                if protocols[assignment[w]].identity == Identity::Whitewash {
                    for (i, peer) in peers.iter_mut().enumerate() {
                        if i != w {
                            peer.ledger.forget(w);
                        }
                    }
                }
            }
        }

        // 6. Churn: a replaced slot hosts a brand-new peer — empty
        // records on both sides, fresh capacity. Utility keeps
        // accumulating per slot (it measures the protocol's service
        // stream, as in the swarm engine).
        if !config.churn.is_none() {
            for p in 0..n {
                if config.churn.departs(f64::INFINITY, &mut rng) {
                    peers[p].capacity = config.capacity.sample(&mut rng);
                    peers[p].ledger.reset();
                    for (i, peer) in peers.iter_mut().enumerate() {
                        if i != p {
                            peer.ledger.forget(p);
                        }
                    }
                }
            }
        }
    }

    drop(rounds_span);

    let _payoff_span = dsa_obs::span("rep.payoff");
    peers.iter().map(|p| p.received).collect()
}

/// Computes the allocation weight of every requester of server `s`.
fn decision_weights(
    s: usize,
    requesters: &[usize],
    proto: &RepProtocol,
    peers: &[Peer],
    config: &RepConfig,
    rng: &mut Xoshiro256pp,
) -> Vec<f64> {
    // Score every requester through the protocol's reputation source;
    // None marks strangers (no record through any channel).
    let scores: Vec<Option<f64>> = requesters
        .iter()
        .map(|&r| source_score(s, r, proto.source, peers, config, rng))
        .collect();

    // Stranger policy: admitted strangers enter the response function at
    // the baseline score 0 with unit bootstrap weight.
    let admitted: Vec<Option<f64>> = scores
        .iter()
        .map(|score| match score {
            Some(v) => Some(*v),
            None => match proto.stranger {
                Stranger::Deny => None,
                Stranger::Optimistic => Some(0.0),
                Stranger::Probabilistic => rng.chance(config.optimism).then_some(0.0),
            },
        })
        .collect();

    match proto.response {
        Response::Freeride => vec![0.0; requesters.len()],
        Response::ThresholdBan => admitted
            .iter()
            .zip(&scores)
            .map(|(adm, known)| match (adm, known) {
                // Known requesters must beat the threshold; admitted
                // strangers ride on the bootstrap.
                (Some(v), Some(_)) => f64::from(u8::from(*v > config.threshold)),
                (Some(_), None) => 1.0,
                (None, _) => 0.0,
            })
            .collect(),
        Response::Proportional => admitted
            .iter()
            .zip(&scores)
            .map(|(adm, known)| match (adm, known) {
                (Some(v), Some(_)) => v.max(0.0),
                // Bootstrap trickle: strangers weigh one service unit.
                (Some(_), None) => 1.0,
                (None, _) => 0.0,
            })
            .collect(),
        Response::RankBased => {
            // Rank admitted requesters by score; the top half (rounded
            // up) shares capacity equally. Ties break randomly so no
            // index is systematically favoured (cf. gossip's
            // top_partners).
            let eligible: Vec<usize> = (0..requesters.len())
                .filter(|&k| admitted[k].is_some())
                .collect();
            let mut weights = vec![0.0; requesters.len()];
            if eligible.is_empty() {
                return weights;
            }
            let mut order = eligible.clone();
            sampling::shuffle(&mut order, rng);
            let values: Vec<f64> = order.iter().map(|&k| admitted[k].unwrap_or(0.0)).collect();
            let keep = eligible.len().div_ceil(2);
            for rank in sampling::rank_indices(&values, false)
                .into_iter()
                .take(keep)
            {
                weights[order[rank]] = 1.0;
            }
            weights
        }
    }
    .into_iter()
    .map(|w| if w.is_finite() { w } else { 0.0 })
    .collect()
}

/// Scores requester `r` from server `s`'s point of view, or `None` if
/// every consulted channel is silent (a stranger).
fn source_score(
    s: usize,
    r: usize,
    source: Source,
    peers: &[Peer],
    config: &RepConfig,
    rng: &mut Xoshiro256pp,
) -> Option<f64> {
    let own_seen = peers[s].ledger.seen[r];
    let own = peers[s].ledger.opinion[r];
    if source == Source::Private {
        return own_seen.then_some(own);
    }
    let n = peers.len();
    let mut score = if own_seen { own } else { 0.0 };
    let mut heard = own_seen;
    // EigenTrust witnesses are buffered as (trust in witness, witness's
    // opinion of r) and folded in after sampling, because the weights
    // normalize over the *total* trust in the consulted witnesses.
    let mut witnesses: Vec<(f64, f64)> = Vec::new();
    for g in sampling::sample_indices(n, config.gossip_sources, rng) {
        if g == s || g == r {
            continue;
        }
        if !peers[g].ledger.seen[r] {
            continue;
        }
        let opinion = peers[g].ledger.opinion[r];
        match source {
            // One-hop gossip: take the witness at face value.
            Source::Gossiped => {
                score += opinion;
                heard = true;
            }
            // BarterCast-style: a witness counts only up to the
            // trust the server places in the witness itself.
            Source::Transitive => {
                if peers[s].ledger.seen[g] {
                    score += opinion.min(peers[s].ledger.opinion[g].max(0.0));
                    heard = true;
                }
            }
            // EigenTrust-style: witnesses split one unit of influence
            // in proportion to the server's (non-negative) trust in
            // them; an untrusted witness carries no weight at all.
            Source::EigenTrust => {
                if peers[s].ledger.seen[g] {
                    let trust = peers[s].ledger.opinion[g].max(0.0);
                    if trust > 0.0 {
                        witnesses.push((trust, opinion));
                    }
                }
            }
            Source::Private => unreachable!(),
        }
    }
    if !witnesses.is_empty() {
        let total: f64 = witnesses.iter().map(|(t, _)| t).sum();
        score += witnesses.iter().map(|(t, o)| (t / total) * o).sum::<f64>();
        heard = true;
    }
    heard.then_some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RepProtocol;

    fn homog(p: RepProtocol, seed: u64) -> f64 {
        let cfg = RepConfig::default();
        let u = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        u.iter().sum::<f64>() / u.len() as f64
    }

    #[test]
    fn baseline_community_shares() {
        // A cooperative population distributes most of its capacity:
        // mean utility per peer approaches mean capacity × rounds.
        let u = homog(RepProtocol::baseline(), 1);
        let cfg = RepConfig::default();
        assert!(u > 0.3 * 10.0 * cfg.rounds as f64, "utility {u}");
    }

    #[test]
    fn freerider_population_starves() {
        let mut p = RepProtocol::baseline();
        p.response = Response::Freeride;
        assert_eq!(homog(p, 2), 0.0);
    }

    #[test]
    fn deny_strangers_never_bootstraps() {
        // Everyone starts a stranger to everyone; universal Deny means
        // no first service ever flows, so reputation can never form.
        let mut p = RepProtocol::baseline();
        p.stranger = Stranger::Deny;
        assert_eq!(homog(p, 3), 0.0);
    }

    #[test]
    fn whitewashing_hurts_a_threshold_community() {
        // In a ThresholdBan community, shedding one's record resets the
        // earned score that service depends on.
        let mut stable = RepProtocol::baseline();
        stable.response = Response::ThresholdBan;
        let mut washer = stable;
        washer.identity = Identity::Whitewash;
        let cfg = RepConfig::default();
        let protos = [stable, washer];
        // Half the population whitewashes.
        let assignment: Vec<usize> = (0..cfg.peers)
            .map(|i| usize::from(i >= cfg.peers / 2))
            .collect();
        let u = run(&protos, &assignment, &cfg, 4);
        let mean = |g: usize| {
            let xs: Vec<f64> = u
                .iter()
                .zip(&assignment)
                .filter(|(_, a)| **a == g)
                .map(|(x, _)| *x)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean(0) > mean(1),
            "stable {} vs whitewash {}",
            mean(0),
            mean(1)
        );
    }

    #[test]
    fn reputation_starves_freeriders_relative_to_servers() {
        let cfg = RepConfig::default();
        let server = RepProtocol::baseline();
        let mut freerider = server;
        freerider.response = Response::Freeride;
        let protos = [server, freerider];
        let split = (3 * cfg.peers) / 4;
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= split)).collect();
        let u = run(&protos, &assignment, &cfg, 5);
        let servers = u[..split].iter().sum::<f64>() / split as f64;
        let riders = u[split..].iter().sum::<f64>() / (cfg.peers - split) as f64;
        assert!(servers > 2.0 * riders, "servers {servers} riders {riders}");
    }

    #[test]
    fn eigentrust_community_sustains_service() {
        // Normalized transitive trust still bootstraps and sustains a
        // cooperative community.
        let mut p = RepProtocol::baseline();
        p.source = Source::EigenTrust;
        let u = homog(p, 21);
        let cfg = RepConfig::default();
        assert!(u > 0.3 * 10.0 * cfg.rounds as f64, "utility {u}");
    }

    #[test]
    fn eigentrust_normalization_changes_the_inference() {
        // The normalized and the capped (BarterCast) transitive sources
        // must actually produce different communities — the new level is
        // a distinct actualization, not an alias.
        let mut et = RepProtocol::baseline();
        et.source = Source::EigenTrust;
        let mut tr = RepProtocol::baseline();
        tr.source = Source::Transitive;
        assert_ne!(homog(et, 22), homog(tr, 22));
        // And it stays deterministic in the seed.
        assert_eq!(homog(et, 23), homog(et, 23));
    }

    #[test]
    fn churn_is_deterministic_and_non_destructive() {
        let cfg = RepConfig {
            churn: ChurnModel::PerRound { rate: 0.05 },
            ..RepConfig::default()
        };
        let p = RepProtocol::baseline();
        let a = run(&[p], &vec![0; cfg.peers], &cfg, 6);
        let b = run(&[p], &vec![0; cfg.peers], &cfg, 6);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x.is_finite() && x >= 0.0));
    }

    #[test]
    fn deterministic_in_seed_and_varies_across_seeds() {
        let p = RepProtocol::baseline();
        assert_eq!(homog(p, 9), homog(p, 9));
        assert_ne!(homog(p, 9), homog(p, 10));
    }

    #[test]
    fn conservation_total_received_bounded_by_capacity() {
        // No service from nowhere: total received ≤ total capacity
        // offered over the run (capacity ≤ 15 per peer per round).
        let cfg = RepConfig::default();
        let u = run(&[RepProtocol::baseline()], &vec![0; cfg.peers], &cfg, 11);
        let total: f64 = u.iter().sum();
        let ceiling = 15.0 * (cfg.peers * cfg.rounds) as f64;
        assert!(total <= ceiling + 1e-9, "total {total} ceiling {ceiling}");
    }
}
