//! A third DSA domain: reputation-mediated sharing communities.
//!
//! Section 7 lists applying Design Space Analysis to "domains other than
//! P2P [file swarming]" as future work. Reputation and trust systems are
//! the canonical third incentive mechanism in distributed systems — peers
//! decide whom to serve from accumulated records of past behaviour rather
//! than from tit-for-tat barter alone — and they bring their own attack
//! surface (free-riding *and* whitewashing, the shedding of a bad record
//! by re-entering under a fresh identity).
//!
//! This crate parameterizes that mechanism into five salient dimensions
//! ([`protocol`]): reputation *source* (private / gossiped / transitive
//! BarterCast-style / normalized-transitive EigenTrust-style), record
//! *maintenance* (keep / decay / window), *stranger* bootstrap (deny /
//! optimistic / probabilistic), *response* function (threshold ban /
//! proportional / rank-based / free-ride) and *identity* policy (stable /
//! whitewash) — 288 protocols — actualized
//! over a cycle-based request/serve simulator ([`engine`]) built on the
//! same deterministic substrate (`dsa_workloads`) as the other domains.
//! [`adapter::RepSim`] plugs the space into [`dsa_core`], so the PRA
//! quantification, tournament sampling and heuristic search run over it
//! unchanged — the point of the exercise: the framework is
//! domain-agnostic.

pub mod adapter;
pub mod engine;
pub mod presets;
pub mod protocol;

pub use adapter::{RepDomain, RepSim};
pub use engine::{run, RepConfig};
pub use protocol::{
    design_space, Identity, Maintenance, RepProtocol, Response, Source, Stranger, REP_SPACE_SIZE,
};
