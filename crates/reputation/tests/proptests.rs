//! Property-based tests of the reputation simulator's conservation laws
//! and the protocol-space encoding, mirroring the other domain crates.

use dsa_reputation::engine::{run, RepConfig};
use dsa_reputation::protocol::{RepProtocol, Response, Stranger, REP_SPACE_SIZE};
use dsa_workloads::bandwidth::BandwidthDist;
use proptest::prelude::*;

fn tiny_config() -> RepConfig {
    RepConfig {
        peers: 10,
        rounds: 20,
        capacity: BandwidthDist::Constant(6.0),
        ..RepConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: total service received never exceeds total offered
    /// capacity, and utilities are non-negative.
    #[test]
    fn no_service_from_nowhere(idx in 0usize..REP_SPACE_SIZE, seed in any::<u64>()) {
        let cfg = tiny_config();
        let p = RepProtocol::from_index(idx);
        let u = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        let total: f64 = u.iter().sum();
        prop_assert!(total <= (cfg.peers * cfg.rounds) as f64 * 6.0 + 1e-9);
        prop_assert!(u.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    /// Free-riding populations produce exactly zero flow, as do
    /// deny-strangers populations (nothing can ever bootstrap).
    #[test]
    fn dead_protocols_are_dead(idx in 0usize..REP_SPACE_SIZE, seed in any::<u64>()) {
        let p = RepProtocol::from_index(idx);
        prop_assume!(p.response == Response::Freeride || p.stranger == Stranger::Deny);
        let cfg = tiny_config();
        let u = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        prop_assert_eq!(u.iter().sum::<f64>(), 0.0);
    }

    /// The flat protocol index is a bijection onto the struct space.
    #[test]
    fn index_bijection(a in 0usize..REP_SPACE_SIZE, b in 0usize..REP_SPACE_SIZE) {
        prop_assume!(a != b);
        prop_assert_ne!(RepProtocol::from_index(a), RepProtocol::from_index(b));
    }

    /// Same seed ⇒ bit-identical runs, under churn and whitewashing.
    #[test]
    fn runs_are_reproducible(idx in 0usize..REP_SPACE_SIZE, seed in any::<u64>(), rate in 0.0f64..0.3) {
        let mut cfg = tiny_config();
        cfg.churn = dsa_workloads::churn::ChurnModel::PerRound { rate };
        let p = RepProtocol::from_index(idx);
        let a = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        let b = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        prop_assert_eq!(a, b);
    }

    /// Mixed populations: every peer's utility is finite and the group
    /// split covers the population.
    #[test]
    fn mixed_runs_are_well_formed(a in 0usize..REP_SPACE_SIZE, b in 0usize..REP_SPACE_SIZE, split in 1usize..9, seed in any::<u64>()) {
        let cfg = tiny_config();
        let protos = [RepProtocol::from_index(a), RepProtocol::from_index(b)];
        let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i >= split)).collect();
        let u = run(&protos, &assignment, &cfg, seed);
        prop_assert_eq!(u.len(), cfg.peers);
        prop_assert!(u.iter().all(|&x| x.is_finite() && x >= 0.0));
    }
}
