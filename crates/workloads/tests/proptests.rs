//! Property-based tests of the workload substrate.

use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::churn::ChurnModel;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling::weighted_choice;
use proptest::prelude::*;

proptest! {
    /// Piatek samples stay within the encoded support.
    #[test]
    fn piatek_support(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            let v = BandwidthDist::Piatek.sample(&mut rng);
            prop_assert!(v >= 40.0 / 8.0 - 1e-9);
            prop_assert!(v <= 40_000.0 / 8.0 + 1e-9);
        }
    }

    /// Quantiles are monotone for every built-in distribution.
    #[test]
    fn quantiles_monotone(q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        for dist in [
            BandwidthDist::Piatek,
            BandwidthDist::Constant(5.0),
            BandwidthDist::Uniform { lo: 1.0, hi: 9.0 },
            BandwidthDist::TwoClass { fast: 100.0, slow: 10.0, fast_fraction: 0.3 },
        ] {
            prop_assert!(dist.quantile(lo) <= dist.quantile(hi) + 1e-12);
        }
    }

    /// Stratified populations are deterministic, sorted and sized.
    #[test]
    fn stratified_properties(n in 1usize..200) {
        let a = BandwidthDist::Piatek.stratified_n(n);
        let b = BandwidthDist::Piatek.stratified_n(n);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Weighted choice only ever returns positive-weight indices.
    #[test]
    fn weighted_choice_valid(seed in any::<u64>(), weights in proptest::collection::vec(-1.0f64..5.0, 1..20)) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        match weighted_choice(&weights, &mut rng) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|&w| w.is_nan() || w <= 0.0)),
        }
    }

    /// Session churn draws are at least one round and scale with the
    /// requested mean.
    #[test]
    fn session_draws_sane(seed in any::<u64>(), mean in 0.1f64..500.0) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = ChurnModel::Session { mean_rounds: mean };
        for _ in 0..16 {
            let s = m.initial_session(&mut rng);
            prop_assert!(s >= 1.0);
            prop_assert!(s.is_finite());
        }
    }

    /// Forked RNG streams never mirror their parent over a window.
    #[test]
    fn fork_diverges(seed in any::<u64>()) {
        let mut parent = Xoshiro256pp::seed_from_u64(seed);
        let mut child = parent.fork();
        let same = (0..32).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(same < 4);
    }
}
