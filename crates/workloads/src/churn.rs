//! Peer churn (arrival/departure) models.
//!
//! The paper runs the whole-space performance sweep "under churn rates of
//! 0.01 and 0.1 per round" (§4.4) and finds the low-partner-count result is
//! stable. [`ChurnModel::PerRound`] implements exactly that process: each
//! round each peer is independently replaced with the given probability,
//! wiping its interaction history (a replacement is a *new* peer that
//! happens to reuse the slot).
//!
//! [`ChurnModel::Session`] is a session-length model for the piece-level
//! simulator: peers stay for an exponentially distributed number of rounds
//! and are then replaced. It is provided for fault-injection style stress
//! tests beyond the paper's sweep.

use crate::rng::Xoshiro256pp;

/// A churn process generating per-round replacement decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnModel {
    /// No churn; the population is static (the paper's default setting).
    None,
    /// Each peer is independently replaced each round with probability
    /// `rate` (the paper's §4.4 churn experiment; rates 0.01 and 0.1).
    PerRound {
        /// Per-peer, per-round replacement probability in `[0, 1]`.
        rate: f64,
    },
    /// Peers have exponentially distributed session lengths with the given
    /// mean (in rounds); a peer whose session expires is replaced.
    Session {
        /// Mean session length in rounds; must be positive.
        mean_rounds: f64,
    },
}

impl ChurnModel {
    /// Returns `true` if this model can never replace a peer.
    #[must_use]
    pub fn is_none(&self) -> bool {
        match self {
            Self::None => true,
            Self::PerRound { rate } => *rate <= 0.0,
            Self::Session { mean_rounds } => !mean_rounds.is_finite(),
        }
    }

    /// Draws an initial remaining-session length for a fresh peer.
    ///
    /// Only meaningful for [`ChurnModel::Session`]; other models return
    /// `f64::INFINITY` (the per-round decision is made by [`Self::departs`]).
    pub fn initial_session(&self, rng: &mut Xoshiro256pp) -> f64 {
        match self {
            Self::Session { mean_rounds } => rng.exponential(*mean_rounds).max(1.0),
            _ => f64::INFINITY,
        }
    }

    /// Decides whether a peer departs this round.
    ///
    /// `remaining_session` is the peer's session budget for
    /// [`ChurnModel::Session`] (decremented by the caller each round);
    /// it is ignored by the other variants.
    pub fn departs(&self, remaining_session: f64, rng: &mut Xoshiro256pp) -> bool {
        match self {
            Self::None => false,
            Self::PerRound { rate } => rng.chance(*rate),
            Self::Session { .. } => remaining_session <= 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_departs() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let m = ChurnModel::None;
        assert!(m.is_none());
        for _ in 0..1000 {
            assert!(!m.departs(0.0, &mut rng));
        }
    }

    #[test]
    fn per_round_rate_respected() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let m = ChurnModel::PerRound { rate: 0.1 };
        let n = 100_000;
        let gone = (0..n)
            .filter(|_| m.departs(f64::INFINITY, &mut rng))
            .count();
        let p = gone as f64 / n as f64;
        assert!((p - 0.1).abs() < 0.01, "p={p}");
    }

    #[test]
    fn per_round_zero_rate_is_none() {
        assert!(ChurnModel::PerRound { rate: 0.0 }.is_none());
        assert!(!ChurnModel::PerRound { rate: 0.01 }.is_none());
    }

    #[test]
    fn session_departs_on_exhaustion() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let m = ChurnModel::Session { mean_rounds: 10.0 };
        assert!(!m.departs(5.0, &mut rng));
        assert!(m.departs(0.0, &mut rng));
        assert!(m.departs(-1.0, &mut rng));
    }

    #[test]
    fn session_lengths_have_requested_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let m = ChurnModel::Session { mean_rounds: 20.0 };
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.initial_session(&mut rng)).sum::<f64>() / n as f64;
        // max(1.0) truncation raises the mean slightly above 20.
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn sessions_are_at_least_one_round() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let m = ChurnModel::Session { mean_rounds: 0.5 };
        for _ in 0..1000 {
            assert!(m.initial_session(&mut rng) >= 1.0);
        }
    }
}
