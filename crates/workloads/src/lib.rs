//! Workload substrate for the DSA reproduction.
//!
//! This crate provides the deterministic building blocks every simulator in
//! the workspace is built on:
//!
//! * [`rng`] — a small, portable, seed-stable PRNG (xoshiro256++ seeded via
//!   splitmix64). Experiment outputs are recorded artifacts; we need the
//!   stream to be identical across releases and platforms, which `rand`'s
//!   `StdRng` explicitly does not guarantee.
//! * [`seeds`] — hierarchical seed derivation so that every run / encounter /
//!   peer gets an independent, reproducible stream.
//! * [`bandwidth`] — upload-capacity distributions, including an empirical
//!   approximation of the measured BitTorrent host distribution of
//!   Piatek et al. (NSDI'07) that the paper initializes peers with.
//! * [`churn`] — peer arrival/departure processes (the paper's §4.4
//!   churn-rate experiments, and session dynamics for the piece-level
//!   simulator).
//! * [`sampling`] — shuffles, partial samples and weighted choice used by
//!   stranger policies, optimistic unchokes and tournament subsampling.

pub mod bandwidth;
pub mod churn;
pub mod rng;
pub mod sampling;
pub mod seeds;

pub use bandwidth::BandwidthDist;
pub use churn::ChurnModel;
pub use rng::Xoshiro256pp;
pub use seeds::SeedSeq;
