//! Upload-capacity distributions for peer populations.
//!
//! The paper initializes the cycle simulator and the BitTorrent validation
//! experiments "using the bandwidth distribution provided by Piatek et
//! al." — the measured upload capacities of BitTorrent hosts from *Do
//! incentives build robustness in BitTorrent?* (NSDI'07). We do not have the
//! raw trace, so [`BandwidthDist::Piatek`] encodes a piecewise log-linear
//! approximation of the published CDF (see `DESIGN.md` §3): a long-tailed
//! distribution where most hosts upload a few tens of KiB/s and a small
//! fraction uploads two orders of magnitude more. Every effect the paper
//! derives from the distribution (bandwidth classes, opportunity-cost
//! asymmetries between fast and slow peers) depends only on this shape.
//!
//! All values are in KiB per time unit (KiB/round in the cycle simulator,
//! KiB/s in the piece-level simulator).

use crate::rng::Xoshiro256pp;

/// Approximate percentiles of the Piatek et al. NSDI'07 upload-capacity
/// measurement, as (cumulative probability, capacity in kbit/s) pairs.
///
/// The curve is interpolated log-linearly between entries; this reproduces
/// the published median (~350 kbit/s) and the heavy tail up to tens of
/// Mbit/s.
const PIATEK_CDF_KBPS: &[(f64, f64)] = &[
    (0.00, 40.0),
    (0.05, 64.0),
    (0.10, 128.0),
    (0.20, 256.0),
    (0.35, 320.0),
    (0.50, 350.0),
    (0.60, 512.0),
    (0.70, 900.0),
    (0.80, 1500.0),
    (0.90, 3000.0),
    (0.95, 5000.0),
    (0.99, 10_000.0),
    (1.00, 40_000.0),
];

const KBIT_TO_KIB: f64 = 1.0 / 8.0;

/// A distribution of peer upload capacities.
#[derive(Debug, Clone, PartialEq)]
pub enum BandwidthDist {
    /// Every peer has the same capacity.
    Constant(f64),
    /// Uniform between `lo` and `hi`.
    Uniform {
        /// Lower bound (inclusive), KiB per time unit.
        lo: f64,
        /// Upper bound (exclusive), KiB per time unit.
        hi: f64,
    },
    /// Two bandwidth classes, the setting of the paper's Section 2 analysis.
    TwoClass {
        /// Capacity of the fast class.
        fast: f64,
        /// Capacity of the slow class.
        slow: f64,
        /// Fraction of peers in the fast class, in `[0, 1]`.
        fast_fraction: f64,
    },
    /// The empirical Piatek et al. NSDI'07 approximation (see module docs).
    Piatek,
    /// An arbitrary empirical CDF given as (cumulative probability, value)
    /// pairs; interpolated linearly. Probabilities must be increasing and
    /// span 0.0..=1.0.
    Empirical(Vec<(f64, f64)>),
}

impl BandwidthDist {
    /// Draws one capacity.
    ///
    /// Returned values are strictly positive for all built-in variants as
    /// long as the variant parameters are positive.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        match self {
            Self::Constant(v) => *v,
            Self::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Self::TwoClass {
                fast,
                slow,
                fast_fraction,
            } => {
                if rng.chance(*fast_fraction) {
                    *fast
                } else {
                    *slow
                }
            }
            Self::Piatek => piatek_quantile(rng.next_f64()),
            Self::Empirical(table) => empirical_quantile(table, rng.next_f64(), false),
        }
    }

    /// The quantile function (inverse CDF) at cumulative probability `q`,
    /// clamped to `[0, 1]`.
    ///
    /// For [`BandwidthDist::TwoClass`] the quantile is the slow capacity for
    /// `q` below the slow fraction and the fast capacity above it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        match self {
            Self::Constant(v) => *v,
            Self::Uniform { lo, hi } => lo + (hi - lo) * q,
            Self::TwoClass {
                fast,
                slow,
                fast_fraction,
            } => {
                if q < 1.0 - fast_fraction {
                    *slow
                } else {
                    *fast
                }
            }
            Self::Piatek => piatek_quantile(q),
            Self::Empirical(table) => empirical_quantile(table, q, false),
        }
    }

    /// Draws capacities for a whole population.
    pub fn sample_n(&self, n: usize, rng: &mut Xoshiro256pp) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Deterministic population: the i-th of n peers gets the
    /// `(i + 0.5) / n` quantile. Useful for variance-free comparisons where
    /// only the protocol under test should differ between runs.
    #[must_use]
    pub fn stratified_n(&self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .collect()
    }
}

/// Quantile of the Piatek approximation, converted to KiB per time unit.
fn piatek_quantile(q: f64) -> f64 {
    empirical_quantile(PIATEK_CDF_KBPS, q, true) * KBIT_TO_KIB
}

/// Interpolates an empirical CDF table at cumulative probability `q`.
///
/// With `log_interp` the value axis is interpolated in log space, which is
/// the natural scale for capacity distributions spanning three decades.
fn empirical_quantile(table: &[(f64, f64)], q: f64, log_interp: bool) -> f64 {
    assert!(
        table.len() >= 2,
        "empirical CDF needs at least two points, got {}",
        table.len()
    );
    let q = q.clamp(0.0, 1.0);
    let mut prev = table[0];
    for &cur in &table[1..] {
        debug_assert!(cur.0 >= prev.0, "CDF probabilities must be nondecreasing");
        if q <= cur.0 {
            let span = cur.0 - prev.0;
            let t = if span <= 0.0 {
                1.0
            } else {
                (q - prev.0) / span
            };
            return if log_interp {
                (prev.1.ln() + t * (cur.1.ln() - prev.1.ln())).exp()
            } else {
                prev.1 + t * (cur.1 - prev.1)
            };
        }
        prev = cur;
    }
    table[table.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(1)
    }

    #[test]
    fn constant_is_constant() {
        let d = BandwidthDist::Constant(50.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 50.0);
        }
        assert_eq!(d.quantile(0.3), 50.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = BandwidthDist::Uniform { lo: 10.0, hi: 20.0 };
        let mut r = rng();
        let xs = d.sample_n(50_000, &mut r);
        assert!(xs.iter().all(|&x| (10.0..20.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 15.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn two_class_fractions() {
        let d = BandwidthDist::TwoClass {
            fast: 100.0,
            slow: 10.0,
            fast_fraction: 0.25,
        };
        let mut r = rng();
        let xs = d.sample_n(40_000, &mut r);
        let fast = xs.iter().filter(|&&x| x == 100.0).count();
        let frac = fast as f64 / xs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert!(xs.iter().all(|&x| x == 100.0 || x == 10.0));
    }

    #[test]
    fn two_class_quantile_split() {
        let d = BandwidthDist::TwoClass {
            fast: 100.0,
            slow: 10.0,
            fast_fraction: 0.2,
        };
        assert_eq!(d.quantile(0.5), 10.0);
        assert_eq!(d.quantile(0.9), 100.0);
    }

    #[test]
    fn piatek_median_matches_published() {
        // Published median ~350 kbit/s = 43.75 KiB/s.
        let med = BandwidthDist::Piatek.quantile(0.5);
        assert!((med - 350.0 / 8.0).abs() < 1.0, "median {med}");
    }

    #[test]
    fn piatek_is_long_tailed() {
        let d = BandwidthDist::Piatek;
        let p10 = d.quantile(0.10);
        let p99 = d.quantile(0.99);
        assert!(
            p99 / p10 > 50.0,
            "tail ratio too small: p10={p10} p99={p99}"
        );
    }

    #[test]
    fn piatek_quantile_monotone() {
        let d = BandwidthDist::Piatek;
        let mut last = 0.0;
        for i in 0..=100 {
            let v = d.quantile(i as f64 / 100.0);
            assert!(v >= last, "quantile not monotone at {i}");
            last = v;
        }
    }

    #[test]
    fn piatek_samples_positive_and_bounded() {
        let d = BandwidthDist::Piatek;
        let mut r = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!(v > 0.0);
            assert!(v <= 40_000.0 / 8.0);
        }
    }

    #[test]
    fn stratified_population_is_sorted_and_deterministic() {
        let d = BandwidthDist::Piatek;
        let a = d.stratified_n(50);
        let b = d.stratified_n(50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn empirical_linear_interpolation() {
        let d = BandwidthDist::Empirical(vec![(0.0, 0.0), (1.0, 10.0)]);
        assert!((d.quantile(0.25) - 2.5).abs() < 1e-12);
        assert!((d.quantile(1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let d = BandwidthDist::Piatek;
        assert_eq!(d.quantile(-0.5), d.quantile(0.0));
        assert_eq!(d.quantile(1.5), d.quantile(1.0));
    }
}
