//! Portable, seed-stable pseudo-random number generation.
//!
//! The simulators in this workspace are *measurement instruments*: their
//! outputs are recorded in `EXPERIMENTS.md` and compared against the paper.
//! That makes stream stability a correctness property — re-running an
//! experiment with the same seed must yield bit-identical traces on any
//! platform and any future version of this workspace. We therefore pin the
//! generator to a fixed, published algorithm (xoshiro256++ by Blackman &
//! Vigna) with a fixed seeding procedure (splitmix64) instead of depending
//! on an external crate whose stream may change between releases.
//!
//! xoshiro256++ is not cryptographically secure; it is a simulation PRNG
//! with a 2^256 − 1 period, excellent statistical quality (passes BigCrush)
//! and a ~1 ns step, which matters here because a full PRA sweep draws on
//! the order of 10^9 variates.

/// One step of the splitmix64 generator.
///
/// Splitmix64 is used (a) to expand a 64-bit seed into the 256-bit state of
/// [`Xoshiro256pp`] — the construction recommended by the xoshiro authors —
/// and (b) by [`crate::seeds::SeedSeq`] to derive independent child seeds.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use dsa_workloads::rng::Xoshiro256pp;
///
/// let mut rng = Xoshiro256pp::seed_from_u64(42);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
///
/// // Same seed, same stream: the property every experiment relies on.
/// let mut rng2 = Xoshiro256pp::seed_from_u64(42);
/// assert_eq!(rng2.next_f64(), x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a full 256-bit state.
    ///
    /// The state must not be all zeroes (the all-zero state is a fixed
    /// point); if it is, a fixed non-zero fallback state is substituted.
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            // Derived from seed_from_u64(0); any non-zero state works.
            Self::seed_from_u64(0)
        } else {
            Self { s: state }
        }
    }

    /// Seeds the 256-bit state from a 64-bit seed by running splitmix64,
    /// as recommended by the xoshiro reference implementation.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Returns the next 64 uniformly distributed random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 is the spacing of doubles in [0.5, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias,
    /// using Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            // Rejection zone: 2^64 mod bound.
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used by session-length churn models. Returns `f64::INFINITY` if the
    /// mean is infinite, and `0.0` for non-positive means.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if mean.is_infinite() {
            return f64::INFINITY;
        }
        // Inverse-CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Forks an independent generator.
    ///
    /// The child state is derived by running splitmix64 over fresh output of
    /// `self`, so child streams are statistically independent of the parent
    /// continuation as well as of each other.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        let mut sm = self.next_u64();
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector for splitmix64 with seed 1234567, from the public
    /// domain reference implementation by Sebastiano Vigna.
    #[test]
    fn splitmix64_reference_vector() {
        let mut state = 1234567u64;
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(splitmix64(&mut state), e);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn golden_stream_seed_42() {
        // Regression pin: if this test ever fails, the PRNG stream changed
        // and every recorded experiment output is invalidated.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                15021278609987233951u64,
                5881210131331364753,
                18149643915985481100,
                12933668939759105464,
            ]
        );
        // Cross-check the seeding path: state must equal four splitmix64
        // outputs of the seed.
        let mut sm = 42u64;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        let mut reference = Xoshiro256pp::from_state(state);
        let mut fresh = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(reference.next_u64(), fresh.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_close_to_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_small_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[rng.below(3) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 3.0;
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        for bound in [1u64, 2, 7, 50, 1000] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.below(0);
    }

    #[test]
    fn range_u64_inclusive() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_u64(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_edge_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-3.0), 0.0);
        assert_eq!(rng.exponential(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256pp::seed_from_u64(37);
        let mut child_a = parent.fork();
        let mut child_b = parent.fork();
        let a: Vec<u64> = (0..32).map(|_| child_a.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| child_b.next_u64()).collect();
        let p: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(a, p);
        assert_ne!(b, p);
    }

    #[test]
    fn zero_state_is_replaced() {
        let mut rng = Xoshiro256pp::from_state([0; 4]);
        // Would be stuck at 0 forever if the guard were missing.
        assert_ne!(rng.next_u64() | rng.next_u64(), 0);
    }
}
