//! Sampling primitives shared by the simulators and the tournament driver.
//!
//! These are the operations that appear in protocol inner loops — picking
//! random strangers to optimistically unchoke, shuffling candidate lists for
//! the Random ranking function, subsampling tournament opponents — so they
//! are implemented directly on [`Xoshiro256pp`] streams to keep the hot path
//! allocation-light and deterministic.

use crate::rng::Xoshiro256pp;
use std::cmp::Ordering;

/// Fisher–Yates shuffle in place.
pub fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256pp) {
    for i in (1..items.len()).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices uniformly from `0..n` (partial Fisher–Yates).
///
/// Returns fewer than `k` indices if `k > n`. The result order is random.
/// Allocating convenience wrapper around [`sample_indices_into`].
pub fn sample_indices(n: usize, k: usize, rng: &mut Xoshiro256pp) -> Vec<usize> {
    // Capacity matches what `sample_indices_into` needs on each branch,
    // so the wrapper costs exactly one allocation (as the original did).
    let mut out = Vec::with_capacity(if k.min(n) * 8 < n { k.min(n) } else { n });
    sample_indices_into(n, k, rng, &mut out);
    out
}

/// [`sample_indices`] writing into a caller-owned buffer (`out` is cleared
/// first), so engine round loops can reuse one buffer across calls.
///
/// Consumes the RNG stream identically to [`sample_indices`] — same branch
/// selection, same draw order — so the two are bit-interchangeable.
pub fn sample_indices_into(n: usize, k: usize, rng: &mut Xoshiro256pp, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(n);
    if k == 0 {
        return;
    }
    // k = 1 degenerates to a single draw on *both* branches below: Floyd's
    // sole iteration is `rng.index(n)` into an empty buffer (the shuffle of
    // one element draws nothing), and the materialize branch's sole swap
    // puts `rng.index(n)` at the front. Same draw, same result.
    if k == 1 {
        out.push(rng.index(n));
        return;
    }
    // For small k relative to n, Floyd's algorithm avoids materializing 0..n.
    if k * 8 < n {
        for j in (n - k)..n {
            let t = rng.index(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        shuffle(out, rng);
    } else if k <= SMALL_K {
        small_materialize(n, k, rng, out);
    } else {
        out.reserve(n);
        out.extend(0..n);
        for i in 0..k {
            let j = i + rng.index(n - i);
            out.swap(i, j);
        }
        out.truncate(k);
    }
}

/// Largest `k` the register-resident materialize path handles.
const SMALL_K: usize = 4;

/// The materialize branch of [`sample_indices_into`] for `k ≤ SMALL_K`,
/// simulating the partial Fisher–Yates over the identity permutation in
/// a stack-resident displacement map instead of a heap array. Each swap
/// touches at most two positions, so at most `2k` entries ever deviate
/// from identity — and position `i` is final right after swap `i` (later
/// swaps only touch positions `> i`). Same draws, same output bits.
#[inline]
fn small_materialize(n: usize, k: usize, rng: &mut Xoshiro256pp, out: &mut Vec<usize>) {
    debug_assert!((2..=SMALL_K).contains(&k) && k <= n);
    // k = 2 and k = 3 (the engines' request/gossip fan-outs) unroll to
    // closed-form collision checks — entirely register-resident, and the
    // collision branches are almost-always-false for n ≫ k.
    if k == 2 {
        let j0 = rng.index(n);
        let j1 = 1 + rng.index(n - 1);
        out.push(j0);
        out.push(if j1 == j0 { 0 } else { j1 });
        return;
    }
    if k == 3 {
        let j0 = rng.index(n);
        let j1 = 1 + rng.index(n - 1);
        let j2 = 2 + rng.index(n - 2);
        // perm[1] before the second swap: displaced iff the first swap
        // hit position 1.
        let v1 = if j0 == 1 { 0 } else { 1 };
        out.push(j0);
        out.push(if j1 == j0 { 0 } else { j1 });
        out.push(if j2 == j1 {
            v1
        } else if j2 == j0 {
            0
        } else {
            j2
        });
        return;
    }
    let mut pos = [usize::MAX; 2 * SMALL_K];
    let mut val = [0usize; 2 * SMALL_K];
    let mut len = 0;
    for i in 0..k {
        let j = i + rng.index(n - i);
        // vi = perm[i], vj = perm[j] under the displacement map.
        let mut vi = i;
        let mut vj = j;
        let mut slot_j = usize::MAX;
        for t in 0..len {
            if pos[t] == i {
                vi = val[t];
            }
            if pos[t] == j {
                vj = val[t];
                slot_j = t;
            }
        }
        // perm.swap(i, j): position i is never read again, so only the
        // j side needs recording (as identity when j == i).
        if j != i {
            if slot_j == usize::MAX {
                pos[len] = j;
                val[len] = vi;
                len += 1;
            } else {
                val[slot_j] = vi;
            }
        }
        out.push(vj);
    }
}

/// Reusable state making [`sample_indices_into`] allocation-free *and*
/// O(k) on its materialize branch: the identity permutation that branch
/// rebuilds from scratch each call is kept alive across calls, the same
/// partial Fisher–Yates swaps are applied to it, and then un-applied in
/// reverse once the sample is copied out. Same RNG draw order, same
/// output bits, no per-call `0..n` fill (except when `n` changes).
#[derive(Debug, Default)]
pub struct IndexSampler {
    perm: Vec<usize>,
    swaps: Vec<usize>,
}

impl IndexSampler {
    /// Creates an empty sampler; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes held by the sampler's buffers (capacities, not
    /// lengths) — rolled up into the owning scratch's `footprint()`.
    /// Computed inline so this crate stays dependency-free.
    #[must_use]
    pub fn footprint(&self) -> usize {
        (self.perm.capacity() + self.swaps.capacity()) * std::mem::size_of::<usize>()
    }

    /// Bit-identical to [`sample_indices_into`]: same branch selection,
    /// same draws, same result — engine round loops that sample with a
    /// stable `n` get O(k) calls with zero steady-state allocations.
    pub fn sample_into(
        &mut self,
        n: usize,
        k: usize,
        rng: &mut Xoshiro256pp,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let k = k.min(n);
        if k == 0 {
            return;
        }
        if k == 1 {
            out.push(rng.index(n));
            return;
        }
        if k * 8 < n {
            // Floyd branch: already O(k), delegate verbatim.
            for j in (n - k)..n {
                let t = rng.index(j + 1);
                if out.contains(&t) {
                    out.push(j);
                } else {
                    out.push(t);
                }
            }
            shuffle(out, rng);
        } else if k <= SMALL_K {
            // Register-resident path needs no persistent permutation.
            small_materialize(n, k, rng, out);
        } else {
            if self.perm.len() != n {
                self.perm.clear();
                self.perm.extend(0..n);
            }
            self.swaps.clear();
            for i in 0..k {
                let j = i + rng.index(n - i);
                self.perm.swap(i, j);
                self.swaps.push(j);
            }
            out.extend_from_slice(&self.perm[..k]);
            // Undo the swaps in reverse: `perm` is the identity again.
            for (i, &j) in self.swaps.iter().enumerate().rev() {
                self.perm.swap(i, j);
            }
        }
    }
}

/// Chooses one element uniformly; `None` on an empty slice.
pub fn choose<'a, T>(items: &'a [T], rng: &mut Xoshiro256pp) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.index(items.len())])
    }
}

/// Chooses an index with probability proportional to `weights[i]`.
///
/// Non-finite and negative weights are treated as zero. Returns `None` if
/// the weights are empty or all (effectively) zero.
pub fn weighted_choice(weights: &[f64], rng: &mut Xoshiro256pp) -> Option<usize> {
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let total: f64 = weights.iter().copied().map(clean).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.next_f64() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        let w = clean(w);
        if w > 0.0 {
            last_positive = Some(i);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack: fall back to the last positive-weight index.
    last_positive
}

/// Sorts indices `0..values.len()` by `values` with a deterministic
/// tie-break (index order), ascending or descending.
///
/// The simulators rank peers by observed transfer amounts; ties are common
/// (e.g. many 0-transfers) and the tie-break must not depend on allocation
/// addresses or hash ordering, or runs stop being reproducible.
#[must_use]
pub fn rank_indices(values: &[f64], ascending: bool) -> Vec<usize> {
    let mut idx = Vec::with_capacity(values.len());
    rank_indices_into(values, ascending, &mut idx);
    idx
}

/// Rank comparator shared by [`rank_indices_into`] and [`top_k_into`]:
/// value order (flipped when descending), ties broken by index. On finite
/// values (the only thing the engines rank) this is a strict total order —
/// `Equal` only when `a == b` — which is why an unstable sort and a
/// partial top-k selection both reproduce the stable full sort bit-for-bit.
#[inline]
fn rank_cmp(values: &[f64], ascending: bool, a: usize, b: usize) -> Ordering {
    let ord = values[a].partial_cmp(&values[b]).unwrap_or(Ordering::Equal);
    let ord = if ascending { ord } else { ord.reverse() };
    ord.then(a.cmp(&b))
}

/// [`rank_indices`] writing into a caller-owned buffer (`out` is cleared
/// first). Uses an unstable sort — no merge-buffer allocation — which is
/// output-identical to the stable sort because the comparator is a strict
/// total order (index tie-break).
pub fn rank_indices_into(values: &[f64], ascending: bool, out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..values.len());
    out.sort_unstable_by(|&a, &b| rank_cmp(values, ascending, a, b));
}

/// Writes the first `min(k, values.len())` entries of the full
/// [`rank_indices`] ordering into `out` (cleared first), without sorting
/// the rest. Engines that only consume `order.iter().take(k)` use this to
/// replace an O(n log n) full sort with an O(n·k) insertion selection.
///
/// Candidates are scanned in increasing index order and ties never
/// displace an earlier (lower-index) entry, so the result is bit-identical
/// to the full-sort prefix under the shared tie-break.
pub fn top_k_into(values: &[f64], ascending: bool, k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(values.len());
    if k == 0 {
        return;
    }
    out.reserve(k);
    for c in 0..values.len() {
        if out.len() == k {
            // Fast path: not better than the current worst — skip.
            if rank_cmp(values, ascending, c, out[k - 1]) != Ordering::Less {
                continue;
            }
            out.pop();
        }
        let pos = out.partition_point(|&e| rank_cmp(values, ascending, e, c) == Ordering::Less);
        out.insert(pos, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(123)
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_uniformity_spot_check() {
        // Position of element 0 after shuffling [0,1,2] should be uniform.
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut v = [0, 1, 2];
            shuffle(&mut v, &mut r);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_handles_trivial_sizes() {
        let mut r = rng();
        let mut empty: Vec<u8> = vec![];
        shuffle(&mut empty, &mut r);
        let mut one = vec![7u8];
        shuffle(&mut one, &mut r);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng();
        for (n, k) in [
            (50, 3),
            (50, 50),
            (10, 0),
            (1000, 5),
            (4, 10),
            (9, 1),
            (1000, 1),
        ] {
            let s = sample_indices(n, k, &mut r);
            assert_eq!(s.len(), k.min(n));
            let set: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(set.len(), s.len(), "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_covers_all_elements() {
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            for i in sample_indices(20, 2, &mut r) {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn sample_indices_floyd_path_uniform() {
        // n=1000, k=3 exercises the Floyd branch; element 0 should appear
        // with probability 3/1000.
        let mut r = rng();
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| sample_indices(1000, 3, &mut r).contains(&0))
            .count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.003).abs() < 0.0008, "p={p}");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = rng();
        let empty: [u8; 0] = [];
        assert!(choose(&empty, &mut r).is_none());
        assert_eq!(choose(&[42], &mut r), Some(&42));
    }

    #[test]
    fn weighted_choice_proportional() {
        let mut r = rng();
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_choice(&weights, &mut r).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0);
        let p1 = f64::from(counts[1]) / f64::from(n);
        assert!((p1 - 0.3).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn weighted_choice_rejects_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_choice(&[], &mut r), None);
        assert_eq!(weighted_choice(&[0.0, 0.0], &mut r), None);
        assert_eq!(weighted_choice(&[-1.0, f64::NAN], &mut r), None);
        assert_eq!(weighted_choice(&[0.0, 5.0], &mut r), Some(1));
    }

    #[test]
    fn rank_indices_orders_and_breaks_ties_by_index() {
        let vals = [3.0, 1.0, 3.0, 2.0];
        assert_eq!(rank_indices(&vals, true), vec![1, 3, 0, 2]);
        assert_eq!(rank_indices(&vals, false), vec![0, 2, 3, 1]);
    }

    #[test]
    fn rank_indices_handles_nan_without_panicking() {
        let vals = [f64::NAN, 1.0, 0.5];
        let idx = rank_indices(&vals, true);
        assert_eq!(idx.len(), 3);
        let set: HashSet<usize> = idx.into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn sample_indices_into_matches_wrapper_on_both_branches() {
        // Same seed, same draws: the buffer variant must replicate the
        // allocating variant bit-for-bit on the Floyd branch (k*8 < n)
        // and the materialize branch.
        for (n, k) in [(1000, 3), (50, 3), (50, 30), (10, 10), (7, 0), (4, 9)] {
            let mut r1 = rng();
            let mut r2 = rng();
            let a = sample_indices(n, k, &mut r1);
            let mut b = vec![99; 64]; // dirty buffer
            sample_indices_into(n, k, &mut r2, &mut b);
            assert_eq!(a, b, "n={n} k={k}");
            assert_eq!(r1.next_u64(), r2.next_u64(), "stream diverged n={n} k={k}");
        }
    }

    #[test]
    fn index_sampler_matches_sample_indices_across_calls() {
        // One sampler reused across branch switches, n switches and
        // repeated calls must replicate the plain function bit-for-bit
        // (the permutation un-swap has to actually restore the identity).
        let mut r1 = rng();
        let mut r2 = rng();
        let mut sampler = IndexSampler::new();
        let mut out = Vec::new();
        for (n, k) in [
            (23, 3),
            (24, 3),
            (23, 3),
            (1000, 3),
            (23, 23),
            (24, 1),
            (5, 0),
            (24, 3),
        ] {
            let expect = sample_indices(n, k, &mut r1);
            sampler.sample_into(n, k, &mut r2, &mut out);
            assert_eq!(out, expect, "n={n} k={k}");
            assert_eq!(r1.next_u64(), r2.next_u64(), "stream diverged n={n} k={k}");
        }
    }

    #[test]
    fn small_materialize_matches_reference_partial_fisher_yates() {
        // Every (n, k) here takes the materialize branch (k*8 >= n,
        // k >= 2); the register-resident small-k path must reproduce the
        // heap-permutation algorithm it replaced, draw for draw.
        for &(n, k) in &[
            (24usize, 3usize),
            (23, 3),
            (8, 2),
            (2, 2),
            (3, 3),
            (4, 3),
            (10, 4),
            (4, 4),
            (24, 4),
        ] {
            let mut r1 = rng();
            let mut r2 = rng();
            let mut perm: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + r1.index(n - i);
                perm.swap(i, j);
            }
            perm.truncate(k);
            let mut out = Vec::new();
            sample_indices_into(n, k, &mut r2, &mut out);
            assert_eq!(out, perm, "n={n} k={k}");
            assert_eq!(r1.next_u64(), r2.next_u64(), "stream diverged n={n} k={k}");
        }
    }

    #[test]
    fn rank_indices_into_matches_wrapper() {
        let vals = [3.0, 1.0, 3.0, 2.0, -1.0, 3.0];
        for asc in [true, false] {
            let mut out = vec![7usize; 2]; // dirty buffer
            rank_indices_into(&vals, asc, &mut out);
            assert_eq!(out, rank_indices(&vals, asc));
        }
    }

    #[test]
    fn top_k_prefix_equals_full_sort_prefix() {
        // Random-ish values with deliberate ties; every k must reproduce
        // the full ranking's prefix exactly, including tie order.
        let mut r = rng();
        let vals: Vec<f64> = (0..40).map(|_| f64::from(r.index(8) as u32)).collect();
        for asc in [true, false] {
            let full = rank_indices(&vals, asc);
            for k in [0, 1, 2, 5, 39, 40, 41] {
                let mut out = vec![3usize; 3]; // dirty buffer
                top_k_into(&vals, asc, k, &mut out);
                assert_eq!(out, full[..k.min(vals.len())], "asc={asc} k={k}");
            }
        }
    }

    #[test]
    fn top_k_into_trivial_inputs() {
        let mut out = vec![1usize; 4];
        top_k_into(&[], true, 3, &mut out);
        assert!(out.is_empty());
        top_k_into(&[5.0], false, 0, &mut out);
        assert!(out.is_empty());
    }
}
