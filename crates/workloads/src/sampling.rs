//! Sampling primitives shared by the simulators and the tournament driver.
//!
//! These are the operations that appear in protocol inner loops — picking
//! random strangers to optimistically unchoke, shuffling candidate lists for
//! the Random ranking function, subsampling tournament opponents — so they
//! are implemented directly on [`Xoshiro256pp`] streams to keep the hot path
//! allocation-light and deterministic.

use crate::rng::Xoshiro256pp;

/// Fisher–Yates shuffle in place.
pub fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256pp) {
    for i in (1..items.len()).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices uniformly from `0..n` (partial Fisher–Yates).
///
/// Returns fewer than `k` indices if `k > n`. The result order is random.
pub fn sample_indices(n: usize, k: usize, rng: &mut Xoshiro256pp) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // For small k relative to n, Floyd's algorithm avoids materializing 0..n.
    if k * 8 < n {
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = rng.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        shuffle(&mut chosen, rng);
        chosen
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.index(n - i);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

/// Chooses one element uniformly; `None` on an empty slice.
pub fn choose<'a, T>(items: &'a [T], rng: &mut Xoshiro256pp) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.index(items.len())])
    }
}

/// Chooses an index with probability proportional to `weights[i]`.
///
/// Non-finite and negative weights are treated as zero. Returns `None` if
/// the weights are empty or all (effectively) zero.
pub fn weighted_choice(weights: &[f64], rng: &mut Xoshiro256pp) -> Option<usize> {
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let total: f64 = weights.iter().copied().map(clean).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.next_f64() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        let w = clean(w);
        if w > 0.0 {
            last_positive = Some(i);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack: fall back to the last positive-weight index.
    last_positive
}

/// Sorts indices `0..values.len()` by `values` with a deterministic
/// tie-break (index order), ascending or descending.
///
/// The simulators rank peers by observed transfer amounts; ties are common
/// (e.g. many 0-transfers) and the tie-break must not depend on allocation
/// addresses or hash ordering, or runs stop being reproducible.
#[must_use]
pub fn rank_indices(values: &[f64], ascending: bool) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        let ord = values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal);
        let ord = if ascending { ord } else { ord.reverse() };
        ord.then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(123)
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_uniformity_spot_check() {
        // Position of element 0 after shuffling [0,1,2] should be uniform.
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut v = [0, 1, 2];
            shuffle(&mut v, &mut r);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_handles_trivial_sizes() {
        let mut r = rng();
        let mut empty: Vec<u8> = vec![];
        shuffle(&mut empty, &mut r);
        let mut one = vec![7u8];
        shuffle(&mut one, &mut r);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng();
        for (n, k) in [(50, 3), (50, 50), (10, 0), (1000, 5), (4, 10)] {
            let s = sample_indices(n, k, &mut r);
            assert_eq!(s.len(), k.min(n));
            let set: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(set.len(), s.len(), "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_covers_all_elements() {
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            for i in sample_indices(20, 2, &mut r) {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn sample_indices_floyd_path_uniform() {
        // n=1000, k=3 exercises the Floyd branch; element 0 should appear
        // with probability 3/1000.
        let mut r = rng();
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| sample_indices(1000, 3, &mut r).contains(&0))
            .count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.003).abs() < 0.0008, "p={p}");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = rng();
        let empty: [u8; 0] = [];
        assert!(choose(&empty, &mut r).is_none());
        assert_eq!(choose(&[42], &mut r), Some(&42));
    }

    #[test]
    fn weighted_choice_proportional() {
        let mut r = rng();
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_choice(&weights, &mut r).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0);
        let p1 = f64::from(counts[1]) / f64::from(n);
        assert!((p1 - 0.3).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn weighted_choice_rejects_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_choice(&[], &mut r), None);
        assert_eq!(weighted_choice(&[0.0, 0.0], &mut r), None);
        assert_eq!(weighted_choice(&[-1.0, f64::NAN], &mut r), None);
        assert_eq!(weighted_choice(&[0.0, 5.0], &mut r), Some(1));
    }

    #[test]
    fn rank_indices_orders_and_breaks_ties_by_index() {
        let vals = [3.0, 1.0, 3.0, 2.0];
        assert_eq!(rank_indices(&vals, true), vec![1, 3, 0, 2]);
        assert_eq!(rank_indices(&vals, false), vec![0, 2, 3, 1]);
    }

    #[test]
    fn rank_indices_handles_nan_without_panicking() {
        let vals = [f64::NAN, 1.0, 0.5];
        let idx = rank_indices(&vals, true);
        assert_eq!(idx.len(), 3);
        let set: HashSet<usize> = idx.into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
