//! Hierarchical, collision-resistant seed derivation.
//!
//! Every experiment in the workspace is driven by a single *master seed*.
//! Work is then fanned out across protocols × encounters × runs × peers, and
//! each unit needs its own independent stream. Deriving those streams by
//! `master + i` would create heavily correlated xoshiro states; instead we
//! mix path components through splitmix64, which is a bijective finalizer
//! with good avalanche behaviour.
//!
//! The derivation is *path based*: a [`SeedSeq`] identifies a node in the
//! experiment tree (e.g. `master / protocol 1723 / encounter 3 / run 7`) and
//! yields the same seed no matter which thread asks for it or in which order
//! — the property that makes multi-threaded sweeps bit-identical to
//! single-threaded ones.

use crate::rng::{splitmix64, Xoshiro256pp};

/// A position in the experiment tree from which seeds are derived.
///
/// # Examples
///
/// ```
/// use dsa_workloads::seeds::SeedSeq;
///
/// let master = SeedSeq::new(0xDEAD_BEEF);
/// let run0 = master.child(0).child(7);
/// let run0_again = master.child(0).child(7);
/// assert_eq!(run0.seed(), run0_again.seed());
/// assert_ne!(run0.seed(), master.child(1).child(7).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSeq {
    state: u64,
}

impl SeedSeq {
    /// Creates the root of a seed tree from a master seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        // Mix the master once so that small master seeds (0, 1, 2, ...)
        // still land in well-separated regions of the state space.
        let mut s = master;
        let state = splitmix64(&mut s);
        Self { state }
    }

    /// Derives the child node for the given index.
    #[must_use]
    pub fn child(&self, index: u64) -> Self {
        // Feed (state, index) through two splitmix rounds. The xor with a
        // distinct odd constant separates `child(i)` from `child(j).child(k)`
        // collisions along different tree shapes.
        let mut s = self.state ^ index.wrapping_mul(0x9e6c_63d0_876a_3f6b);
        let first = splitmix64(&mut s);
        let mut s2 = first ^ 0xd1b5_4a32_d192_ed03;
        Self {
            state: splitmix64(&mut s2),
        }
    }

    /// The 64-bit seed value at this node.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Builds a PRNG seeded at this node.
    #[must_use]
    pub fn rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn children_are_deterministic() {
        let root = SeedSeq::new(99);
        assert_eq!(root.child(4).seed(), root.child(4).seed());
    }

    #[test]
    fn children_differ_from_each_other() {
        let root = SeedSeq::new(1);
        let seeds: HashSet<u64> = (0..10_000).map(|i| root.child(i).seed()).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn sibling_subtrees_do_not_collide() {
        let root = SeedSeq::new(3);
        let mut seen = HashSet::new();
        for i in 0..100 {
            for j in 0..100 {
                assert!(
                    seen.insert(root.child(i).child(j).seed()),
                    "collision at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedSeq::new(0);
        let b = SeedSeq::new(1);
        assert_ne!(a.seed(), b.seed());
        assert_ne!(a.child(0).seed(), b.child(0).seed());
    }

    #[test]
    fn path_shape_matters() {
        // child(1).child(0) must not equal child(0).child(1) or child(1).
        let root = SeedSeq::new(77);
        let a = root.child(1).child(0).seed();
        let b = root.child(0).child(1).seed();
        let c = root.child(1).seed();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rng_uses_node_seed() {
        let node = SeedSeq::new(5).child(2);
        let mut from_node = node.rng();
        let mut direct = Xoshiro256pp::seed_from_u64(node.seed());
        for _ in 0..8 {
            assert_eq!(from_node.next_u64(), direct.next_u64());
        }
    }
}
