//! A minimal JSON value model, writer helpers and recursive-descent
//! parser — just enough for the run journal, the Chrome-trace exporter
//! and the `BENCH_*.json` baseline files, with no crates.io dependency
//! (the workspace's offline constraint).
//!
//! The parser accepts the standard grammar (objects, arrays, strings
//! with `\uXXXX` escapes, numbers, booleans, null) and keeps object
//! members in document order. Numbers are held as `f64`, which is exact
//! for the integer magnitudes the journal stores (< 2^53 — nanosecond
//! sums of realistic runs stay far below that).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object member by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips (rejects negatives, NaN and fractional values).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string for embedding between JSON double quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes an `f64` the way the journal expects numbers: integers
/// without a trailing `.0`, everything else in shortest-roundtrip form,
/// non-finite values as `null` (JSON has no NaN/Inf).
#[must_use]
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// content is an error (a journal line holds exactly one object).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_num(bytes, pos).map(Json::Num),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not produced by this crate's
                        // writer; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse(r#""a\"b\nc""#).unwrap(), Json::Str("a\"b\nc".into()));
        assert_eq!(
            parse(r#"[1, "x", []]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("x".into()),
                Json::Arr(vec![])
            ])
        );
        let obj = parse(r#"{"a": 1, "b": {"c": [true]}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            obj.get("b").and_then(|b| b.get("c")).and_then(Json::as_arr),
            Some(&[Json::Bool(true)][..])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1 2", r#""unterminated"#] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line\nbreak \"quote\" back\\slash tab\t ctrl\u{1} done";
        let doc = format!(r#"{{"k": "{}"}}"#, escape(nasty));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn unicode_escapes_decode() {
        // Raw UTF-8 passes through; \uXXXX escapes decode to the same.
        assert_eq!(parse(r#""éA""#).unwrap(), Json::Str("éA".into()));
        assert_eq!(parse("\"\\u00e9A\"").unwrap(), Json::Str("éA".into()));
    }

    #[test]
    fn num_formats_integers_cleanly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-2.0), "-2");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.0e16), "10000000000000000");
    }
}
