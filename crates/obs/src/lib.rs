//! Hand-rolled observability for the DSA stack: metrics, spans, reports.
//!
//! The paper's pipeline runs hundreds of millions of simulations; knowing
//! *where* a sweep spends its time (and whether a cache hit or a
//! recompute served a query) is the difference between guessing and
//! measuring. This crate is the measurement substrate — no crates.io
//! dependencies, matching the workspace's offline `vendor/` constraint —
//! and it is wired through every engine, sweep and cache in the stack.
//!
//! Three primitives:
//!
//! - **Metrics** ([`incr`], [`add`], [`gauge_set`], [`observe`]): a global
//!   registry of counters (event counts — never time, so totals are
//!   bit-identical across thread counts), gauges (last-value readings such
//!   as rows/s), and log2-bucketed histograms (latency distributions).
//! - **Spans** ([`span`], [`span_owned`], the [`span!`] macro): RAII
//!   guards that nest, timestamp via [`std::time::Instant`], and
//!   aggregate *per thread* — `parallel_map_indexed_scratch` workers
//!   record without contention and merge deterministically when they
//!   exit. Span **counts** are bit-identical across 1 vs 8 threads;
//!   durations are reported as distributions (total/self/min/max plus a
//!   log2 histogram).
//! - **Reports** ([`snapshot`], [`Snapshot::render`],
//!   [`Snapshot::to_jsonl`], [`write_csv`]): human-readable tables,
//!   line-JSON, and stamped `results/obs-<run>.csv` files that
//!   `dsa obs report` reads back.
//!
//! Layered on top: the persistent **run journal** ([`journal`] —
//! append-only JSONL provenance, one record per observed run), the
//! Chrome-trace exporter ([`trace`], fed by [`enable_events`] /
//! [`take_events`]), run diffing ([`diff`]) and the journal-driven perf
//! gate ([`regress`]) — the machinery behind `dsa obs
//! {runs,trace,diff,regress}`.
//!
//! And on top of *that*, the live layer: Prometheus text exposition
//! ([`expo`]), the embedded HTTP scrape/query server ([`serve`] —
//! `--obs-listen` inside a run, `dsa obs serve` as a resident query
//! process over the journal) and the polling terminal dashboard
//! ([`top`], behind `dsa obs top`). All of it std-only: the HTTP layer
//! is a hand-rolled GET-only HTTP/1.1 on [`std::net::TcpListener`].
//!
//! The **memory dimension** completes the picture: an opt-in counting
//! allocator ([`alloc`], the `--alloc` flag), `/proc/self/status` RSS
//! sampling ([`mem`]), scratch-arena footprint gauges recorded by the
//! engines via [`gauge_max`], and a folded-stacks flamegraph exporter
//! ([`flame`], behind `dsa obs flame`) that can weight stacks by self
//! time or by allocation counts. The journal's `mem` block and the
//! `obs regress` gate make peak RSS, arena footprint and allocation
//! totals first-class, regression-gated quantities alongside time.
//!
//! Everything is **off by default**. Until [`enable_metrics`] or
//! [`enable_trace`] flips the global flag, every recording call is a
//! single relaxed atomic load and an early return — unmeasurable in the
//! engine benches. `--metrics` enables the registry; `--trace` enables
//! both the registry and span timing.
//!
//! # Naming scheme
//!
//! Dotted lowercase paths, component first: `cache.hit`,
//! `cache.miss.seed`, `parallel.tasks`, `swarm.rounds`, `attacks.cell_ns`,
//! `evo.rows_per_sec`. Histogram and gauge names carry their unit as a
//! suffix (`_ns`, `_per_sec`). Names must not contain commas or
//! whitespace (they are CSV/stamp tokens).

pub mod alloc;
pub mod diff;
pub mod expo;
pub mod flame;
pub mod journal;
pub mod json;
pub mod mem;
mod metrics;
pub mod regress;
mod report;
pub mod serve;
mod span;
pub mod top;
pub mod trace;

pub use journal::{note_cache_event, JournalRecord, RunMeta};
pub use metrics::{
    add, disable, enable_events, enable_metrics, enable_trace, events_enabled, gauge_max,
    gauge_set, incr, instrument_class, metrics_enabled, observe, observe_thread_dependent,
    trace_enabled, DetClass, Hist,
};
pub use report::{fmt_ns, read_csv, snapshot, write_csv, ExportMeta, Snapshot};
pub use span::{flush, span, span_owned, take_events, SpanGuard, SpanStats, TraceEvent};

/// Clears every registry: counters, gauges, histograms, merged spans,
/// captured trace events, cache-touch provenance, and the calling
/// thread's pending span aggregates. Enable flags are left as they are.
/// Call between jobs (tests, repeated sweeps) — worker threads merge
/// their spans when they exit and `dsa_core::parallel` joins every
/// worker before returning, so by the time a fork-join region returns
/// there is nothing left un-merged to lose.
pub fn reset() {
    metrics::reset_metrics();
    span::reset_spans();
    journal::reset_cache_events();
}

/// Opens a span guard over the enclosing scope.
///
/// `span!("rep.run")` expands to [`span`] with a `&'static str` name;
/// `span!("profile.{domain}")` (any extra formatting arguments) expands
/// to [`span_owned`]. Bind the guard (`let _g = span!(...)`) — an unbound
/// `let _ =` drops it immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span($name)
    };
    ($($fmt:tt)+) => {
        $crate::span_owned(format!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registries are shared across the test binary's threads;
    // serialize every test that enables/asserts on them.
    pub(crate) static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        incr("test.counter");
        gauge_set("test.gauge", 1.0);
        observe("test.hist", 42);
        {
            let _s = span!("test.span");
        }
        flush();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_gauges_hists_record_when_enabled() {
        let _g = LOCK.lock().unwrap();
        enable_metrics();
        reset();
        incr("test.counter");
        add("test.counter", 2);
        gauge_set("test.gauge", 0.5);
        gauge_set("test.gauge", 2.5);
        observe("test.hist", 1);
        observe("test.hist", 1024);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counters["test.counter"], 3);
        assert_eq!(snap.gauges["test.gauge"], 2.5);
        let h = &snap.hists["test.hist"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1025);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1024);
        // 1 lands in bucket 1 ([1,2)), 1024 in bucket 11 ([1024,2048)).
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[11], 1);
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let _g = LOCK.lock().unwrap();
        enable_trace();
        reset();
        {
            let _outer = span!("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = snapshot();
        disable();
        let outer = &snap.spans["test.outer"];
        let inner = &snap.spans["test.inner"];
        assert_eq!(outer.dur.count, 1);
        assert_eq!(inner.dur.count, 1);
        // The inner span's time is excluded from the outer's self time.
        assert!(outer.dur.sum >= inner.dur.sum);
        assert!(outer.self_ns <= outer.dur.sum - inner.dur.sum);
        assert_eq!(inner.self_ns, inner.dur.sum);
    }

    #[test]
    fn worker_threads_merge_spans_on_exit() {
        let _g = LOCK.lock().unwrap();
        enable_trace();
        reset();
        std::thread::scope(|scope| {
            // Join each worker explicitly: the exit-time merge runs in the
            // thread-local destructor, which an unjoined scope does not
            // wait for (it unblocks when the closure returns). This is the
            // pattern dsa_core::parallel uses.
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        for _ in 0..10 {
                            let _s = span!("test.worker");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let snap = snapshot();
        disable();
        assert_eq!(snap.spans["test.worker"].dur.count, 40);
    }

    #[test]
    fn span_counts_are_identical_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        enable_trace();
        let mut counts = Vec::new();
        for threads in [1usize, 8] {
            reset();
            let jobs = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| loop {
                            let i = jobs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= 64 {
                                break;
                            }
                            let _s = span!("test.task");
                            incr("test.tasks");
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
            let snap = snapshot();
            counts.push((
                snap.spans["test.task"].dur.count,
                snap.counters["test.tasks"],
            ));
        }
        disable();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0].0, 64);
    }
}
