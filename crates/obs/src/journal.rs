//! The persistent run journal: append-only, self-describing JSONL
//! provenance for every observed run.
//!
//! Every `--metrics`/`--trace` run (and every `experiments profile`)
//! appends one [`JournalRecord`] line to `results/journal.jsonl`: run
//! identity (id, binary, command line, timestamp), workload coordinates
//! (domain/scale/seed/threads), the cache stamps it touched with their
//! hit/miss outcomes, wall-clock, and a compact snapshot of every
//! counter, gauge, histogram and span — histograms and span durations
//! reduced to count/sum plus p50/p95/p99 via [`Hist::quantile`]. The
//! journal is what `dsa obs {runs,diff,regress}` read and what a future
//! `dsa serve` layer will memory-map: the durable record of exploration
//! the paper's method calls for.
//!
//! **Durability rules.** Appends are line-atomic (one `write` of one
//! `\n`-terminated line in append mode); a crash can only ever corrupt
//! the final line, and [`read_file`] tolerates that by skipping
//! unparseable lines (reporting how many). When the file would exceed
//! the size cap the current journal rotates to `journal.1.jsonl`
//! (replacing the previous rotation) and a fresh file starts — two
//! generations bound disk use while keeping a deep rolling window.

use crate::json::{self, Json};
use crate::metrics::{metrics_enabled, Hist};
use crate::report::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The journal file name under the results directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// The rotated (previous-generation) journal file name.
pub const JOURNAL_ROTATED: &str = "journal.1.jsonl";
/// Default rotation threshold: 1 MiB (~1000 smoke-profile records).
pub const DEFAULT_MAX_BYTES: u64 = 1 << 20;

/// Run identity and workload coordinates, supplied by the binary (the
/// timestamp is passed in, not sampled here, so callers control clock
/// reads and tests stay deterministic).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMeta {
    /// Unique run id, e.g. `profile-smoke-1754640000000-4242`.
    pub run_id: String,
    /// Binary name (`dsa` or `experiments`).
    pub binary: String,
    /// The command line (program name omitted), space-joined.
    pub command: String,
    /// Unix milliseconds at process start.
    pub timestamp_ms: u64,
    /// Experiment scale name, when one applies.
    pub scale: Option<String>,
    /// Domain name, when the run targets a single domain.
    pub domain: Option<String>,
    /// Master seed, when one applies.
    pub seed: Option<u64>,
    /// Resolved worker-thread count.
    pub threads: usize,
}

/// A span aggregate reduced to the journal's compact form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSummary {
    /// Invocation count.
    pub count: u64,
    /// Total (wall) nanoseconds across invocations.
    pub total_ns: u64,
    /// Self nanoseconds (total minus children).
    pub self_ns: u64,
    /// Median invocation duration (ns).
    pub p50: u64,
    /// 95th-percentile invocation duration (ns).
    pub p95: u64,
    /// 99th-percentile invocation duration (ns).
    pub p99: u64,
}

/// A histogram reduced to the journal's compact form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Median observation.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistSummary {
    fn of(h: &Hist) -> Self {
        let (p50, p95, p99) = h.percentiles();
        Self {
            count: h.count,
            sum: h.sum,
            p50,
            p95,
            p99,
        }
    }
}

/// The memory telemetry of one run, reduced to the journal's compact
/// form. Additive relative to the v1 schema: records without it parse
/// as `mem: None`, and v1 readers ignore the unknown key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemBlock {
    /// Peak resident set size in bytes (`mem.rss_peak_bytes`; 0 when
    /// procfs was unavailable).
    pub rss_peak_bytes: u64,
    /// Workspace-wide peak scratch-arena footprint in bytes
    /// (`mem.arena_peak_bytes`).
    pub arena_peak_bytes: u64,
    /// Total heap allocations counted (`mem.alloc.count`; 0 unless the
    /// run used `--alloc`).
    pub alloc_count: u64,
    /// Total heap bytes requested (`mem.alloc.bytes`).
    pub alloc_bytes: u64,
}

impl MemBlock {
    /// Collects the memory block from a snapshot's `mem.*` instruments.
    /// Returns `None` when the run recorded no memory telemetry at all
    /// (metrics off, or a pre-memory-dimension snapshot).
    #[must_use]
    pub fn from_registries(snap: &Snapshot) -> Option<Self> {
        let gauge = |key: &str| snap.gauges.get(key).map(|v| *v as u64);
        let counter = |key: &str| snap.counters.get(key).copied();
        let rss = gauge("mem.rss_peak_bytes");
        let arena = gauge("mem.arena_peak_bytes");
        let count = counter("mem.alloc.count");
        let bytes = counter("mem.alloc.bytes");
        if rss.is_none() && arena.is_none() && count.is_none() && bytes.is_none() {
            return None;
        }
        Some(Self {
            rss_peak_bytes: rss.unwrap_or(0),
            arena_peak_bytes: arena.unwrap_or(0),
            alloc_count: count.unwrap_or(0),
            alloc_bytes: bytes.unwrap_or(0),
        })
    }
}

/// One journal line: a run's full provenance record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalRecord {
    /// Run identity and coordinates.
    pub meta: RunMeta,
    /// Wall-clock of the run, in milliseconds.
    pub wall_ms: u64,
    /// Memory telemetry, when the run recorded any.
    pub mem: Option<MemBlock>,
    /// Cache stamps touched: `(file name, outcome)` in touch order,
    /// where outcome is `hit`, `store`, or `miss.<reason>`.
    pub cache: Vec<(String, String)>,
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
    /// Span summaries.
    pub spans: BTreeMap<String, SpanSummary>,
}

// ---- cache-touch provenance ------------------------------------------------

/// More cache events than any sane run produces; beyond this the list
/// stops growing (and `obs.cache_events_dropped` counts the overflow).
const CACHE_EVENT_CAP: usize = 512;

static CACHE_EVENTS: Mutex<Vec<(Box<str>, Box<str>)>> = Mutex::new(Vec::new());

/// Records that a cache file was touched with the given outcome (`hit`,
/// `store`, `miss.<reason>`) for the journal's provenance list. A no-op
/// unless metrics are enabled. Called by `dsa_core::cache`.
pub fn note_cache_event(file: &str, outcome: &str) {
    if !metrics_enabled() {
        return;
    }
    let mut events = CACHE_EVENTS.lock().expect("cache event list poisoned");
    if events.len() >= CACHE_EVENT_CAP {
        drop(events);
        crate::metrics::add("obs.cache_events_dropped", 1);
        return;
    }
    events.push((file.into(), outcome.into()));
}

/// The cache events recorded since the last [`crate::reset`].
#[must_use]
pub fn cache_events() -> Vec<(String, String)> {
    CACHE_EVENTS
        .lock()
        .expect("cache event list poisoned")
        .iter()
        .map(|(f, o)| (f.to_string(), o.to_string()))
        .collect()
}

pub(crate) fn reset_cache_events() {
    CACHE_EVENTS
        .lock()
        .expect("cache event list poisoned")
        .clear();
}

// ---- record construction & JSON codec --------------------------------------

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json::escape(s)),
        None => "null".to_string(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

impl JournalRecord {
    /// Builds a record from a registry snapshot plus the run metadata,
    /// folding in the cache events recorded since the last reset.
    #[must_use]
    pub fn from_snapshot(meta: RunMeta, wall_ms: u64, snap: &Snapshot) -> Self {
        let spans = snap
            .spans
            .iter()
            .map(|(name, s)| {
                let (p50, p95, p99) = s.dur.percentiles();
                (
                    name.clone(),
                    SpanSummary {
                        count: s.dur.count,
                        total_ns: s.dur.sum,
                        self_ns: s.self_ns,
                        p50,
                        p95,
                        p99,
                    },
                )
            })
            .collect();
        Self {
            meta,
            wall_ms,
            mem: MemBlock::from_registries(snap),
            cache: cache_events(),
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            hists: snap
                .hists
                .iter()
                .map(|(name, h)| (name.clone(), HistSummary::of(h)))
                .collect(),
            spans,
        }
    }

    /// Serializes the record as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"v\":1,\"run\":\"{}\",\"bin\":\"{}\",\"cmd\":\"{}\",\"ts_ms\":{},\
             \"scale\":{},\"domain\":{},\"seed\":{},\"threads\":{},\"wall_ms\":{}",
            json::escape(&self.meta.run_id),
            json::escape(&self.meta.binary),
            json::escape(&self.meta.command),
            self.meta.timestamp_ms,
            opt_str(&self.meta.scale),
            opt_str(&self.meta.domain),
            opt_u64(self.meta.seed),
            self.meta.threads,
            self.wall_ms
        );
        if let Some(mem) = &self.mem {
            let _ = write!(
                out,
                ",\"mem\":{{\"rss_peak_bytes\":{},\"arena_peak_bytes\":{},\
                 \"alloc_count\":{},\"alloc_bytes\":{}}}",
                mem.rss_peak_bytes, mem.arena_peak_bytes, mem.alloc_count, mem.alloc_bytes
            );
        }
        out.push_str(",\"cache\":[");
        for (i, (file, outcome)) in self.cache.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"outcome\":\"{}\"}}",
                json::escape(file),
                json::escape(outcome)
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json::escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(name), json::num(*v));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json::escape(name),
                h.count,
                h.sum,
                h.p50,
                h.p95,
                h.p99
            );
        }
        out.push_str("},\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{}}}",
                json::escape(name),
                s.count,
                s.total_ns,
                s.self_ns,
                s.p50,
                s.p95,
                s.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON, an unknown schema version, or
    /// missing/ill-typed required fields.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let doc = json::parse(line)?;
        let version = doc.get("v").and_then(Json::as_u64).ok_or("no version")?;
        if version != 1 {
            return Err(format!("unknown journal schema version {version}"));
        }
        let req_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let req_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let opt_string = |key: &str| -> Option<String> {
            doc.get(key).and_then(Json::as_str).map(str::to_string)
        };
        let meta = RunMeta {
            run_id: req_str("run")?,
            binary: req_str("bin")?,
            command: req_str("cmd")?,
            timestamp_ms: req_u64("ts_ms")?,
            scale: opt_string("scale"),
            domain: opt_string("domain"),
            seed: doc.get("seed").and_then(Json::as_u64),
            threads: usize::try_from(req_u64("threads")?).map_err(|_| "threads out of range")?,
        };
        let mut record = Self {
            meta,
            wall_ms: req_u64("wall_ms")?,
            ..Self::default()
        };
        if let Some(mem) = doc.get("mem") {
            let field = |key: &str| -> Result<u64, String> {
                mem.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("mem: missing {key}"))
            };
            record.mem = Some(MemBlock {
                rss_peak_bytes: field("rss_peak_bytes")?,
                arena_peak_bytes: field("arena_peak_bytes")?,
                alloc_count: field("alloc_count")?,
                alloc_bytes: field("alloc_bytes")?,
            });
        }
        for item in doc.get("cache").and_then(Json::as_arr).unwrap_or(&[]) {
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .ok_or("cache item: no file")?;
            let outcome = item
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or("cache item: no outcome")?;
            record.cache.push((file.to_string(), outcome.to_string()));
        }
        for (name, v) in doc.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
            record.counters.insert(
                name.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter {name}: not a u64"))?,
            );
        }
        for (name, v) in doc.get("gauges").and_then(Json::as_obj).unwrap_or(&[]) {
            record.gauges.insert(
                name.clone(),
                v.as_f64()
                    .ok_or_else(|| format!("gauge {name}: not a number"))?,
            );
        }
        let field = |v: &Json, name: &str, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: missing {key}"))
        };
        for (name, v) in doc.get("hists").and_then(Json::as_obj).unwrap_or(&[]) {
            record.hists.insert(
                name.clone(),
                HistSummary {
                    count: field(v, name, "count")?,
                    sum: field(v, name, "sum")?,
                    p50: field(v, name, "p50")?,
                    p95: field(v, name, "p95")?,
                    p99: field(v, name, "p99")?,
                },
            );
        }
        for (name, v) in doc.get("spans").and_then(Json::as_obj).unwrap_or(&[]) {
            record.spans.insert(
                name.clone(),
                SpanSummary {
                    count: field(v, name, "count")?,
                    total_ns: field(v, name, "total_ns")?,
                    self_ns: field(v, name, "self_ns")?,
                    p50: field(v, name, "p50")?,
                    p95: field(v, name, "p95")?,
                    p99: field(v, name, "p99")?,
                },
            );
        }
        Ok(record)
    }

    /// One human-readable summary line (for `dsa obs runs`).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{:<40} {} {:<28} wall {:>7}ms  {} spans, {} cache touches",
            self.meta.run_id,
            self.meta.binary,
            self.meta.command.chars().take(28).collect::<String>(),
            self.wall_ms,
            self.spans.len(),
            self.cache.len()
        )
    }
}

/// The record schema as a structural signature: top-level keys in wire
/// order plus the per-entry keys of the nested maps. Pinned by a
/// snapshot test so accidental schema drift (a renamed or re-typed
/// field) fails loudly — bump `v` and the pin together when changing
/// the schema deliberately.
///
/// # Errors
///
/// Returns an error when `line` is not a parseable journal line.
pub fn schema_of(line: &str) -> Result<String, String> {
    let doc = json::parse(line)?;
    let obj = doc.as_obj().ok_or("journal line is not an object")?;
    let mut out = String::new();
    for (key, value) in obj {
        match key.as_str() {
            "cache" => {
                let keys = value
                    .as_arr()
                    .and_then(|a| a.first())
                    .and_then(Json::as_obj)
                    .map_or_else(String::new, |m| {
                        m.iter()
                            .map(|(k, _)| k.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    });
                let _ = writeln!(out, "cache[]{{{keys}}}");
            }
            "hists" | "spans" => {
                let keys = value
                    .as_obj()
                    .and_then(|m| m.first())
                    .and_then(|(_, v)| v.as_obj())
                    .map_or_else(String::new, |m| {
                        m.iter()
                            .map(|(k, _)| k.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    });
                let _ = writeln!(out, "{key}{{name -> {{{keys}}}}}");
            }
            "counters" | "gauges" => {
                let _ = writeln!(out, "{key}{{name -> num}}");
            }
            "mem" => {
                let keys = value.as_obj().map_or_else(String::new, |m| {
                    m.iter()
                        .map(|(k, _)| k.as_str())
                        .collect::<Vec<_>>()
                        .join(",")
                });
                let _ = writeln!(out, "mem{{{keys}}}");
            }
            _ => {
                let kind = match value {
                    Json::Null => "null",
                    Json::Bool(_) => "bool",
                    Json::Num(_) => "num",
                    Json::Str(_) => "str",
                    Json::Arr(_) => "arr",
                    Json::Obj(_) => "obj",
                };
                let _ = writeln!(out, "{key}:{kind}");
            }
        }
    }
    Ok(out)
}

// ---- file I/O --------------------------------------------------------------

/// Appends one record to `dir/journal.jsonl`, rotating the file to
/// `journal.1.jsonl` first when it would exceed `max_bytes`. Returns the
/// journal path.
///
/// # Errors
///
/// Returns an error when the directory, rotation or append fails.
pub fn append(dir: &Path, record: &JournalRecord, max_bytes: u64) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(JOURNAL_FILE);
    let mut line = record.to_json_line();
    line.push('\n');
    let current = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    if current > 0 && current + line.len() as u64 > max_bytes {
        let rotated = dir.join(JOURNAL_ROTATED);
        std::fs::rename(&path, &rotated)
            .map_err(|e| format!("rotating {}: {e}", path.display()))?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("appending to {}: {e}", path.display()))?;
    Ok(path)
}

/// Reads one journal file: the parsed records in file order plus the
/// number of lines skipped as unparseable (a crash-truncated tail, a
/// foreign schema version — tolerated, not fatal). A missing file reads
/// as empty.
///
/// # Errors
///
/// Returns an error when the file exists but cannot be read.
pub fn read_file(path: &Path) -> Result<(Vec<JournalRecord>, usize), String> {
    if !path.exists() {
        return Ok((Vec::new(), 0));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalRecord::from_json_line(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Reads the full journal under `dir`: the rotated generation first
/// (when present), then the current file — so records come out in
/// chronological order across the rotation boundary.
///
/// # Errors
///
/// Returns an error when either file exists but cannot be read.
pub fn read_all(dir: &Path) -> Result<(Vec<JournalRecord>, usize), String> {
    let (mut records, mut skipped) = read_file(&dir.join(JOURNAL_ROTATED))?;
    let (current, s) = read_file(&dir.join(JOURNAL_FILE))?;
    records.extend(current);
    skipped += s;
    Ok((records, skipped))
}

/// Reads one journal file *strictly*: any unparseable non-blank line is
/// an error. The tolerant [`read_file`] is right for queries (a
/// crash-truncated tail must not break `dsa obs runs`); a **rewrite**
/// must not silently discard lines it cannot parse, so [`gc`] uses this.
fn read_file_strict(path: &Path) -> Result<Vec<JournalRecord>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = JournalRecord::from_json_line(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// What a [`gc`] with the same `keep` would do, without doing it: the
/// run ids that would survive (chronological order) and the ones that
/// would be dropped. Backs `dsa obs gc --dry-run`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcPlan {
    /// Run ids that would be kept, oldest first.
    pub kept: Vec<String>,
    /// Run ids that would be dropped, oldest first.
    pub dropped: Vec<String>,
}

/// Plans a compaction to the newest `keep` records without touching the
/// journal. Reads **strictly**, exactly like [`gc`]: a plan that a real
/// gc would refuse to execute is an error here too, so the dry run is a
/// faithful preview.
///
/// # Errors
///
/// Returns an error on unreadable files or any unparseable journal line.
pub fn gc_plan(dir: &Path, keep: usize) -> Result<GcPlan, String> {
    let mut records = read_file_strict(&dir.join(JOURNAL_ROTATED))?;
    records.extend(read_file_strict(&dir.join(JOURNAL_FILE))?);
    let kept = records.len().min(keep);
    let dropped = records.len() - kept;
    Ok(GcPlan {
        kept: records[dropped..]
            .iter()
            .map(|r| r.meta.run_id.clone())
            .collect(),
        dropped: records[..dropped]
            .iter()
            .map(|r| r.meta.run_id.clone())
            .collect(),
    })
}

/// Compacts the journal under `dir` to its newest `keep` records: both
/// generations are read **strictly** (any unparseable line aborts the
/// compaction — gc must never destroy data it cannot re-serialize), the
/// newest `keep` records are rewritten atomically (temp sibling +
/// rename) into `journal.jsonl`, and the rotated generation is removed.
/// Returns `(kept, dropped)` record counts. A missing journal compacts
/// to `(0, 0)` without creating any file.
///
/// # Errors
///
/// Returns an error on unreadable files, any unparseable journal line,
/// or a failed rewrite — in every case the journal on disk is untouched.
pub fn gc(dir: &Path, keep: usize) -> Result<(usize, usize), String> {
    let rotated_path = dir.join(JOURNAL_ROTATED);
    let current_path = dir.join(JOURNAL_FILE);
    let mut records = read_file_strict(&rotated_path)?;
    records.extend(read_file_strict(&current_path)?);
    if records.is_empty() {
        return Ok((0, 0));
    }
    let kept = records.len().min(keep);
    let dropped = records.len() - kept;
    let mut text = String::new();
    for record in &records[dropped..] {
        text.push_str(&record.to_json_line());
        text.push('\n');
    }
    let tmp = current_path.with_extension(format!("jsonl.tmp.{}", std::process::id()));
    std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &current_path)
        .map_err(|e| format!("installing {}: {e}", current_path.display()))?;
    if rotated_path.exists() {
        std::fs::remove_file(&rotated_path)
            .map_err(|e| format!("removing {}: {e}", rotated_path.display()))?;
    }
    Ok((kept, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(run_id: &str, swarm_self_ns: u64) -> JournalRecord {
        let mut record = JournalRecord {
            meta: RunMeta {
                run_id: run_id.to_string(),
                binary: "experiments".to_string(),
                command: "experiments profile".to_string(),
                timestamp_ms: 1_754_640_000_000,
                scale: Some("smoke".to_string()),
                domain: None,
                seed: Some(0x5EED),
                threads: 8,
            },
            wall_ms: 1200,
            mem: Some(MemBlock {
                rss_peak_bytes: 48 << 20,
                arena_peak_bytes: 3 << 20,
                alloc_count: 1234,
                alloc_bytes: 5 << 20,
            }),
            cache: vec![
                ("pra-swarm-smoke.csv".to_string(), "miss.absent".to_string()),
                ("pra-swarm-smoke.csv".to_string(), "store".to_string()),
            ],
            ..JournalRecord::default()
        };
        record.counters.insert("cache.store".to_string(), 1);
        record.gauges.insert("parallel.imbalance".to_string(), 1.25);
        record.hists.insert(
            "attacks.cell_ns".to_string(),
            HistSummary {
                count: 10,
                sum: 1000,
                p50: 90,
                p95: 150,
                p99: 190,
            },
        );
        record.spans.insert(
            "swarm.run".to_string(),
            SpanSummary {
                count: 40,
                total_ns: swarm_self_ns + 1_000_000,
                self_ns: swarm_self_ns,
                p50: 100_000,
                p95: 200_000,
                p99: 250_000,
            },
        );
        record
    }

    #[test]
    fn json_line_roundtrips() {
        let record = sample("unit-1", 80_000_000);
        let line = record.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = JournalRecord::from_json_line(&line).unwrap();
        assert_eq!(record, parsed);
    }

    #[test]
    fn records_without_a_mem_block_still_parse() {
        // The mem block is additive: pre-memory-dimension journal lines
        // (and runs that recorded no memory telemetry) parse with
        // mem: None and their line omits the key entirely.
        let mut record = sample("unit-nomem", 1_000_000);
        record.mem = None;
        let line = record.to_json_line();
        assert!(!line.contains("\"mem\""));
        let parsed = JournalRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed.mem, None);
        assert_eq!(parsed, record);
    }

    #[test]
    fn mem_block_is_collected_from_snapshot_instruments() {
        let mut snap = Snapshot::default();
        assert_eq!(MemBlock::from_registries(&snap), None);
        snap.gauges.insert("mem.rss_peak_bytes".to_string(), 1e6);
        snap.gauges.insert("mem.arena_peak_bytes".to_string(), 2e5);
        snap.counters.insert("mem.alloc.count".to_string(), 7);
        snap.counters.insert("mem.alloc.bytes".to_string(), 900);
        assert_eq!(
            MemBlock::from_registries(&snap),
            Some(MemBlock {
                rss_peak_bytes: 1_000_000,
                arena_peak_bytes: 200_000,
                alloc_count: 7,
                alloc_bytes: 900,
            })
        );
    }

    #[test]
    fn optional_fields_roundtrip_as_null() {
        let mut record = sample("unit-null", 1_000_000);
        record.meta.scale = None;
        record.meta.seed = None;
        let line = record.to_json_line();
        assert!(line.contains("\"scale\":null"));
        let parsed = JournalRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed.meta.scale, None);
        assert_eq!(parsed.meta.seed, None);
    }

    #[test]
    fn schema_signature_is_pinned() {
        // Schema drift (renamed/re-typed/reordered fields) must be a
        // deliberate act: update this pin AND bump "v" together.
        let line = sample("unit-schema", 1).to_json_line();
        let expected = "\
v:num
run:str
bin:str
cmd:str
ts_ms:num
scale:str
domain:null
seed:num
threads:num
wall_ms:num
mem{rss_peak_bytes,arena_peak_bytes,alloc_count,alloc_bytes}
cache[]{file,outcome}
counters{name -> num}
gauges{name -> num}
hists{name -> {count,sum,p50,p95,p99}}
spans{name -> {count,total_ns,self_ns,p50,p95,p99}}
";
        assert_eq!(schema_of(&line).unwrap(), expected);
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_read_roundtrip() {
        let dir = fresh_dir("rt");
        let a = sample("run-a", 10_000_000);
        let b = sample("run-b", 12_000_000);
        append(&dir, &a, DEFAULT_MAX_BYTES).unwrap();
        append(&dir, &b, DEFAULT_MAX_BYTES).unwrap();
        let (records, skipped) = read_all(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records, vec![a, b]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_caps_the_file_and_keeps_one_generation() {
        let dir = fresh_dir("rot");
        let line_len = sample("run-0", 1).to_json_line().len() as u64 + 1;
        // Cap to ~3 lines: the 4th append must rotate.
        let cap = line_len * 3 + 10;
        for i in 0..5 {
            append(&dir, &sample(&format!("run-{i}"), 1), cap).unwrap();
        }
        let current = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert!(
            current <= cap,
            "current journal {current} exceeds cap {cap}"
        );
        assert!(dir.join(JOURNAL_ROTATED).exists());
        // All records survive across the rotation boundary, in order.
        let (records, _) = read_all(&dir).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.meta.run_id.as_str()).collect();
        assert_eq!(ids, ["run-0", "run-1", "run-2", "run-3", "run-4"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_tail_line_is_skipped_not_fatal() {
        let dir = fresh_dir("corrupt");
        let a = sample("run-a", 10_000_000);
        append(&dir, &a, DEFAULT_MAX_BYTES).unwrap();
        // Simulate a crash mid-append: a truncated final line.
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        let half = sample("run-b", 1).to_json_line();
        text.push_str(&half[..half.len() / 2]);
        std::fs::write(&path, text).unwrap();
        let (records, skipped) = read_file(&path).unwrap();
        assert_eq!(records, vec![a]);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_the_newest_records_and_collapses_generations() {
        let dir = fresh_dir("gc");
        let line_len = sample("run-0", 1).to_json_line().len() as u64 + 1;
        // Force a rotation so gc has two generations to collapse.
        let cap = line_len * 3 + 10;
        for i in 0..6 {
            append(&dir, &sample(&format!("run-{i}"), 1), cap).unwrap();
        }
        assert!(dir.join(JOURNAL_ROTATED).exists());
        let (kept, dropped) = gc(&dir, 2).unwrap();
        assert_eq!((kept, dropped), (2, 4));
        assert!(!dir.join(JOURNAL_ROTATED).exists());
        let (records, skipped) = read_all(&dir).unwrap();
        assert_eq!(skipped, 0);
        let ids: Vec<&str> = records.iter().map(|r| r.meta.run_id.as_str()).collect();
        assert_eq!(ids, ["run-4", "run-5"]);
        // Keeping more than exists keeps everything.
        assert_eq!(gc(&dir, 100).unwrap(), (2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_plan_previews_without_rewriting() {
        let dir = fresh_dir("gc-plan");
        for i in 0..4 {
            append(&dir, &sample(&format!("run-{i}"), 1), DEFAULT_MAX_BYTES).unwrap();
        }
        let before = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        let plan = gc_plan(&dir, 2).unwrap();
        assert_eq!(plan.dropped, ["run-0", "run-1"]);
        assert_eq!(plan.kept, ["run-2", "run-3"]);
        // The preview touched nothing.
        assert_eq!(
            std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap(),
            before
        );
        // And it agrees with what a real gc then does.
        assert_eq!(gc(&dir, 2).unwrap(), (2, 2));
        let (records, _) = read_all(&dir).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.meta.run_id.as_str()).collect();
        assert_eq!(ids, plan.kept);
        // An unparseable line fails the plan just like the real gc.
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"run\":\"trunc");
        std::fs::write(&path, &text).unwrap();
        assert!(gc_plan(&dir, 10).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_refuses_on_parse_errors_and_leaves_the_journal_alone() {
        let dir = fresh_dir("gc-refuse");
        append(&dir, &sample("run-a", 1), DEFAULT_MAX_BYTES).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"run\":\"trunc");
        std::fs::write(&path, &text).unwrap();
        let err = gc(&dir, 10).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // The journal is byte-identical: nothing was destroyed.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_of_a_missing_journal_is_a_no_op() {
        let dir = fresh_dir("gc-missing");
        assert_eq!(gc(&dir, 5).unwrap(), (0, 0));
        assert!(!dir.join(JOURNAL_FILE).exists());
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let dir = fresh_dir("missing");
        let (records, skipped) = read_all(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn from_snapshot_folds_in_cache_events_and_quantiles() {
        let _g = crate::tests::LOCK.lock().unwrap();
        crate::enable_trace();
        crate::reset();
        note_cache_event("pra-rep-smoke.csv", "hit");
        crate::observe("evo.cell_ns", 100);
        crate::observe("evo.cell_ns", 100);
        {
            let _s = crate::span("unit.work");
        }
        let snap = crate::snapshot();
        let record = JournalRecord::from_snapshot(
            RunMeta {
                run_id: "snap-1".to_string(),
                ..RunMeta::default()
            },
            5,
            &snap,
        );
        crate::disable();
        crate::reset();
        assert_eq!(
            record.cache,
            vec![("pra-rep-smoke.csv".to_string(), "hit".to_string())]
        );
        let h = &record.hists["evo.cell_ns"];
        assert_eq!((h.count, h.sum), (2, 200));
        assert_eq!((h.p50, h.p95, h.p99), (100, 100, 100));
        assert_eq!(record.spans["unit.work"].count, 1);
    }

    #[test]
    fn cache_events_respect_the_cap() {
        let _g = crate::tests::LOCK.lock().unwrap();
        crate::enable_metrics();
        crate::reset();
        for i in 0..(CACHE_EVENT_CAP + 10) {
            note_cache_event(&format!("file-{i}"), "hit");
        }
        assert_eq!(cache_events().len(), CACHE_EVENT_CAP);
        let snap = crate::snapshot();
        assert_eq!(snap.counters["obs.cache_events_dropped"], 10);
        crate::disable();
        crate::reset();
        assert!(cache_events().is_empty());
    }
}
