//! `dsa obs top`: a polling terminal dashboard over a live
//! `/snapshot` endpoint.
//!
//! Connects to an address exposed by `--obs-listen` (or by
//! `dsa obs serve`), polls `GET /snapshot` on an interval, and redraws
//! a plain-ANSI dashboard: top counters with per-interval rates, span
//! self-time ranked with text bars, gauges verbatim, and — when the
//! run records memory telemetry — a memory pane with RSS, arena
//! footprints and allocation totals in human-readable units. No raw
//! terminal mode, no external TUI dependency — just a home-cursor +
//! clear-to-end redraw, so it works in any ANSI terminal and degrades
//! to plain append-only output under `--once` (single poll, no escape
//! codes; also the form CI exercises).
//!
//! Rendering is a pure function ([`render_dashboard`]) from two
//! snapshots (current + previous, for rates) to a string, so the
//! layout is unit-testable without a server.

use crate::report::{fmt_bytes, fmt_ns, Snapshot};
use crate::serve::http_get;
use std::time::Duration;

/// Rows shown per section.
const TOP_N: usize = 8;
/// Width of the span self-time bar.
const BAR_WIDTH: usize = 30;

/// Options for the dashboard loop.
pub struct TopOptions {
    /// Address of a live `/snapshot` endpoint, e.g. `127.0.0.1:9464`.
    pub addr: String,
    /// Poll interval.
    pub interval: Duration,
    /// Render a single frame (no escape codes) and exit.
    pub once: bool,
}

fn bar(frac: f64) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * BAR_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Renders one dashboard frame. `prev` (the previous poll, if any)
/// supplies per-interval counter deltas; `elapsed` is the time between
/// the two polls.
#[must_use]
pub fn render_dashboard(cur: &Snapshot, prev: Option<&Snapshot>, elapsed: Duration) -> String {
    let mut out = String::new();
    let total_self: u64 = cur.spans.values().map(|s| s.self_ns).sum();
    out.push_str(&format!(
        "dsa obs top — {} counters, {} gauges, {} hists, {} spans\n",
        cur.counters.len(),
        cur.gauges.len(),
        cur.hists.len(),
        cur.spans.len()
    ));

    // Spans, ranked by self time, with share-of-total bars.
    if !cur.spans.is_empty() {
        out.push_str(&format!(
            "\n  span                        self        total       calls  share of {}\n",
            fmt_ns(total_self)
        ));
        let mut spans: Vec<_> = cur.spans.iter().collect();
        spans.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        for (name, s) in spans.iter().take(TOP_N) {
            let frac = if total_self == 0 {
                0.0
            } else {
                s.self_ns as f64 / total_self as f64
            };
            out.push_str(&format!(
                "  {:<26} {:>9} {:>12} {:>11}  {}\n",
                name,
                fmt_ns(s.self_ns),
                fmt_ns(s.dur.sum),
                fmt_count(s.dur.count),
                bar(frac)
            ));
        }
        if cur.spans.len() > TOP_N {
            out.push_str(&format!("  … {} more spans\n", cur.spans.len() - TOP_N));
        }
    }

    // Counters, ranked by per-interval delta when we have a previous
    // frame (what's hot *now*), by absolute value otherwise. The mem.*
    // namespace is carved out into its own pane below.
    let plain_counters: Vec<(&String, &u64)> = cur
        .counters
        .iter()
        .filter(|(name, _)| !name.starts_with("mem."))
        .collect();
    if !plain_counters.is_empty() {
        out.push_str("\n  counter                         value       delta/s\n");
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mut counters: Vec<(&String, u64, Option<f64>)> = plain_counters
            .iter()
            .map(|&(name, &v)| {
                let rate = prev.map(|p| {
                    let before = p.counters.get(name).copied().unwrap_or(0);
                    v.saturating_sub(before) as f64 / secs
                });
                (name, v, rate)
            })
            .collect();
        counters.sort_by(|a, b| {
            let ka = a.2.unwrap_or(a.1 as f64);
            let kb = b.2.unwrap_or(b.1 as f64);
            kb.partial_cmp(&ka)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        for (name, v, rate) in counters.iter().take(TOP_N) {
            out.push_str(&format!(
                "  {:<28} {:>9}  {}\n",
                name,
                fmt_count(*v),
                rate.map_or_else(|| "      —".to_string(), |r| format!("{r:>10.1}"))
            ));
        }
        if plain_counters.len() > TOP_N {
            out.push_str(&format!(
                "  … {} more counters\n",
                plain_counters.len() - TOP_N
            ));
        }
    }

    // Gauges verbatim (rows/s style rates are already gauges); byte
    // quantities live in the memory pane instead.
    let plain_gauges: Vec<(&String, &f64)> = cur
        .gauges
        .iter()
        .filter(|(name, _)| !name.starts_with("mem."))
        .collect();
    if !plain_gauges.is_empty() {
        out.push_str("\n  gauge                           value\n");
        for &(name, v) in plain_gauges.iter().take(TOP_N) {
            out.push_str(&format!("  {name:<28} {v:>12.1}\n"));
        }
        if plain_gauges.len() > TOP_N {
            out.push_str(&format!("  … {} more gauges\n", plain_gauges.len() - TOP_N));
        }
    }

    // Memory pane: RSS and arena-footprint gauges plus allocation
    // counters, in human-readable byte units. Present only when the run
    // recorded memory telemetry (--metrics samples RSS and arena
    // footprints; --alloc adds allocation totals).
    let mem_gauges: Vec<(&String, &f64)> = cur
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with("mem."))
        .collect();
    let mem_counters: Vec<(&String, &u64)> = cur
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("mem."))
        .collect();
    if !mem_gauges.is_empty() || !mem_counters.is_empty() {
        out.push_str("\n  memory                          value\n");
        for &(name, v) in &mem_gauges {
            out.push_str(&format!("  {:<28} {:>12}\n", name, fmt_bytes(*v as u64)));
        }
        for &(name, v) in &mem_counters {
            let shown = if name.ends_with("bytes") {
                fmt_bytes(*v)
            } else {
                fmt_count(*v)
            };
            out.push_str(&format!("  {name:<28} {shown:>12}\n"));
        }
    }

    // Histogram p50/p95, ranked by count.
    if !cur.hists.is_empty() {
        out.push_str("\n  hist                           count         p50         p95\n");
        let mut hists: Vec<_> = cur.hists.iter().collect();
        hists.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
        for (name, h) in hists.iter().take(TOP_N) {
            out.push_str(&format!(
                "  {:<28} {:>9} {:>11} {:>11}\n",
                name,
                fmt_count(h.count),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.95))
            ));
        }
        if cur.hists.len() > TOP_N {
            out.push_str(&format!("  … {} more hists\n", cur.hists.len() - TOP_N));
        }
    }

    if cur.counters.is_empty() && cur.spans.is_empty() && cur.hists.is_empty() {
        out.push_str("\n  (registry is empty — is the run started with --metrics?)\n");
    }
    out
}

fn fetch(addr: &str) -> Result<Snapshot, String> {
    let (status, body) = http_get(addr, "/snapshot")?;
    if status != 200 {
        return Err(format!("GET /snapshot returned HTTP {status}"));
    }
    Snapshot::from_json(&body)
}

/// Runs the dashboard loop until the server goes away (the normal exit:
/// the observed run finished) or, with `once`, after a single frame.
///
/// # Errors
///
/// Returns an error when the first poll fails — a bad address should
/// fail loudly rather than spin.
pub fn run(opts: &TopOptions) -> Result<(), String> {
    let mut prev = fetch(&opts.addr)?;
    if opts.once {
        print!("{}", render_dashboard(&prev, None, Duration::from_secs(0)));
        return Ok(());
    }
    // Home the cursor and clear to end-of-screen each frame: flicker-free
    // on any ANSI terminal, no alternate screen to restore on ^C.
    loop {
        std::thread::sleep(opts.interval);
        let cur = match fetch(&opts.addr) {
            Ok(s) => s,
            Err(msg) => {
                println!("\nserver went away ({msg}) — exiting");
                return Ok(());
            }
        };
        let frame = render_dashboard(&cur, Some(&prev), opts.interval);
        print!(
            "\x1b[H\x1b[2J{frame}\n  polling {} every {:?} — ^C to quit\n",
            opts.addr, opts.interval
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Hist;
    use crate::SpanStats;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache.hit".to_string(), 1_234);
        snap.counters.insert("cache.miss.seed".to_string(), 7);
        snap.gauges.insert("evo.cells_per_sec".to_string(), 5200.5);
        let mut h = Hist::default();
        for v in [100, 900, 4_000] {
            h.record(v);
        }
        snap.hists.insert("attacks.cell_ns".to_string(), h);
        let mut dur = Hist::default();
        dur.record(2_000_000);
        snap.spans.insert(
            "swarm.run".to_string(),
            SpanStats {
                dur,
                self_ns: 1_500_000,
            },
        );
        snap
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let snap = sample();
        let frame = render_dashboard(&snap, None, Duration::from_secs(0));
        for needle in [
            "2 counters",
            "swarm.run",
            "cache.hit",
            "evo.cells_per_sec",
            "attacks.cell_ns",
            "#",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
        // No previous frame: rates show as em-dash placeholders.
        assert!(frame.contains("—"));
    }

    #[test]
    fn dashboard_shows_rates_against_a_previous_frame() {
        let prev = sample();
        let mut cur = sample();
        cur.counters.insert("cache.hit".to_string(), 1_434); // +200
        let frame = render_dashboard(&cur, Some(&prev), Duration::from_secs(2));
        // 200 over 2s = 100.0/s.
        assert!(frame.contains("100.0"), "no rate in:\n{frame}");
    }

    #[test]
    fn memory_pane_collects_mem_instruments_in_byte_units() {
        let mut snap = sample();
        snap.gauges
            .insert("mem.rss_peak_bytes".to_string(), (48u64 << 20) as f64);
        snap.gauges
            .insert("mem.arena.swarm_bytes".to_string(), (3u64 << 20) as f64);
        snap.counters.insert("mem.alloc.count".to_string(), 1_234);
        snap.counters.insert("mem.alloc.bytes".to_string(), 5 << 20);
        let frame = render_dashboard(&snap, None, Duration::from_secs(0));
        for needle in [
            "memory",
            "mem.rss_peak_bytes",
            "48.0MiB",
            "mem.arena.swarm_bytes",
            "3.0MiB",
            "mem.alloc.count",
            "1234",
            "5.0MiB",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
        // mem.* stays out of the generic panes: the gauge pane would
        // otherwise print bytes as floats.
        let gauge_pane = frame.split("gauge  ").nth(1).unwrap();
        let gauge_pane = gauge_pane.split("\n\n").next().unwrap();
        assert!(!gauge_pane.contains("mem."), "{gauge_pane}");
    }

    #[test]
    fn empty_registry_renders_a_hint() {
        let frame = render_dashboard(&Snapshot::default(), None, Duration::from_secs(0));
        assert!(frame.contains("--metrics"));
    }
}
