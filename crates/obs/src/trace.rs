//! Chrome Trace Event Format export.
//!
//! [`chrome_trace`] renders captured [`TraceEvent`]s as a JSON document
//! loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: one track ("thread") per recording thread,
//! nested `"B"`/`"E"` duration events mirroring the span tree, and the
//! span's self time attached to the `"E"` event as
//! `args.self_ns` — so a flame view shows both wall and self time.
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept in the fractional part, measured from the process's
//! trace epoch. Within a track events are monotone and well-nested by
//! construction (RAII guards drop LIFO); if the in-memory event cap
//! truncated a run mid-span, the exporter closes the dangling spans at
//! the track's last timestamp instead of emitting an unbalanced file.
//!
//! [`validate`] re-parses an exported document and checks the
//! structural invariants (used by `dsa obs trace` as a self-check and
//! by the test suite).

use crate::json::{self, Json};
use crate::span::TraceEvent;
use std::fmt::Write as _;

/// Statistics of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Completed (begin+end) span events.
    pub spans: usize,
    /// Distinct tracks (threads).
    pub tracks: usize,
}

fn ts_us(ts_ns: u64) -> String {
    format!("{:.3}", ts_ns as f64 / 1e3)
}

/// Renders events as a Chrome Trace Event Format JSON document.
///
/// The output is an object (`{"traceEvents": [...]}`), the variant every
/// viewer accepts. `process_name` labels the single process (pid 1).
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], process_name: &str) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json::escape(process_name)
    );

    // Track metadata: one thread_name entry per distinct track, in
    // first-appearance order (track 1 is the first recording thread —
    // usually the main thread).
    let mut tracks: Vec<u32> = Vec::new();
    for e in events {
        if !tracks.contains(&e.track) {
            tracks.push(e.track);
        }
    }
    for &t in &tracks {
        let label = if Some(&t) == tracks.first() {
            format!("track-{t} (first)")
        } else {
            format!("track-{t}")
        };
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }

    // Span events. Per-track stacks guard against a cap-truncated tail:
    // an end without a begin is dropped, and begins left open at the end
    // of the stream are closed at their track's last timestamp.
    let mut stacks: Vec<(u32, Vec<Box<str>>)> = Vec::new();
    let mut last_ts: Vec<(u32, u64)> = Vec::new();
    for e in events {
        let at = match stacks.iter().position(|(t, _)| *t == e.track) {
            Some(i) => i,
            None => {
                stacks.push((e.track, Vec::new()));
                stacks.len() - 1
            }
        };
        let stack = &mut stacks[at].1;
        match last_ts.iter_mut().find(|(t, _)| *t == e.track) {
            Some((_, ts)) => *ts = (*ts).max(e.ts_ns),
            None => last_ts.push((e.track, e.ts_ns)),
        }
        if e.end {
            if stack.pop().is_none() {
                continue; // begin was truncated away; skip the orphan end
            }
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\
                 \"tid\":{},\"ts\":{},\"args\":{{\"self_ns\":{}}}}}",
                json::escape(&e.name),
                e.track,
                ts_us(e.ts_ns),
                e.self_ns
            );
        } else {
            stack.push(e.name.clone());
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"pid\":1,\
                 \"tid\":{},\"ts\":{}}}",
                json::escape(&e.name),
                e.track,
                ts_us(e.ts_ns)
            );
        }
    }
    for (track, stack) in &mut stacks {
        let ts = last_ts
            .iter()
            .find(|(t, _)| t == track)
            .map_or(0, |(_, ts)| *ts);
        while let Some(name) = stack.pop() {
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\
                 \"tid\":{},\"ts\":{},\"args\":{{\"self_ns\":0,\"truncated\":true}}}}",
                json::escape(&name),
                track,
                ts_us(ts)
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a Chrome Trace Event Format document and checks the
/// structural invariants this crate promises: every `"B"` has a
/// matching same-name `"E"` on its track, and timestamps are monotone
/// (non-decreasing) per track.
///
/// # Errors
///
/// Returns a description of the first violated invariant (or JSON
/// syntax error).
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    let mut stacks: Vec<(u64, Vec<String>, f64)> = Vec::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no ph"))?;
        if ph == "M" {
            continue;
        }
        if ph != "B" && ph != "E" {
            return Err(format!("event {i}: unexpected phase {ph:?}"));
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no name"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: no tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: no ts"))?;
        let at = match stacks.iter().position(|(t, _, _)| *t == tid) {
            Some(i) => i,
            None => {
                stacks.push((tid, Vec::new(), f64::NEG_INFINITY));
                stacks.len() - 1
            }
        };
        let entry = &mut stacks[at];
        if ts < entry.2 {
            return Err(format!(
                "event {i}: track {tid} timestamp {ts} < previous {}",
                entry.2
            ));
        }
        entry.2 = ts;
        if ph == "B" {
            entry.1.push(name.to_string());
        } else {
            match entry.1.pop() {
                Some(open) if open == name => spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: track {tid} closes {name:?} but {open:?} is open"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: track {tid} closes {name:?} with none open"
                    ))
                }
            }
        }
    }
    for (tid, stack, _) in &stacks {
        if !stack.is_empty() {
            return Err(format!("track {tid} left {} span(s) open", stack.len()));
        }
    }
    Ok(TraceStats {
        spans,
        tracks: stacks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, track: u32, ts_ns: u64, end: bool) -> TraceEvent {
        TraceEvent {
            name: Box::from(name),
            track,
            ts_ns,
            end,
            self_ns: if end { 7 } else { 0 },
            alloc: if end { 2 } else { 0 },
        }
    }

    #[test]
    fn export_is_valid_and_counts_spans() {
        let events = vec![
            ev("outer", 1, 0, false),
            ev("inner", 1, 100, false),
            ev("task", 2, 150, false),
            ev("inner", 1, 200, true),
            ev("task", 2, 250, true),
            ev("outer", 1, 300, true),
        ];
        let text = chrome_trace(&events, "unit-test");
        let stats = validate(&text).expect("valid trace");
        assert_eq!(
            stats,
            TraceStats {
                spans: 3,
                tracks: 2
            }
        );
        assert!(text.contains("\"self_ns\":7"));
        assert!(text.contains("unit-test"));
    }

    #[test]
    fn truncated_tail_is_repaired() {
        // An end event lost to the cap: the dangling begin is closed at
        // the track's last timestamp and the document stays balanced.
        let events = vec![
            ev("outer", 1, 0, false),
            ev("inner", 1, 100, false),
            ev("inner", 1, 200, true),
        ];
        let text = chrome_trace(&events, "truncated");
        let stats = validate(&text).expect("repaired trace still valid");
        assert_eq!(stats.spans, 2);
        assert!(text.contains("\"truncated\":true"));
        // An orphan end (begin truncated) is dropped, not emitted.
        let orphan = vec![ev("ghost", 3, 50, true)];
        let stats = validate(&chrome_trace(&orphan, "orphan")).unwrap();
        assert_eq!(stats.spans, 0);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        // Unbalanced: B without E.
        let unbalanced = r#"{"traceEvents":[
            {"name":"x","cat":"span","ph":"B","pid":1,"tid":1,"ts":1.0}
        ]}"#;
        assert!(validate(unbalanced).is_err());
        // Non-monotone timestamps on one track.
        let backwards = r#"{"traceEvents":[
            {"name":"x","cat":"span","ph":"B","pid":1,"tid":1,"ts":5.0},
            {"name":"x","cat":"span","ph":"E","pid":1,"tid":1,"ts":4.0}
        ]}"#;
        assert!(validate(backwards).is_err());
        // Mismatched nesting.
        let crossed = r#"{"traceEvents":[
            {"name":"a","cat":"span","ph":"B","pid":1,"tid":1,"ts":1.0},
            {"name":"b","cat":"span","ph":"E","pid":1,"tid":1,"ts":2.0}
        ]}"#;
        assert!(validate(crossed).is_err());
    }

    #[test]
    fn capture_roundtrip_through_registry() {
        let _g = crate::tests::LOCK.lock().unwrap();
        crate::enable_events();
        crate::reset();
        {
            let _outer = crate::span("trace.outer");
            let _inner = crate::span("trace.inner");
        }
        let events = crate::take_events();
        crate::disable();
        crate::reset();
        assert_eq!(events.len(), 4);
        assert!(!events[0].end && events[0].name.as_ref() == "trace.outer");
        let text = chrome_trace(&events, "roundtrip");
        let stats = validate(&text).expect("valid");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.tracks, 1);
    }
}
