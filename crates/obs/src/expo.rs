//! Prometheus text exposition (v0.0.4) for the live registry: the body
//! behind `GET /metrics`, plus the in-repo parser/validator that the
//! tests and `dsa obs lint` use to check scraped bodies.
//!
//! The registry's dotted instrument names (`cache.hit`,
//! `attacks.cell_ns`) are not legal Prometheus metric names
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`), so every instrument is **mangled**:
//! prefixed with the `dsa_` namespace and every illegal character mapped
//! to `_`. Mangling is many-to-one in principle (`cache.hit` and
//! `cache-hit` would collide); [`mangle_all`] therefore collision-checks
//! a whole name set at once, and the exposition renderer refuses to emit
//! a body with ambiguous names rather than silently merging two
//! instruments. A unit test pins the full instrument taxonomy from the
//! bench README as collision-free.
//!
//! Mapping of the registry onto exposition types, all values chosen so a
//! scrape mid-run is **monotone** (no resets, no last-value flapping
//! except gauges, which are gauges):
//!
//! - counter `cache.hit` → `dsa_cache_hit_total` (TYPE `counter`);
//! - gauge `evo.cells_per_sec` → `dsa_evo_cells_per_sec` (TYPE `gauge`);
//! - histogram `attacks.cell_ns` → `dsa_attacks_cell_ns` (TYPE
//!   `histogram`): cumulative `_bucket{le="..."}` series derived from
//!   the log2 buckets (bucket `k` covers integers `≤ 2^k − 1`, so the
//!   `le` bounds are exact), then `_sum` and `_count`;
//! - span `swarm.run` → three counters:
//!   `dsa_span_swarm_run_calls_total`, `dsa_span_swarm_run_time_ns_total`
//!   (total wall time) and `dsa_span_swarm_run_self_ns_total` (self
//!   time).
//!
//! Families render in sorted-name order within each registry section
//! (counters, gauges, histograms, spans), so two scrapes of the same
//! registry shape are line-for-line comparable — [`check_monotone`]
//! exploits exactly that.

use crate::metrics::Hist;
use crate::report::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The metric-name namespace every exposed instrument lives under.
pub const NAMESPACE: &str = "dsa";

/// The Content-Type of the text exposition format, version 0.0.4.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Mangles one instrument name into a legal Prometheus metric name:
/// `dsa_` + the name with every character outside `[a-zA-Z0-9_:]`
/// replaced by `_`. The namespace prefix guarantees the first character
/// is legal regardless of the input.
#[must_use]
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(NAMESPACE.len() + 1 + name.len());
    out.push_str(NAMESPACE);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Mangles a whole set of instrument names, collision-checked: two
/// distinct instruments may not map to the same exposed name (the scrape
/// would silently merge them).
///
/// # Errors
///
/// Returns an error naming the first pair of instruments whose mangled
/// names collide.
pub fn mangle_all<'a, I>(names: I) -> Result<BTreeMap<String, String>, String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut out: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeMap<String, String> = BTreeMap::new();
    for name in names {
        let mangled = mangle(name);
        if let Some(prior) = seen.get(&mangled) {
            if prior != name {
                return Err(format!(
                    "instruments {prior:?} and {name:?} both expose as {mangled:?}"
                ));
            }
            continue;
        }
        seen.insert(mangled.clone(), name.to_string());
        out.insert(name.to_string(), mangled);
    }
    Ok(out)
}

/// Whether `name` is a legal Prometheus metric name.
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn help_line(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Serializes one `f64` sample value: integers bare, non-finite values
/// in Prometheus spelling (`+Inf`/`-Inf`/`NaN`).
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        crate::json::num(v)
    }
}

fn render_hist(out: &mut String, name: &str, h: &Hist) {
    // Cumulative buckets up to the highest non-empty one. Log2 bucket k
    // holds integers in [2^(k-1), 2^k) — everything ≤ 2^k − 1 — so the
    // inclusive `le` bound of bucket k is exactly 2^k − 1 (bucket 0, the
    // zeros, has le="0").
    let top = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |k| k.min(62));
    let mut cum = 0u64;
    for (k, &c) in h.buckets.iter().enumerate().take(top + 1) {
        cum += c;
        let le = if k == 0 { 0 } else { (1u64 << k) - 1 };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a registry snapshot as a Prometheus text exposition body.
/// Deterministic: families appear in sorted instrument order within each
/// section. An empty snapshot renders as an empty body (a legal
/// exposition).
///
/// # Errors
///
/// Returns an error when two registered instruments mangle to the same
/// exposed metric name (see [`mangle_all`]).
pub fn render(snap: &Snapshot) -> Result<String, String> {
    let names = mangle_all(
        snap.counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.hists.keys())
            .chain(snap.spans.keys())
            .map(String::as_str),
    )?;
    let mangled = |n: &str| names[n].clone();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let m = format!("{}_total", mangled(name));
        help_line(
            &mut out,
            &m,
            "counter",
            &format!("events counted by instrument `{name}`"),
        );
        let _ = writeln!(out, "{m} {v}");
    }
    for (name, v) in &snap.gauges {
        let m = mangled(name);
        help_line(
            &mut out,
            &m,
            "gauge",
            &format!("last value of gauge `{name}`"),
        );
        let _ = writeln!(out, "{m} {}", sample(*v));
    }
    for (name, h) in &snap.hists {
        let m = mangled(name);
        help_line(
            &mut out,
            &m,
            "histogram",
            &format!("log2-bucketed distribution of instrument `{name}`"),
        );
        render_hist(&mut out, &m, h);
    }
    for (name, s) in &snap.spans {
        let base = format!(
            "{}_span_{}",
            NAMESPACE,
            &mangled(name)[NAMESPACE.len() + 1..]
        );
        let calls = format!("{base}_calls_total");
        help_line(
            &mut out,
            &calls,
            "counter",
            &format!("invocations of span `{name}`"),
        );
        let _ = writeln!(out, "{calls} {}", s.dur.count);
        let time = format!("{base}_time_ns_total");
        help_line(
            &mut out,
            &time,
            "counter",
            &format!("total wall nanoseconds in span `{name}`"),
        );
        let _ = writeln!(out, "{time} {}", s.dur.sum);
        let self_t = format!("{base}_self_ns_total");
        help_line(
            &mut out,
            &self_t,
            "counter",
            &format!("self (total minus children) nanoseconds in span `{name}`"),
        );
        let _ = writeln!(out, "{self_t} {}", s.self_ns);
    }
    Ok(out)
}

// ---- parsing / validation ---------------------------------------------------

/// One metric family parsed back out of an exposition body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Family {
    /// Declared TYPE (`counter`, `gauge`, `histogram`, ...).
    pub kind: String,
    /// The `# HELP` text preceding the TYPE declaration, when present.
    pub help: Option<String>,
    /// Samples: full series key (name + label set, as written) → value.
    pub samples: Vec<(String, f64)>,
}

/// A parsed exposition body: family name → [`Family`], in document order
/// inside each family.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Expo {
    /// Families by base metric name.
    pub families: BTreeMap<String, Family>,
    /// Family names in document order — what makes [`Expo::render`]
    /// reproduce a parsed body byte-for-byte.
    pub order: Vec<String>,
}

impl Expo {
    /// Total number of samples across families.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.families.values().map(|f| f.samples.len()).sum()
    }

    /// Looks up one sample value by its full series key (name including
    /// any label set, exactly as written in the body).
    #[must_use]
    pub fn value(&self, series: &str) -> Option<f64> {
        let base = series.split('{').next().unwrap_or(series);
        let family = self.families.get(base).or_else(|| {
            // `_bucket`/`_sum`/`_count` series belong to their histogram
            // family.
            ["_bucket", "_sum", "_count", "_total"]
                .iter()
                .find_map(|suffix| base.strip_suffix(suffix))
                .and_then(|stem| self.families.get(stem))
        })?;
        family
            .samples
            .iter()
            .find(|(k, _)| k == series)
            .map(|(_, v)| *v)
    }

    /// Renders the parsed document back into exposition text: families
    /// in document order, each as its HELP line (when one was parsed),
    /// its TYPE line, then its samples in document order. For any body
    /// produced by [`render`] (all sample values exactly representable
    /// as `f64`), `parse` → `render` reproduces the input byte for byte
    /// — the property the round-trip fuzz test pins.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for name in &self.order {
            let Some(family) = self.families.get(name) else {
                continue;
            };
            if let Some(help) = &family.help {
                let _ = writeln!(out, "# HELP {name} {help}");
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (series, v) in &family.samples {
                let _ = writeln!(out, "{series} {}", sample(*v));
            }
        }
        out
    }
}

/// The base family name a sample series belongs to, given the declared
/// families: strips label sets and the histogram/counter suffixes.
fn family_of<'a>(name: &'a str, declared: &BTreeMap<String, Family>) -> Option<&'a str> {
    if declared.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if declared.get(stem).is_some_and(|f| f.kind == "histogram") {
                return Some(stem);
            }
        }
    }
    None
}

/// Parses and validates a text exposition body. Enforced invariants:
///
/// - every line is a comment, blank, or `series value`;
/// - every sample belongs to a family declared by a preceding `# TYPE`;
/// - metric and family names are legal Prometheus names;
/// - no duplicate series;
/// - histogram families carry cumulative buckets ending in `le="+Inf"`,
///   and their `_count` equals the `+Inf` bucket.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse(body: &str) -> Result<Expo, String> {
    let mut expo = Expo::default();
    let mut seen_series: BTreeMap<String, ()> = BTreeMap::new();
    let mut pending_help: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, line) in body.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {n}: illegal metric name {name:?}"));
            }
            if expo.families.contains_key(name) {
                return Err(format!("line {n}: duplicate TYPE for {name:?}"));
            }
            expo.order.push(name.to_string());
            expo.families.insert(
                name.to_string(),
                Family {
                    kind: kind.to_string(),
                    help: pending_help.remove(name),
                    samples: Vec::new(),
                },
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            // Remembered so a following TYPE line attaches it — what
            // lets Expo::render reproduce the document.
            if let Some((name, text)) = rest.split_once(' ') {
                pending_help.insert(name.to_string(), text.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: expected `series value`"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: bad sample value {v:?}"))?,
        };
        let name = series.split('{').next().unwrap_or(series);
        if !valid_metric_name(name) {
            return Err(format!("line {n}: illegal metric name {name:?}"));
        }
        let Some(family) = family_of(name, &expo.families) else {
            return Err(format!("line {n}: sample {name:?} has no preceding TYPE"));
        };
        if seen_series.insert(series.to_string(), ()).is_some() {
            return Err(format!("line {n}: duplicate series {series:?}"));
        }
        let family = family.to_string();
        expo.families
            .get_mut(&family)
            .expect("family exists")
            .samples
            .push((series.to_string(), value));
    }
    // Histogram shape checks.
    for (name, family) in &expo.families {
        if family.kind != "histogram" {
            continue;
        }
        let buckets: Vec<f64> = family
            .samples
            .iter()
            .filter(|(k, _)| k.starts_with(&format!("{name}_bucket")))
            .map(|(_, v)| *v)
            .collect();
        if buckets.is_empty() {
            return Err(format!("histogram {name:?} has no buckets"));
        }
        if buckets.windows(2).any(|w| w[1] < w[0]) {
            return Err(format!("histogram {name:?} buckets are not cumulative"));
        }
        let inf = expo
            .value(&format!("{name}_bucket{{le=\"+Inf\"}}"))
            .ok_or_else(|| format!("histogram {name:?} lacks the +Inf bucket"))?;
        let count = expo
            .value(&format!("{name}_count"))
            .ok_or_else(|| format!("histogram {name:?} lacks _count"))?;
        if (inf - count).abs() > 0.0 {
            return Err(format!(
                "histogram {name:?}: _count {count} != +Inf bucket {inf}"
            ));
        }
    }
    Ok(expo)
}

/// Checks that every monotone series (counters; histogram buckets,
/// sums and counts) in `prev` is ≤ its value in `cur` — the invariant
/// two successive scrapes of one live registry must satisfy. Gauges are
/// exempt. Series present only in `cur` (new instruments) are fine;
/// series that disappeared are an error (a registry reset mid-run).
///
/// # Errors
///
/// Returns a message naming the first series that decreased or vanished.
pub fn check_monotone(prev: &Expo, cur: &Expo) -> Result<(), String> {
    for family in prev.families.values() {
        if family.kind == "gauge" {
            continue;
        }
        for (series, &old) in family.samples.iter().map(|(k, v)| (k, v)) {
            let Some(new) = cur.value(series) else {
                return Err(format!("series {series:?} vanished between scrapes"));
            };
            if new < old {
                return Err(format!(
                    "series {series:?} decreased between scrapes: {old} -> {new}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStats;

    /// The full instrument taxonomy from the bench README ("Metric
    /// naming" + "Span taxonomy"): the set the registry actually records
    /// across every engine, sweep and cache. Pinned here so a future
    /// instrument whose name mangles into an existing one fails loudly.
    const TAXONOMY: &[&str] = &[
        "cache.hit",
        "cache.miss.absent",
        "cache.miss.unstamped",
        "cache.miss.domain",
        "cache.miss.space",
        "cache.miss.scale",
        "cache.miss.params",
        "cache.miss.seed",
        "cache.miss.n",
        "cache.miss.attack",
        "cache.miss.evo",
        "cache.miss.attrib",
        "cache.miss.rows",
        "cache.store",
        "cache.read_bytes",
        "cache.write_bytes",
        "parallel.jobs",
        "parallel.tasks",
        "parallel.worker_busy_ns",
        "parallel.busy_max_ns",
        "parallel.busy_mean_ns",
        "parallel.imbalance",
        "attacks.cell_ns",
        "attacks.rows_per_sec",
        "attacks.sweep",
        "evo.cell_ns",
        "evo.cells_per_sec",
        "evo.matrix",
        "attrib.row_ns",
        "attrib.rows_per_sec",
        "attrib.design",
        "swarm.run",
        "swarm.setup",
        "swarm.rounds",
        "swarm.payoff",
        "gossip.run",
        "gossip.setup",
        "gossip.rounds",
        "gossip.payoff",
        "rep.run",
        "rep.setup",
        "rep.rounds",
        "rep.payoff",
        "btsim.run",
        "btsim.setup",
        "btsim.rounds",
        "btsim.payoff",
        "pra.performance",
        "pra.robustness",
        "pra.aggressiveness",
        "obs.cache_events_dropped",
        "obs.trace_events_dropped",
        "serve.requests",
        "serve.http_errors",
        "serve.request_ns",
        "mem.rss_bytes",
        "mem.rss_peak_bytes",
        "mem.arena_peak_bytes",
        "mem.arena.swarm_bytes",
        "mem.arena.gossip_bytes",
        "mem.arena.rep_bytes",
        "mem.arena.btsim_bytes",
        "mem.alloc.count",
        "mem.alloc.bytes",
        "mem.alloc.peak_live_bytes",
        "mem.run_allocs.swarm",
        "mem.run_allocs.gossip",
        "mem.run_allocs.rep",
        "mem.run_allocs.btsim",
    ];

    #[test]
    fn full_taxonomy_mangles_without_collisions() {
        let map = mangle_all(TAXONOMY.iter().copied()).expect("no collisions");
        assert_eq!(map.len(), TAXONOMY.len());
        for mangled in map.values() {
            assert!(valid_metric_name(mangled), "illegal name {mangled:?}");
            assert!(mangled.starts_with("dsa_"));
        }
        // Dots and dashes both map to `_`.
        assert_eq!(mangle("cache.miss.seed"), "dsa_cache_miss_seed");
        assert_eq!(mangle("rows-per-sec"), "dsa_rows_per_sec");
        assert_eq!(mangle("9weird name!"), "dsa_9weird_name_");
    }

    #[test]
    fn colliding_names_are_rejected() {
        let err = mangle_all(["cache.hit", "cache-hit"]).unwrap_err();
        assert!(err.contains("dsa_cache_hit"), "{err}");
        // The same name twice is not a collision.
        assert!(mangle_all(["cache.hit", "cache.hit"]).is_ok());
    }

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache.hit".into(), 3);
        snap.counters.insert("cache.miss.seed".into(), 1);
        snap.gauges.insert("evo.cells_per_sec".into(), 1234.5);
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(900);
        snap.hists.insert("attacks.cell_ns".into(), h);
        let mut s = SpanStats::default();
        s.dur.record(1_000_000);
        s.self_ns = 800_000;
        snap.spans.insert("swarm.run".into(), s);
        snap
    }

    #[test]
    fn rendered_body_parses_and_validates() {
        let body = render(&sample_snapshot()).unwrap();
        let expo = parse(&body).unwrap();
        assert_eq!(expo.value("dsa_cache_hit_total"), Some(3.0));
        assert_eq!(expo.value("dsa_evo_cells_per_sec"), Some(1234.5));
        assert_eq!(expo.families["dsa_attacks_cell_ns"].kind, "histogram");
        // 0 lands in le="0"; 1 in le="1"; 900 in bucket 10 (le="1023").
        assert_eq!(
            expo.value("dsa_attacks_cell_ns_bucket{le=\"0\"}"),
            Some(1.0)
        );
        assert_eq!(
            expo.value("dsa_attacks_cell_ns_bucket{le=\"1\"}"),
            Some(2.0)
        );
        assert_eq!(
            expo.value("dsa_attacks_cell_ns_bucket{le=\"1023\"}"),
            Some(3.0)
        );
        assert_eq!(
            expo.value("dsa_attacks_cell_ns_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        assert_eq!(expo.value("dsa_attacks_cell_ns_sum"), Some(901.0));
        assert_eq!(expo.value("dsa_attacks_cell_ns_count"), Some(3.0));
        assert_eq!(expo.value("dsa_span_swarm_run_calls_total"), Some(1.0));
        assert_eq!(
            expo.value("dsa_span_swarm_run_self_ns_total"),
            Some(800_000.0)
        );
        // Empty snapshot: legal empty body.
        assert_eq!(render(&Snapshot::default()).unwrap(), "");
        assert_eq!(parse("").unwrap().sample_count(), 0);
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(render(&snap).unwrap(), render(&snap).unwrap());
    }

    #[test]
    fn parsed_documents_render_back_byte_identically() {
        // Property fuzz (deterministic LCG, same style as the serve
        // request-parser fuzz): over random registry snapshots,
        // render → parse → render reproduces the body byte for byte.
        // Order, HELP text, label sets and value formatting all survive
        // the round trip.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..4000 {
            let mut snap = Snapshot::default();
            // Draw a random subset of the taxonomy and assign each
            // drawn name a random instrument kind and random values
            // (all exactly representable as f64, as real registry
            // values are).
            let picks = 1 + (next() % 8) as usize;
            let mut used = std::collections::BTreeSet::new();
            for _ in 0..picks {
                let name = TAXONOMY[(next() as usize) % TAXONOMY.len()].to_string();
                // One kind per name, as the real registry guarantees —
                // a name in two sections would declare TYPE twice.
                if !used.insert(name.clone()) {
                    continue;
                }
                match next() % 4 {
                    0 => {
                        snap.counters.insert(name, u64::from(next()));
                    }
                    1 => {
                        let v = f64::from(next()) + f64::from(next() % 2) * 0.5;
                        snap.gauges.insert(name, v);
                    }
                    2 => {
                        let h = snap.hists.entry(name).or_default();
                        for _ in 0..(1 + next() % 5) {
                            h.record(u64::from(next()));
                        }
                    }
                    _ => {
                        let s = snap.spans.entry(name).or_default();
                        s.dur.record(u64::from(next()));
                        s.self_ns = u64::from(next());
                    }
                }
            }
            let body = render(&snap).expect("taxonomy names never collide");
            let expo = parse(&body)
                .unwrap_or_else(|e| panic!("round {round}: rendered body invalid: {e}"));
            assert_eq!(
                expo.render(),
                body,
                "round {round}: re-render drifted from the original body"
            );
        }
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        for (bad, why) in [
            ("dsa_x 1\n", "sample without TYPE"),
            ("# TYPE dsa_x counter\ndsa_x one\n", "bad value"),
            ("# TYPE 9x counter\n9x 1\n", "illegal name"),
            (
                "# TYPE dsa_x counter\ndsa_x 1\ndsa_x 1\n",
                "duplicate series",
            ),
            (
                "# TYPE dsa_h histogram\ndsa_h_sum 1\ndsa_h_count 1\n",
                "no buckets",
            ),
            (
                "# TYPE dsa_h histogram\ndsa_h_bucket{le=\"1\"} 5\n\
                 dsa_h_bucket{le=\"+Inf\"} 3\ndsa_h_sum 1\ndsa_h_count 3\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE dsa_h histogram\ndsa_h_bucket{le=\"+Inf\"} 3\n\
                 dsa_h_sum 1\ndsa_h_count 4\n",
                "_count disagrees with +Inf",
            ),
        ] {
            assert!(parse(bad).is_err(), "accepted {why}: {bad:?}");
        }
    }

    #[test]
    fn monotone_check_accepts_growth_and_rejects_resets() {
        let mut a = sample_snapshot();
        let body_a = render(&a).unwrap();
        *a.counters.get_mut("cache.hit").unwrap() += 5;
        a.hists.get_mut("attacks.cell_ns").unwrap().record(7);
        a.gauges.insert("evo.cells_per_sec".into(), 1.0); // gauges may fall
        let body_b = render(&a).unwrap();
        let (pa, pb) = (parse(&body_a).unwrap(), parse(&body_b).unwrap());
        check_monotone(&pa, &pb).unwrap();
        // Reversed: the counter decreased.
        let err = check_monotone(&pb, &pa).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
        // A vanished series is a registry reset.
        let err = check_monotone(&pa, &Expo::default()).unwrap_err();
        assert!(err.contains("vanished"), "{err}");
    }
}
