//! Global metric registries: counters, gauges, log2 histograms.
//!
//! Counters count *events* (never time), so their totals are a pure
//! function of what the program did — bit-identical across thread counts.
//! Gauges hold the last value written (throughput readings, imbalance
//! ratios). Histograms bucket observed values by their binary magnitude:
//! bucket `k` covers `[2^(k-1), 2^k)`, bucket 0 holds zeros — 64 buckets
//! span the full `u64` range, plenty for nanosecond latencies.
//!
//! All registries sit behind one mutex each; recording from parallel
//! workers serializes on it, which is fine at the stack's event rates
//! (per cache query, per sweep cell, per worker) and keeps merges
//! trivially deterministic. The hot path when disabled is a single
//! relaxed atomic load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static TRACE_ON: AtomicBool = AtomicBool::new(false);
static EVENTS_ON: AtomicBool = AtomicBool::new(false);

/// Enables the metric registries (counters, gauges, histograms) — the
/// `--metrics` flag.
pub fn enable_metrics() {
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Enables metrics *and* span timing — the `--trace` flag.
pub fn enable_trace() {
    METRICS_ON.store(true, Ordering::Relaxed);
    TRACE_ON.store(true, Ordering::Relaxed);
}

/// Enables metrics, span timing *and* raw begin/end event capture — the
/// expensive mode behind `dsa obs trace`. Every span open/close appends
/// one in-memory event (per-thread buffers, size-capped globally), which
/// the Chrome-trace exporter drains via [`crate::take_events`].
pub fn enable_events() {
    enable_trace();
    EVENTS_ON.store(true, Ordering::Relaxed);
}

/// Turns all recording back off (registries keep their contents until
/// [`crate::reset`]).
pub fn disable() {
    METRICS_ON.store(false, Ordering::Relaxed);
    TRACE_ON.store(false, Ordering::Relaxed);
    EVENTS_ON.store(false, Ordering::Relaxed);
}

/// Whether metric recording is on.
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Whether span timing is on (implies [`metrics_enabled`]).
#[must_use]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Whether raw begin/end event capture is on (implies [`trace_enabled`]).
#[must_use]
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// A log2-bucketed distribution of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// `buckets[k]` counts observations in `[2^(k-1), 2^k)`; `buckets[0]`
    /// counts zeros; the top bucket absorbs everything ≥ `2^62`.
    pub buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Hist {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(63)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Folds another distribution into this one (order-independent).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean observed value (0 while empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0,1]`, clamped) from the
    /// log2 buckets: the target rank is located by cumulative count,
    /// interpolated linearly inside its bucket, and clamped to the
    /// observed `[min, max]` — so single-valued histograms answer
    /// exactly, and no estimate can leave the observed range. Precision
    /// is otherwise bucket-limited (a factor-of-two band). Empty
    /// histograms answer 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cum as f64;
            cum += c;
            if cum as f64 >= target {
                let lo = if k == 0 { 0u64 } else { 1u64 << (k - 1) };
                let hi = if k == 0 {
                    0u64
                } else if k >= 63 {
                    u64::MAX
                } else {
                    1u64 << k
                };
                let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v.round() as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: the (p50, p95, p99) triple the journal stores.
    #[must_use]
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// Whether an instrument's *sample counts* are a pure function of the
/// work (the default) or legitimately vary with the thread count. The
/// bit-identity test excludes `ThreadDependent` instruments by tag
/// instead of by name, so a future thread-dependent instrument that is
/// not tagged fails the test loudly rather than silently passing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetClass {
    /// Counts are bit-identical across thread counts.
    #[default]
    Deterministic,
    /// Sample count depends on the worker count (e.g. one observation
    /// per worker).
    ThreadDependent,
}

static COUNTERS: Mutex<BTreeMap<Box<str>, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<Box<str>, f64>> = Mutex::new(BTreeMap::new());
static HISTS: Mutex<BTreeMap<Box<str>, Hist>> = Mutex::new(BTreeMap::new());
static CLASSES: Mutex<BTreeMap<Box<str>, DetClass>> = Mutex::new(BTreeMap::new());

/// Increments a counter by 1. A no-op unless metrics are enabled.
pub fn incr(name: &str) {
    add(name, 1);
}

/// Adds `n` to a counter. A no-op unless metrics are enabled.
pub fn add(name: &str, n: u64) {
    if !metrics_enabled() {
        return;
    }
    let mut map = COUNTERS.lock().expect("counter registry poisoned");
    if let Some(c) = map.get_mut(name) {
        *c += n;
    } else {
        map.insert(name.into(), n);
    }
}

/// Sets a gauge to its latest reading. A no-op unless metrics are enabled.
pub fn gauge_set(name: &str, value: f64) {
    if !metrics_enabled() {
        return;
    }
    let mut map = GAUGES.lock().expect("gauge registry poisoned");
    if let Some(g) = map.get_mut(name) {
        *g = value;
    } else {
        map.insert(name.into(), value);
    }
}

/// Raises a gauge to `value` when that is higher than its current
/// reading (insert-or-max): the high-water-mark primitive behind the
/// `mem.arena*` and `mem.rss_peak_bytes` gauges. Unlike [`gauge_set`],
/// concurrent writers can never lower the mark, so the result is
/// independent of worker scheduling. A no-op unless metrics are enabled.
pub fn gauge_max(name: &str, value: f64) {
    if !metrics_enabled() {
        return;
    }
    let mut map = GAUGES.lock().expect("gauge registry poisoned");
    if let Some(g) = map.get_mut(name) {
        if value > *g {
            *g = value;
        }
    } else {
        map.insert(name.into(), value);
    }
}

/// Records one observation into a histogram. A no-op unless metrics are
/// enabled.
pub fn observe(name: &str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    let mut map = HISTS.lock().expect("histogram registry poisoned");
    if let Some(h) = map.get_mut(name) {
        h.record(value);
    } else {
        let mut h = Hist::default();
        h.record(value);
        map.insert(name.into(), h);
    }
}

/// Records one observation into a histogram whose *sample count* varies
/// with the thread count (e.g. one sample per worker), tagging the
/// instrument [`DetClass::ThreadDependent`] so the bit-identity tests
/// exclude it structurally instead of by hard-coded name. A no-op unless
/// metrics are enabled.
pub fn observe_thread_dependent(name: &str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    {
        let mut classes = CLASSES.lock().expect("class registry poisoned");
        if !classes.contains_key(name) {
            classes.insert(name.into(), DetClass::ThreadDependent);
        }
    }
    observe(name, value);
}

/// The determinism class an instrument was recorded under. Instruments
/// never recorded through [`observe_thread_dependent`] (including ones
/// that have recorded nothing yet) are [`DetClass::Deterministic`].
#[must_use]
pub fn instrument_class(name: &str) -> DetClass {
    CLASSES
        .lock()
        .expect("class registry poisoned")
        .get(name)
        .copied()
        .unwrap_or_default()
}

pub(crate) fn counters_snapshot() -> BTreeMap<String, u64> {
    let map = COUNTERS.lock().expect("counter registry poisoned");
    map.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

pub(crate) fn gauges_snapshot() -> BTreeMap<String, f64> {
    let map = GAUGES.lock().expect("gauge registry poisoned");
    map.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

pub(crate) fn hists_snapshot() -> BTreeMap<String, Hist> {
    let map = HISTS.lock().expect("histogram registry poisoned");
    map.iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

pub(crate) fn reset_metrics() {
    COUNTERS.lock().expect("counter registry poisoned").clear();
    GAUGES.lock().expect("gauge registry poisoned").clear();
    HISTS.lock().expect("histogram registry poisoned").clear();
    CLASSES.lock().expect("class registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let h = Hist::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.percentiles(), (0, 0, 0));
    }

    #[test]
    fn quantiles_of_single_bucket_are_exact() {
        // All observations share one value: clamping to [min, max]
        // collapses the bucket's factor-of-two band to the exact answer.
        let mut h = Hist::default();
        for _ in 0..7 {
            h.record(5);
        }
        assert_eq!(h.percentiles(), (5, 5, 5));
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn quantiles_pin_known_uniform_sample() {
        // 1..=100: p50 interpolates inside the [32,64) bucket; the tail
        // quantiles overshoot their bucket's upper band and clamp to the
        // observed max.
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 51);
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantiles_pin_known_bimodal_sample() {
        // 19 fast observations and one slow outlier: p50/p95 stay in the
        // fast bucket, p99 lands (interpolated) in the outlier's bucket.
        let mut h = Hist::default();
        for _ in 0..19 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.50), 12);
        assert_eq!(h.quantile(0.95), 16);
        assert_eq!(h.quantile(0.99), 922);
        // Out-of-range q clamps.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn thread_dependent_recording_tags_the_instrument() {
        let _g = crate::tests::LOCK.lock().unwrap();
        enable_metrics();
        crate::reset();
        observe("det.hist", 1);
        observe_thread_dependent("td.hist", 2);
        assert_eq!(instrument_class("det.hist"), DetClass::Deterministic);
        assert_eq!(instrument_class("td.hist"), DetClass::ThreadDependent);
        // Unknown instruments default to deterministic.
        assert_eq!(instrument_class("never.seen"), DetClass::Deterministic);
        // Both recorded into the ordinary histogram registry.
        let snap = crate::snapshot();
        assert_eq!(snap.hists["td.hist"].count, 1);
        crate::reset();
        assert_eq!(instrument_class("td.hist"), DetClass::Deterministic);
        disable();
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let _g = crate::tests::LOCK.lock().unwrap();
        enable_metrics();
        crate::reset();
        gauge_max("test.peak", 10.0);
        gauge_max("test.peak", 4.0); // lower: ignored
        gauge_max("test.peak", 12.0); // higher: raises the mark
        let snap = crate::snapshot();
        assert_eq!(snap.gauges["test.peak"], 12.0);
        crate::reset();
        disable();
        gauge_max("test.peak", 99.0); // disabled: no-op
        assert!(crate::snapshot().gauges.is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in [1u64, 5, 9000] {
            a.record(v);
        }
        for v in [0u64, 7, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
        assert_eq!(ab.min, 0);
        assert_eq!(ab.max, 1 << 40);
    }
}
