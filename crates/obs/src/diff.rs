//! Run diffing: `dsa obs diff <run-a> <run-b>` rendering.
//!
//! Compares two journal records span-by-span (self time) and
//! metric-by-metric, printing absolute and relative deltas. Changes at
//! or beyond the highlight threshold (percent, configurable with
//! `--threshold`) are marked with `!`; instruments present in only one
//! run are listed as added/removed. Tiny spans are suppressed below a
//! noise floor so smoke-scale diffs aren't wall-to-wall jitter.

use crate::journal::JournalRecord;
use crate::json;
use std::fmt::Write as _;

/// Self-time noise floor: spans under this in *both* runs are omitted
/// (sub-100µs self times at smoke scale are scheduler jitter).
const SPAN_FLOOR_NS: u64 = 100_000;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn pct(a: f64, b: f64) -> Option<f64> {
    if a == 0.0 {
        None
    } else {
        Some((b / a - 1.0) * 100.0)
    }
}

fn delta_cols(a: f64, b: f64, threshold_pct: f64) -> String {
    match pct(a, b) {
        Some(p) => {
            let mark = if p.abs() >= threshold_pct { " !" } else { "" };
            format!("{p:>+8.1}%{mark}")
        }
        None => "       new".to_string(),
    }
}

/// Renders the diff of two journal records.
#[must_use]
pub fn render(a: &JournalRecord, b: &JournalRecord, threshold_pct: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run diff: {} -> {}", a.meta.run_id, b.meta.run_id);
    let _ = writeln!(out, "  a: {} `{}`", a.meta.binary, a.meta.command);
    let _ = writeln!(out, "  b: {} `{}`", b.meta.binary, b.meta.command);
    if a.meta.command != b.meta.command || a.meta.scale != b.meta.scale {
        let _ = writeln!(
            out,
            "  note: commands/scales differ; deltas may not be meaningful"
        );
    }
    let _ = writeln!(
        out,
        "  wall: {}ms -> {}ms  {}",
        a.wall_ms,
        b.wall_ms,
        delta_cols(a.wall_ms as f64, b.wall_ms as f64, threshold_pct)
    );
    let _ = writeln!(out, "  highlight threshold: ±{threshold_pct}%");

    // Spans by self time.
    let mut names: Vec<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let _ = writeln!(out, "\nspans (self time):");
    let _ = writeln!(
        out,
        "  {:<36} {:>10} {:>10} {:>10}",
        "span", "a", "b", "delta"
    );
    let mut shown = 0usize;
    for name in &names {
        match (a.spans.get(*name), b.spans.get(*name)) {
            (Some(sa), Some(sb)) => {
                if sa.self_ns < SPAN_FLOOR_NS && sb.self_ns < SPAN_FLOOR_NS {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<36} {:>10} {:>10} {:>10}",
                    name,
                    fmt_ns(sa.self_ns),
                    fmt_ns(sb.self_ns),
                    delta_cols(sa.self_ns as f64, sb.self_ns as f64, threshold_pct)
                );
                shown += 1;
            }
            (Some(sa), None) => {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>10} {:>10}   (removed)",
                    name,
                    fmt_ns(sa.self_ns),
                    "-"
                );
                shown += 1;
            }
            (None, Some(sb)) => {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>10} {:>10}   (added)",
                    name,
                    "-",
                    fmt_ns(sb.self_ns)
                );
                shown += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    if shown == 0 {
        let _ = writeln!(
            out,
            "  (no spans above the {} noise floor)",
            fmt_ns(SPAN_FLOOR_NS)
        );
    }

    // Counters: only changed ones.
    let mut names: Vec<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut lines = String::new();
    for name in &names {
        let va = a.counters.get(*name).copied();
        let vb = b.counters.get(*name).copied();
        if va == vb {
            continue;
        }
        let _ = writeln!(
            lines,
            "  {:<36} {:>10} {:>10} {:>10}",
            name,
            va.map_or_else(|| "-".to_string(), |v| v.to_string()),
            vb.map_or_else(|| "-".to_string(), |v| v.to_string()),
            match (va, vb) {
                (Some(x), Some(y)) => delta_cols(x as f64, y as f64, threshold_pct),
                _ => String::new(),
            }
        );
    }
    if lines.is_empty() {
        let _ = writeln!(out, "\ncounters: identical");
    } else {
        let _ = writeln!(out, "\ncounters (changed):");
        out.push_str(&lines);
    }

    // Histogram p95s.
    let mut names: Vec<&String> = a.hists.keys().chain(b.hists.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut lines = String::new();
    for name in &names {
        if let (Some(ha), Some(hb)) = (a.hists.get(*name), b.hists.get(*name)) {
            if ha.p95 == hb.p95 {
                continue;
            }
            let _ = writeln!(
                lines,
                "  {:<36} {:>10} {:>10} {:>10}",
                name,
                ha.p95,
                hb.p95,
                delta_cols(ha.p95 as f64, hb.p95 as f64, threshold_pct)
            );
        }
    }
    if !lines.is_empty() {
        let _ = writeln!(out, "\nhistograms (p95 changed):");
        out.push_str(&lines);
    }
    out
}

/// Serializes the diff of two journal records as one JSON document — the
/// body behind `GET /diff/<a>/<b>` and `dsa obs diff --json`. Same
/// content policy as [`render`]: spans below the noise floor in both
/// runs are omitted, unchanged counters and histogram p95s are omitted;
/// `pct` is `null` where the reference side is zero or missing.
#[must_use]
pub fn to_json(a: &JournalRecord, b: &JournalRecord, threshold_pct: f64) -> String {
    let opt_pct = |p: Option<f64>| p.map_or_else(|| "null".to_string(), json::num);
    let mut out = format!(
        "{{\"a\":\"{}\",\"b\":\"{}\",\"comparable\":{},\"threshold_pct\":{},\
         \"span_floor_ns\":{SPAN_FLOOR_NS},\
         \"wall_ms\":{{\"a\":{},\"b\":{},\"pct\":{}}}",
        json::escape(&a.meta.run_id),
        json::escape(&b.meta.run_id),
        a.meta.command == b.meta.command && a.meta.scale == b.meta.scale,
        json::num(threshold_pct),
        a.wall_ms,
        b.wall_ms,
        opt_pct(pct(a.wall_ms as f64, b.wall_ms as f64))
    );

    out.push_str(",\"spans\":[");
    let mut names: Vec<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut first = true;
    for name in &names {
        let (sa, sb) = (a.spans.get(*name), b.spans.get(*name));
        if sa.map_or(0, |s| s.self_ns) < SPAN_FLOOR_NS
            && sb.map_or(0, |s| s.self_ns) < SPAN_FLOOR_NS
        {
            continue;
        }
        let status = match (sa, sb) {
            (Some(_), Some(_)) => "both",
            (Some(_), None) => "removed",
            _ => "added",
        };
        let p = match (sa, sb) {
            (Some(x), Some(y)) => pct(x.self_ns as f64, y.self_ns as f64),
            _ => None,
        };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"status\":\"{status}\",\"a_self_ns\":{},\"b_self_ns\":{},\
             \"pct\":{}}}",
            json::escape(name),
            sa.map_or(0, |s| s.self_ns),
            sb.map_or(0, |s| s.self_ns),
            opt_pct(p)
        );
    }

    out.push_str("],\"counters\":[");
    let mut names: Vec<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut first = true;
    for name in &names {
        let (va, vb) = (a.counters.get(*name), b.counters.get(*name));
        if va == vb {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let p = match (va, vb) {
            (Some(&x), Some(&y)) => pct(x as f64, y as f64),
            _ => None,
        };
        let opt_u64 = |v: Option<&u64>| v.map_or_else(|| "null".to_string(), u64::to_string);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"a\":{},\"b\":{},\"pct\":{}}}",
            json::escape(name),
            opt_u64(va),
            opt_u64(vb),
            opt_pct(p)
        );
    }

    out.push_str("],\"hists_p95\":[");
    let mut names: Vec<&String> = a.hists.keys().chain(b.hists.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut first = true;
    for name in &names {
        if let (Some(ha), Some(hb)) = (a.hists.get(*name), b.hists.get(*name)) {
            if ha.p95 == hb.p95 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"a\":{},\"b\":{},\"pct\":{}}}",
                json::escape(name),
                ha.p95,
                hb.p95,
                opt_pct(pct(ha.p95 as f64, hb.p95 as f64))
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{HistSummary, JournalRecord, RunMeta, SpanSummary};
    use crate::json::Json;

    fn record(run: &str, swarm_self: u64, stores: u64) -> JournalRecord {
        let mut r = JournalRecord {
            meta: RunMeta {
                run_id: run.to_string(),
                binary: "experiments".to_string(),
                command: "experiments profile".to_string(),
                scale: Some("smoke".to_string()),
                threads: 4,
                ..RunMeta::default()
            },
            wall_ms: 1000,
            ..JournalRecord::default()
        };
        r.counters.insert("cache.store".to_string(), stores);
        r.counters.insert("cache.hit".to_string(), 3);
        r.hists.insert(
            "attacks.cell_ns".to_string(),
            HistSummary {
                count: 5,
                sum: 500,
                p50: 90,
                p95: 100 + stores,
                p99: 120,
            },
        );
        r.spans.insert(
            "swarm.run".to_string(),
            SpanSummary {
                count: 10,
                total_ns: swarm_self * 2,
                self_ns: swarm_self,
                p50: 1,
                p95: 2,
                p99: 3,
            },
        );
        r
    }

    #[test]
    fn highlights_spans_beyond_threshold() {
        let a = record("a", 100_000_000, 1);
        let b = record("b", 160_000_000, 1);
        let text = render(&a, &b, 25.0);
        assert!(text.contains("run diff: a -> b"));
        assert!(text.contains("swarm.run"));
        assert!(text.contains("+60.0% !"), "text:\n{text}");
        // Below-threshold change carries no mark.
        let c = record("c", 110_000_000, 1);
        let text = render(&a, &c, 25.0);
        assert!(text.contains("+10.0%"));
        assert!(!text.contains("+10.0% !"));
    }

    #[test]
    fn reports_added_removed_and_changed_instruments() {
        let mut a = record("a", 50_000_000, 1);
        let b = record("b", 50_000_000, 4);
        a.spans.insert(
            "old.phase".to_string(),
            SpanSummary {
                count: 1,
                total_ns: 9_000_000,
                self_ns: 9_000_000,
                ..SpanSummary::default()
            },
        );
        let text = render(&a, &b, 25.0);
        assert!(text.contains("(removed)"));
        assert!(text.contains("cache.store"));
        // Unchanged counters are not listed.
        assert!(!text.contains("cache.hit "), "text:\n{text}");
        assert!(text.contains("histograms (p95 changed):"));
    }

    #[test]
    fn identical_runs_render_quietly() {
        let a = record("a", 50_000_000, 1);
        let text = render(&a, &a, 25.0);
        assert!(text.contains("counters: identical"));
        assert!(!text.contains('!'), "no highlights expected:\n{text}");
    }

    #[test]
    fn json_diff_parses_and_carries_the_same_content() {
        let a = record("a", 100_000_000, 1);
        let b = record("b", 160_000_000, 4);
        let doc = crate::json::parse(&to_json(&a, &b, 25.0)).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_str), Some("a"));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("b"));
        assert_eq!(doc.get("comparable"), Some(&Json::Bool(true)));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        let swarm = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("swarm.run"))
            .unwrap();
        assert_eq!(swarm.get("status").and_then(Json::as_str), Some("both"));
        let p = swarm.get("pct").and_then(Json::as_f64).unwrap();
        assert!((p - 60.0).abs() < 1e-9, "pct {p}");
        // cache.store changed 1 -> 4; cache.hit (unchanged) is omitted.
        let counters = doc.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("cache.store")
        );
        // p95 changed with the store count; it must appear here too.
        let hists = doc.get("hists_p95").and_then(Json::as_arr).unwrap();
        assert_eq!(
            hists[0].get("name").and_then(Json::as_str),
            Some("attacks.cell_ns")
        );
        // Identical runs produce empty delta arrays.
        let doc = crate::json::parse(&to_json(&a, &a, 25.0)).unwrap();
        assert_eq!(doc.get("counters").and_then(Json::as_arr), Some(&[][..]));
        assert_eq!(doc.get("hists_p95").and_then(Json::as_arr), Some(&[][..]));
    }
}
