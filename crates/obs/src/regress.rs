//! Perf-regression detection over the run journal: the engine behind
//! `dsa obs regress`, the journal-driven CI gate.
//!
//! The latest journal record is compared against two references:
//!
//! 1. **A rolling window** of prior comparable records — same binary,
//!    command and scale — using the *median* of each span's self time
//!    (and wall clock, and `_ns`-histogram p95s) over the window. The
//!    median absorbs one-off outliers; a span whose latest self time
//!    exceeds the median by more than the threshold is flagged.
//! 2. **`BENCH_*.json` baselines** as a coarse absolute ceiling: for an
//!    engine span `<engine>.run`, the mean ns/invocation may not exceed
//!    `bench_factor ×` the largest `<engine>_run_*` criterion baseline.
//!    The journal workload is not the bench workload (smoke runs are
//!    far smaller), so this is deliberately a loose sanity bound, not a
//!    tight gate — the rolling window is the sensitive check.
//!
//! Tiny spans sit below a noise floor (`min_self_ns`) and are never
//! flagged. No comparable prior runs is a *pass* with a note (first run
//! on a fresh journal must not break CI).

use crate::journal::JournalRecord;
use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tunables for [`check`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressConfig {
    /// Flag when latest exceeds the reference by more than this percent.
    pub threshold_pct: f64,
    /// How many prior comparable records form the rolling window.
    pub window: usize,
    /// Ignore spans/hist-p95s below this many nanoseconds of self time.
    pub min_self_ns: u64,
    /// Bench-baseline ceiling factor (see module docs).
    pub bench_factor: f64,
    /// Ignore memory quantities below this many bytes (the memory
    /// analogue of `min_self_ns`: tiny footprints are all noise).
    pub min_mem_bytes: u64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        Self {
            threshold_pct: 50.0,
            window: 5,
            min_self_ns: 1_000_000,
            bench_factor: 10.0,
            min_mem_bytes: 1 << 20,
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `span`, `wall`, `hist`, `mem`, or `bench`.
    pub kind: &'static str,
    /// Instrument name (`swarm.run`, `wall_ms`, ...).
    pub name: String,
    /// Reference value (window median or bench ceiling), ns or ms.
    pub reference: f64,
    /// The latest run's value.
    pub latest: f64,
    /// Excess over the reference, in percent.
    pub pct: f64,
}

/// Outcome of a regression check.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegressReport {
    /// Detected regressions (empty = gate passes).
    pub regressions: Vec<Regression>,
    /// How many instrument comparisons were made.
    pub compared: usize,
    /// How many prior comparable records formed the window.
    pub window_len: usize,
    /// Human-readable caveats (no priors, skipped floors, ...).
    pub notes: Vec<String>,
}

impl RegressReport {
    /// True when the gate passes (no regressions).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    Some(values[values.len() / 2])
}

fn over(latest: f64, reference: f64, threshold_pct: f64) -> Option<f64> {
    if reference <= 0.0 {
        return None;
    }
    let pct = (latest / reference - 1.0) * 100.0;
    (pct > threshold_pct).then_some(pct)
}

/// Parses a `BENCH_*.json` document into its `baselines_ns_per_iter`
/// map.
///
/// # Errors
///
/// Returns an error on malformed JSON or a missing/ill-typed map.
pub fn load_baselines(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = json::parse(text)?;
    let map = doc
        .get("baselines_ns_per_iter")
        .and_then(Json::as_obj)
        .ok_or("no baselines_ns_per_iter object")?;
    let mut out = BTreeMap::new();
    for (name, v) in map {
        out.insert(
            name.clone(),
            v.as_f64()
                .ok_or_else(|| format!("baseline {name}: not a number"))?,
        );
    }
    Ok(out)
}

/// Checks the last record in `records` against its rolling window and
/// the bench baselines. `records` must be in chronological order (as
/// [`crate::journal::read_all`] returns them).
#[must_use]
pub fn check(
    records: &[JournalRecord],
    baselines: &BTreeMap<String, f64>,
    cfg: &RegressConfig,
) -> RegressReport {
    let mut report = RegressReport::default();
    let Some((latest, prior)) = records.split_last() else {
        report
            .notes
            .push("journal is empty: nothing to check".to_string());
        return report;
    };
    let window: Vec<&JournalRecord> = prior
        .iter()
        .rev()
        .filter(|r| {
            r.meta.binary == latest.meta.binary
                && r.meta.command == latest.meta.command
                && r.meta.scale == latest.meta.scale
        })
        .take(cfg.window)
        .collect();
    report.window_len = window.len();

    if window.is_empty() {
        report.notes.push(format!(
            "no prior runs comparable to `{}` ({}, scale {:?}): window check skipped",
            latest.meta.command, latest.meta.binary, latest.meta.scale
        ));
    } else {
        // Wall clock.
        let mut walls: Vec<f64> = window.iter().map(|r| r.wall_ms as f64).collect();
        if let Some(reference) = median(&mut walls) {
            report.compared += 1;
            if let Some(pct) = over(latest.wall_ms as f64, reference, cfg.threshold_pct) {
                report.regressions.push(Regression {
                    kind: "wall",
                    name: "wall_ms".to_string(),
                    reference,
                    latest: latest.wall_ms as f64,
                    pct,
                });
            }
        }
        // Span self times.
        for (name, s) in &latest.spans {
            if s.self_ns < cfg.min_self_ns {
                continue;
            }
            let mut values: Vec<f64> = window
                .iter()
                .filter_map(|r| r.spans.get(name).map(|p| p.self_ns as f64))
                .collect();
            let Some(reference) = median(&mut values) else {
                continue;
            };
            report.compared += 1;
            if let Some(pct) = over(s.self_ns as f64, reference, cfg.threshold_pct) {
                report.regressions.push(Regression {
                    kind: "span",
                    name: name.clone(),
                    reference,
                    latest: s.self_ns as f64,
                    pct,
                });
            }
        }
        // Nanosecond-histogram p95s (per-cell latency distributions).
        for (name, h) in &latest.hists {
            if !name.ends_with("_ns") || h.p95 < cfg.min_self_ns {
                continue;
            }
            let mut values: Vec<f64> = window
                .iter()
                .filter_map(|r| r.hists.get(name).map(|p| p.p95 as f64))
                .collect();
            let Some(reference) = median(&mut values) else {
                continue;
            };
            report.compared += 1;
            if let Some(pct) = over(h.p95 as f64, reference, cfg.threshold_pct) {
                report.regressions.push(Regression {
                    kind: "hist",
                    name: name.clone(),
                    reference,
                    latest: h.p95 as f64,
                    pct,
                });
            }
        }
        // Memory: peak RSS, peak arena footprint, allocated bytes —
        // each against the window median of runs that recorded it.
        // A latest run without memory telemetry (metrics off, or a
        // pre-memory journal) simply skips the gate; mixed windows use
        // whichever prior records carry a mem block.
        if let Some(mem) = &latest.mem {
            type MemGetter = fn(&crate::journal::MemBlock) -> u64;
            let quantities: [(&'static str, MemGetter); 3] = [
                ("mem.rss_peak_bytes", |m| m.rss_peak_bytes),
                ("mem.arena_peak_bytes", |m| m.arena_peak_bytes),
                ("mem.alloc.bytes", |m| m.alloc_bytes),
            ];
            for (name, get) in quantities {
                let value = get(mem);
                if value < cfg.min_mem_bytes {
                    continue;
                }
                let mut values: Vec<f64> = window
                    .iter()
                    .filter_map(|r| r.mem.as_ref().map(|m| get(m) as f64))
                    .filter(|v| *v > 0.0)
                    .collect();
                let Some(reference) = median(&mut values) else {
                    continue;
                };
                report.compared += 1;
                if let Some(pct) = over(value as f64, reference, cfg.threshold_pct) {
                    report.regressions.push(Regression {
                        kind: "mem",
                        name: name.to_string(),
                        reference,
                        latest: value as f64,
                        pct,
                    });
                }
            }
        }
    }

    // Bench-baseline ceilings: engine spans vs criterion baselines.
    for (name, s) in &latest.spans {
        let Some(engine) = name.strip_suffix(".run") else {
            continue;
        };
        if s.count == 0 {
            continue;
        }
        let prefix = format!("{engine}_run");
        let ceiling = baselines
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| *v)
            .fold(f64::NAN, f64::max);
        if !ceiling.is_finite() {
            continue;
        }
        report.compared += 1;
        let mean = s.total_ns as f64 / s.count as f64;
        let bound = ceiling * cfg.bench_factor;
        if mean > bound {
            report.regressions.push(Regression {
                kind: "bench",
                name: name.clone(),
                reference: bound,
                latest: mean,
                pct: (mean / bound - 1.0) * 100.0,
            });
        }
    }

    report.regressions.sort_by(|a, b| b.pct.total_cmp(&a.pct));
    report
}

/// Serializes a report as one JSON document — the body behind
/// `GET /regress`. Carries the verdict (`ok`), the comparison counts,
/// the config it ran under, the notes, and every regression.
#[must_use]
pub fn to_json(report: &RegressReport, cfg: &RegressConfig) -> String {
    let mut out = format!(
        "{{\"ok\":{},\"compared\":{},\"window_len\":{},\
         \"config\":{{\"threshold_pct\":{},\"window\":{},\"min_self_ns\":{},\
         \"bench_factor\":{},\"min_mem_bytes\":{}}},\"notes\":[",
        report.ok(),
        report.compared,
        report.window_len,
        json::num(cfg.threshold_pct),
        cfg.window,
        cfg.min_self_ns,
        json::num(cfg.bench_factor),
        cfg.min_mem_bytes
    );
    for (i, note) in report.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json::escape(note));
    }
    out.push_str("],\"regressions\":[");
    for (i, r) in report.regressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"reference\":{},\"latest\":{},\"pct\":{}}}",
            r.kind,
            json::escape(&r.name),
            json::num(r.reference),
            json::num(r.latest),
            json::num(r.pct)
        );
    }
    out.push_str("]}");
    out
}

/// Renders a report for the terminal / CI log.
#[must_use]
pub fn render(report: &RegressReport, cfg: &RegressConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf gate: {} comparisons against a {}-run window (threshold +{}%, floor {}ns)",
        report.compared, report.window_len, cfg.threshold_pct, cfg.min_self_ns
    );
    for note in &report.notes {
        let _ = writeln!(out, "  note: {note}");
    }
    if report.ok() {
        let _ = writeln!(out, "  PASS: no regressions");
    } else {
        for r in &report.regressions {
            let _ = writeln!(
                out,
                "  FAIL [{}] {}: {:.0} vs reference {:.0} (+{:.1}%)",
                r.kind, r.name, r.latest, r.reference, r.pct
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalRecord, RunMeta, SpanSummary};

    fn record(run: &str, swarm_self_ns: u64) -> JournalRecord {
        let mut r = JournalRecord {
            meta: RunMeta {
                run_id: run.to_string(),
                binary: "experiments".to_string(),
                command: "experiments profile".to_string(),
                scale: Some("smoke".to_string()),
                threads: 4,
                ..RunMeta::default()
            },
            wall_ms: 1000,
            ..JournalRecord::default()
        };
        r.spans.insert(
            "swarm.run".to_string(),
            SpanSummary {
                count: 10,
                total_ns: swarm_self_ns,
                self_ns: swarm_self_ns,
                p50: 1,
                p95: 2,
                p99: 3,
            },
        );
        r
    }

    #[test]
    fn planted_regression_fails_and_steady_state_passes() {
        let cfg = RegressConfig {
            threshold_pct: 25.0,
            ..RegressConfig::default()
        };
        let baselines = BTreeMap::new();
        let mut records: Vec<JournalRecord> = (0..4)
            .map(|i| record(&format!("r{i}"), 100_000_000))
            .collect();
        let report = check(&records, &baselines, &cfg);
        assert!(report.ok(), "steady state must pass: {report:?}");
        assert!(report.compared > 0);
        // Plant a 50% span regression.
        records.push(record("slow", 150_000_000));
        let report = check(&records, &baselines, &cfg);
        assert!(!report.ok());
        assert_eq!(report.regressions[0].kind, "span");
        assert_eq!(report.regressions[0].name, "swarm.run");
        assert!((report.regressions[0].pct - 50.0).abs() < 1e-6);
    }

    fn with_mem(mut r: JournalRecord, rss_peak: u64, arena_peak: u64) -> JournalRecord {
        r.mem = Some(crate::journal::MemBlock {
            rss_peak_bytes: rss_peak,
            arena_peak_bytes: arena_peak,
            alloc_count: 100,
            alloc_bytes: 0,
        });
        r
    }

    #[test]
    fn planted_memory_regression_fails_while_time_stays_clean() {
        let cfg = RegressConfig::default();
        let mut records: Vec<JournalRecord> = (0..4)
            .map(|i| with_mem(record(&format!("r{i}"), 100_000_000), 40 << 20, 2 << 20))
            .collect();
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "steady memory must pass: {report:?}");
        // ~50%+ peak-RSS growth with identical timings: only the mem
        // gate fires, and it names the quantity.
        records.push(with_mem(record("bloated", 100_000_000), 62 << 20, 2 << 20));
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, "mem");
        assert_eq!(report.regressions[0].name, "mem.rss_peak_bytes");
        assert!(report.regressions[0].pct > 50.0);
        // An arena blowup is caught independently of RSS.
        records.pop();
        records.push(with_mem(record("arena", 100_000_000), 40 << 20, 8 << 20));
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(!report.ok());
        assert_eq!(report.regressions[0].name, "mem.arena_peak_bytes");
    }

    #[test]
    fn runs_without_memory_telemetry_skip_the_mem_gate() {
        let cfg = RegressConfig::default();
        // Priors carry mem blocks, latest does not (metrics off): the
        // time gates still run, the mem gate silently skips.
        let mut records: Vec<JournalRecord> = (0..3)
            .map(|i| with_mem(record(&format!("r{i}"), 100_000_000), 40 << 20, 2 << 20))
            .collect();
        records.push(record("nomem", 100_000_000));
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "{report:?}");
        // And vice versa: a mem-carrying latest over mem-less priors
        // has no reference, which is a pass, not a crash.
        let mut records: Vec<JournalRecord> = (0..3)
            .map(|i| record(&format!("r{i}"), 100_000_000))
            .collect();
        records.push(with_mem(
            record("first-mem", 100_000_000),
            40 << 20,
            2 << 20,
        ));
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn tiny_footprints_sit_below_the_memory_noise_floor() {
        let cfg = RegressConfig::default();
        // 100x growth, but under min_mem_bytes: ignored.
        let mut records: Vec<JournalRecord> = (0..3)
            .map(|i| with_mem(record(&format!("r{i}"), 100_000_000), 1 << 10, 1 << 10))
            .collect();
        records.push(with_mem(record("small", 100_000_000), 100 << 10, 100 << 10));
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn window_uses_median_so_one_outlier_does_not_shift_the_reference() {
        let cfg = RegressConfig {
            threshold_pct: 25.0,
            ..RegressConfig::default()
        };
        let records = vec![
            record("a", 100_000_000),
            record("outlier", 1_000_000_000),
            record("b", 100_000_000),
            record("c", 100_000_000),
            record("latest", 110_000_000),
        ];
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn incomparable_and_empty_journals_pass_with_a_note() {
        let cfg = RegressConfig::default();
        let report = check(&[], &BTreeMap::new(), &cfg);
        assert!(report.ok());
        assert_eq!(report.notes.len(), 1);
        // A lone record has no comparable priors.
        let report = check(&[record("only", 1)], &BTreeMap::new(), &cfg);
        assert!(report.ok());
        assert!(report.notes[0].contains("no prior runs"));
        // Prior runs of a different command don't count.
        let mut other = record("other", 100);
        other.meta.command = "experiments all".to_string();
        let report = check(&[other, record("latest", 1)], &BTreeMap::new(), &cfg);
        assert!(report.ok());
        assert_eq!(report.window_len, 0);
    }

    #[test]
    fn spans_below_the_noise_floor_are_ignored() {
        let cfg = RegressConfig {
            threshold_pct: 25.0,
            ..RegressConfig::default()
        };
        let records = vec![
            record("a", 100),
            record("b", 100),
            record("latest", 500_000),
        ];
        // 5000x growth, but below min_self_ns.
        let report = check(&records, &BTreeMap::new(), &cfg);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn bench_ceiling_catches_absolute_blowups() {
        let cfg = RegressConfig::default();
        let baselines = load_baselines(
            r#"{"baselines_ns_per_iter": {"swarm_run_50peers_500rounds": 1000000.0}}"#,
        )
        .unwrap();
        // Mean 2ms/invocation < 10x 1ms ceiling: fine.
        let mut r = record("ok", 0);
        r.spans.get_mut("swarm.run").unwrap().total_ns = 20_000_000;
        let report = check(std::slice::from_ref(&r), &baselines, &cfg);
        assert!(report.ok(), "{report:?}");
        // Mean 20ms/invocation > ceiling: bench regression.
        let mut r = record("blowup", 0);
        r.spans.get_mut("swarm.run").unwrap().total_ns = 200_000_000;
        let report = check(&[r], &baselines, &cfg);
        assert!(!report.ok());
        assert_eq!(report.regressions[0].kind, "bench");
    }

    #[test]
    fn report_json_carries_verdict_and_regressions() {
        let cfg = RegressConfig {
            threshold_pct: 25.0,
            ..RegressConfig::default()
        };
        let mut records: Vec<JournalRecord> = (0..4)
            .map(|i| record(&format!("r{i}"), 100_000_000))
            .collect();
        records.push(record("slow", 150_000_000));
        let report = check(&records, &BTreeMap::new(), &cfg);
        let doc = json::parse(&to_json(&report, &cfg)).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        let regs = doc.get("regressions").and_then(Json::as_arr).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].get("kind").and_then(Json::as_str), Some("span"));
        assert_eq!(
            regs[0].get("name").and_then(Json::as_str),
            Some("swarm.run")
        );
        assert!((regs[0].get("pct").and_then(Json::as_f64).unwrap() - 50.0).abs() < 1e-6);
        // A passing report with a note serializes ok=true.
        let report = check(&[record("only", 1)], &BTreeMap::new(), &cfg);
        let doc = json::parse(&to_json(&report, &cfg)).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("notes").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn baseline_parser_reads_bench_json() {
        let text = r#"{
            "comment": "x",
            "baselines_ns_per_iter": {"a_run_1": 10.5, "b_run_2": 20}
        }"#;
        let map = load_baselines(text).unwrap();
        assert_eq!(map["a_run_1"], 10.5);
        assert_eq!(map["b_run_2"], 20.0);
        assert!(load_baselines("{}").is_err());
    }
}
