//! Runtime allocation counting: the `--alloc` flag's machinery.
//!
//! PR 7 proved the engines allocation-free in steady state with a
//! test-only counting allocator behind the `count-allocs` cargo feature.
//! This module promotes that proof into *runtime telemetry*: the
//! binaries install [`CountingAlloc`] as the global allocator
//! unconditionally, but it only tallies while [`enable`] has been called
//! (the `--alloc` flag) — disabled, every allocation pays one relaxed
//! atomic load on top of the system allocator, nothing else.
//!
//! Tallies land in two places:
//!
//! - **Process-wide atomics**: total allocation count and bytes
//!   (monotone), live bytes (allocations minus deallocations) and the
//!   live-bytes peak. [`publish_into`] folds them into a [`Snapshot`]
//!   as `mem.alloc.count` / `mem.alloc.bytes` counters and a
//!   `mem.alloc.peak_live_bytes` gauge, so every scrape, journal record
//!   and CSV export carries them when counting is on.
//! - **Thread-locals**: per-thread allocation count and live bytes, so
//!   tests (and the engines' per-run steady-state histogram) can measure
//!   a code region without bleed from other threads.
//!
//! The tally path must not allocate (it runs inside the allocator) —
//! it touches only atomics and const-initialized thread-local cells.
//! [`tally`]/[`tally_free`] are public so the `count-allocs` test
//! allocator in `dsa_bench` can delegate here and both allocators share
//! one set of counters.

use crate::report::Snapshot;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static ALLOC_ON: AtomicBool = AtomicBool::new(false);
static COUNT: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
    static THREAD_LIVE: Cell<i64> = const { Cell::new(0) };
}

/// Turns allocation tallying on — the `--alloc` flag. There is no off
/// switch: the counters are monotone by contract (a scrape mid-run must
/// never see them reset), and a process that wants them off simply never
/// enables them.
pub fn enable() {
    ALLOC_ON.store(true, Ordering::Relaxed);
}

/// Whether allocation tallying is on.
#[must_use]
pub fn enabled() -> bool {
    ALLOC_ON.load(Ordering::Relaxed)
}

/// Tallies one allocation of `bytes`. Called by the installed global
/// allocator (gated on [`enabled`]) and unconditionally by the
/// `count-allocs` test allocator. Never allocates.
pub fn tally(bytes: usize) {
    let bytes = bytes as u64;
    COUNT.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
    THREAD_COUNT.with(|c| c.set(c.get() + 1));
    THREAD_LIVE.with(|c| c.set(c.get() + bytes as i64));
}

/// Tallies one deallocation of `bytes` (live-bytes bookkeeping only —
/// the count/bytes counters track *acquisition*, the steady-state
/// contract). Never allocates.
pub fn tally_free(bytes: usize) {
    LIVE.fetch_sub(bytes as i64, Ordering::Relaxed);
    THREAD_LIVE.with(|c| c.set(c.get() - bytes as i64));
}

/// Total allocations tallied process-wide since enabling.
#[must_use]
pub fn total_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Total bytes requested process-wide since enabling.
#[must_use]
pub fn total_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Peak live bytes (allocations minus frees) observed since enabling.
#[must_use]
pub fn peak_live_bytes() -> u64 {
    u64::try_from(PEAK_LIVE.load(Ordering::Relaxed)).unwrap_or(0)
}

/// Allocations tallied by the *current thread*. Monotone per thread;
/// measure a region by differencing. Under the `count-allocs` feature
/// this counts every allocation; at runtime it counts only while
/// [`enabled`].
#[must_use]
pub fn thread_count() -> u64 {
    THREAD_COUNT.with(Cell::get)
}

/// The current thread's live bytes (allocations minus same-thread
/// frees). Only meaningful for regions that free on the thread that
/// allocated — exactly the scratch-arena pattern the footprint tests
/// measure.
#[must_use]
pub fn thread_live_bytes() -> i64 {
    THREAD_LIVE.with(Cell::get)
}

/// Folds the allocation tallies into a snapshot (no-op unless counting
/// is [`enabled`]): `mem.alloc.count` and `mem.alloc.bytes` as monotone
/// counters, `mem.alloc.peak_live_bytes` as a gauge. Injected directly
/// into the snapshot rather than through the metric registries so the
/// allocator hot path never touches a registry mutex.
pub fn publish_into(snap: &mut Snapshot) {
    if !enabled() {
        return;
    }
    snap.counters
        .insert("mem.alloc.count".to_string(), total_count());
    snap.counters
        .insert("mem.alloc.bytes".to_string(), total_bytes());
    snap.gauges.insert(
        "mem.alloc.peak_live_bytes".to_string(),
        peak_live_bytes() as f64,
    );
}

/// The runtime counting allocator the binaries install. Defers entirely
/// to [`System`]; while [`enabled`], tallies every `alloc` /
/// `alloc_zeroed` / `realloc` (and the matching frees for live-bytes
/// bookkeeping).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the tally path touches only
// atomics and const-initialized thread-local `Cell`s, so it performs no
// allocation and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if enabled() {
            tally(layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if enabled() {
            tally_free(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if enabled() {
            tally(layout.size());
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if enabled() {
            // A realloc acquires the new size and releases the old one.
            tally(new_size);
            tally_free(layout.size());
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_and_track_live_bytes() {
        // The tally functions are testable without installing the
        // allocator: drive them directly.
        let count0 = total_count();
        let bytes0 = total_bytes();
        let tcount0 = thread_count();
        let tlive0 = thread_live_bytes();
        tally(1024);
        tally(512);
        tally_free(512);
        assert_eq!(total_count() - count0, 2);
        assert_eq!(total_bytes() - bytes0, 1536);
        assert_eq!(thread_count() - tcount0, 2);
        assert_eq!(thread_live_bytes() - tlive0, 1024);
        // Peak never decreases.
        let peak = peak_live_bytes();
        tally_free(1024);
        assert!(peak_live_bytes() >= peak);
    }

    #[test]
    fn publish_is_gated_on_enable() {
        let mut snap = Snapshot::default();
        if !enabled() {
            publish_into(&mut snap);
            assert!(snap.counters.is_empty());
        }
        enable();
        tally(64);
        publish_into(&mut snap);
        assert!(snap.counters["mem.alloc.count"] >= 1);
        assert!(snap.counters["mem.alloc.bytes"] >= 64);
        assert!(snap.gauges["mem.alloc.peak_live_bytes"] >= 64.0);
    }
}
