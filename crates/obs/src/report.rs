//! Snapshots and exporters: tables, line-JSON, stamped CSV.
//!
//! A [`Snapshot`] is a point-in-time copy of every registry. It renders
//! as a human-readable table (`--metrics`/`--trace` epilogues and
//! `dsa obs report`), as line-JSON for machine diffing, and as a stamped
//! CSV under `results/obs-<run>.csv`:
//!
//! ```text
//! # dsa-obs v3 run=profile-smoke bin=experiments scale=smoke threads=8 ts_ms=1754640000000 rss_peak=50331648 arena_peak=3145728 alloc_count=1234 alloc_bytes=5242880
//! kind,name,count,sum_ns,self_ns,min_ns,max_ns,value,buckets
//! counter,cache.hit,3,0,0,0,0,,
//! span,swarm.rounds,40,812345,790000,12000,40000,,14:22|15:18
//! ```
//!
//! The stamp ([`ExportMeta`]) carries the run's provenance: id, binary,
//! scale, thread count and a timestamp *passed in by the binary* (never
//! sampled here, so library code stays clock-free and tests stay
//! deterministic) — and, since v3, the run's memory telemetry (peak
//! RSS, peak arena footprint, allocation totals) when it recorded any.
//! Histogram buckets serialize sparsely as `index:count` pairs joined
//! by `|`. The CSV round-trips through [`read_csv`] — which also still
//! accepts the v2 stamp and the v1 stamp (`# dsa-obs v1 run=<run>`)
//! written by earlier versions — and is what `dsa obs report <file>`
//! uses.

use crate::json::{self, Json};
use crate::metrics::{counters_snapshot, gauges_snapshot, hists_snapshot, Hist};
use crate::span::{spans_snapshot, SpanStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Provenance stamped onto an obs CSV export (and rendered back by
/// `dsa obs report`). The timestamp is supplied by the binary at process
/// start — this module never reads a clock.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExportMeta {
    /// Run id (also the file-name component of `obs-<run>.csv`).
    pub run: String,
    /// Binary name (`dsa`, `experiments`); empty for v1 files.
    pub bin: String,
    /// Experiment scale, when one applies.
    pub scale: Option<String>,
    /// Resolved worker-thread count; 0 for v1 files.
    pub threads: usize,
    /// Unix milliseconds at process start; 0 for v1 files.
    pub ts_ms: u64,
    /// Memory telemetry of the run (v3 stamps); `None` for v1/v2 files
    /// and runs that recorded none.
    pub mem: Option<crate::journal::MemBlock>,
}

impl ExportMeta {
    /// The stamp line (no trailing newline). Tokens are space-separated
    /// `key=value` pairs; run ids, binary and scale names never contain
    /// whitespace (enforced by the naming scheme). The memory tokens
    /// (`rss_peak`, `arena_peak`, `alloc_count`, `alloc_bytes`) appear
    /// only when the run recorded memory telemetry — v2 readers ignored
    /// unknown keys, so v3 stamps degrade gracefully for them too.
    #[must_use]
    pub fn stamp(&self) -> String {
        let mut out = format!(
            "# dsa-obs v3 run={} bin={} scale={} threads={} ts_ms={}",
            self.run,
            self.bin,
            self.scale.as_deref().unwrap_or("-"),
            self.threads,
            self.ts_ms
        );
        if let Some(mem) = &self.mem {
            let _ = write!(
                out,
                " rss_peak={} arena_peak={} alloc_count={} alloc_bytes={}",
                mem.rss_peak_bytes, mem.arena_peak_bytes, mem.alloc_count, mem.alloc_bytes
            );
        }
        out
    }

    /// Parses a stamp line: v3 and v2 fully (any key either version
    /// lacks simply stays at its default), v1 with defaulted fields.
    /// Unknown keys are ignored in every version — the tolerance that
    /// let v2 readers survive the v3 memory fields.
    ///
    /// # Errors
    ///
    /// Returns an error when the line is not a dsa-obs stamp.
    pub fn parse_stamp(line: &str) -> Result<Self, String> {
        if let Some(run) = line.strip_prefix("# dsa-obs v1 run=") {
            return Ok(Self {
                run: run.to_string(),
                ..Self::default()
            });
        }
        let rest = line
            .strip_prefix("# dsa-obs v2 ")
            .or_else(|| line.strip_prefix("# dsa-obs v3 "))
            .ok_or_else(|| format!("not a dsa-obs v1/v2/v3 stamp: {line:?}"))?;
        let mut meta = Self::default();
        let mut mem = crate::journal::MemBlock::default();
        let mut has_mem = false;
        for token in rest.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed stamp token {token:?}"))?;
            let mem_field = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("bad {key} {v:?}"))
            };
            match key {
                "run" => meta.run = value.to_string(),
                "bin" => meta.bin = value.to_string(),
                "scale" => meta.scale = (value != "-").then(|| value.to_string()),
                "threads" => {
                    meta.threads = value
                        .parse()
                        .map_err(|_| format!("bad threads {value:?}"))?;
                }
                "ts_ms" => {
                    meta.ts_ms = value.parse().map_err(|_| format!("bad ts_ms {value:?}"))?
                }
                "rss_peak" => {
                    mem.rss_peak_bytes = mem_field(value)?;
                    has_mem = true;
                }
                "arena_peak" => {
                    mem.arena_peak_bytes = mem_field(value)?;
                    has_mem = true;
                }
                "alloc_count" => {
                    mem.alloc_count = mem_field(value)?;
                    has_mem = true;
                }
                "alloc_bytes" => {
                    mem.alloc_bytes = mem_field(value)?;
                    has_mem = true;
                }
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        if has_mem {
            meta.mem = Some(mem);
        }
        if meta.run.is_empty() {
            return Err(format!("stamp has no run id: {line:?}"));
        }
        Ok(meta)
    }

    /// Human-readable rendering for `dsa obs report`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("run {}", self.run);
        if !self.bin.is_empty() {
            let _ = write!(out, "  bin={}", self.bin);
        }
        if let Some(scale) = &self.scale {
            let _ = write!(out, "  scale={scale}");
        }
        if self.threads > 0 {
            let _ = write!(out, "  threads={}", self.threads);
        }
        if self.ts_ms > 0 {
            let _ = write!(out, "  ts_ms={}", self.ts_ms);
        }
        out.push('\n');
        if let Some(mem) = &self.mem {
            let _ = writeln!(
                out,
                "mem rss_peak={}  arena_peak={}  allocs={} ({})",
                fmt_bytes(mem.rss_peak_bytes),
                fmt_bytes(mem.arena_peak_bytes),
                mem.alloc_count,
                fmt_bytes(mem.alloc_bytes)
            );
        }
        out
    }
}

/// A point-in-time copy of every metric and span registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Event counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Value histograms, by name.
    pub hists: BTreeMap<String, Hist>,
    /// Span aggregates, by name.
    pub spans: BTreeMap<String, SpanStats>,
}

/// Captures the current state of every registry (after merging the
/// calling thread's pending span aggregates).
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: counters_snapshot(),
        gauges: gauges_snapshot(),
        hists: hists_snapshot(),
        spans: spans_snapshot(),
    }
}

/// Formats nanoseconds human-readably (`412ns`, `3.1µs`, `48ms`, `2.4s`).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Formats a byte count human-readably (`412B`, `3.1KiB`, `48.0MiB`,
/// `2.40GiB`).
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1024.0 {
        format!("{b:.0}B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1}KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1}MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

fn buckets_to_string(buckets: &[u64; 64]) -> String {
    let mut out = String::new();
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0 {
            if !out.is_empty() {
                out.push('|');
            }
            let _ = write!(out, "{i}:{c}");
        }
    }
    out
}

fn buckets_from_string(text: &str) -> Result<[u64; 64], String> {
    let mut buckets = [0u64; 64];
    if text.is_empty() {
        return Ok(buckets);
    }
    for pair in text.split('|') {
        let (i, c) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed bucket pair {pair:?}"))?;
        let i: usize = i.parse().map_err(|_| format!("bad bucket index {i:?}"))?;
        if i >= 64 {
            return Err(format!("bucket index {i} out of range"));
        }
        buckets[i] = c.parse().map_err(|_| format!("bad bucket count {c:?}"))?;
    }
    Ok(buckets)
}

impl Snapshot {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the snapshot as aligned human-readable tables. Durations
    /// are humanized; pass the result straight to the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12.3}");
            }
        }
        if !self.hists.is_empty() {
            out.push_str("== histograms ==\n");
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "min", "max"
            );
            for (name, h) in &self.hists {
                // Only `_ns` histograms hold durations; others (e.g.
                // `cache.read_bytes`) render as raw numbers.
                let fmt: fn(u64) -> String = if name.ends_with("_ns") {
                    fmt_ns
                } else {
                    |v| v.to_string()
                };
                let _ = writeln!(
                    out,
                    "  {:<34} {:>8} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    fmt(h.mean() as u64),
                    fmt(if h.count == 0 { 0 } else { h.min }),
                    fmt(h.max)
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("== spans ==\n");
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "total", "self", "mean", "max"
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    s.dur.count,
                    fmt_ns(s.dur.sum),
                    fmt_ns(s.self_ns),
                    fmt_ns(s.dur.mean() as u64),
                    fmt_ns(s.dur.max)
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded — run with --metrics or --trace)\n");
        }
        out
    }

    /// Renders the snapshot with every duration stripped: names, counts
    /// and structure only. Two runs of the same deterministic job render
    /// identically here even though their timings differ — the
    /// "stable modulo durations" view the trace tests compare.
    #[must_use]
    pub fn render_shape(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for name in self.gauges.keys() {
            let _ = writeln!(out, "gauge {name}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(out, "hist {name} {}", h.count);
        }
        for (name, s) in &self.spans {
            let _ = writeln!(out, "span {name} {}", s.dur.count);
        }
        out
    }

    /// Serializes the snapshot as line-JSON: one object per metric.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, r#"{{"kind":"counter","name":"{name}","value":{v}}}"#);
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, r#"{{"kind":"gauge","name":"{name}","value":{v}}}"#);
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                r#"{{"kind":"hist","name":"{name}","count":{},"sum":{},"min":{},"max":{},"buckets":"{}"}}"#,
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets_to_string(&h.buckets)
            );
        }
        for (name, s) in &self.spans {
            let _ = writeln!(
                out,
                r#"{{"kind":"span","name":"{name}","count":{},"total_ns":{},"self_ns":{},"min_ns":{},"max_ns":{},"buckets":"{}"}}"#,
                s.dur.count,
                s.dur.sum,
                s.self_ns,
                if s.dur.count == 0 { 0 } else { s.dur.min },
                s.dur.max,
                buckets_to_string(&s.dur.buckets)
            );
        }
        out
    }

    /// Serializes the snapshot as the stamped CSV body (without the stamp
    /// line). See the module docs for the format.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum_ns,self_ns,min_ns,max_ns,value,buckets\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},{v},0,0,0,0,,");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},0,0,0,0,0,{v},");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist,{name},{},{},0,{},{},,{}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets_to_string(&h.buckets)
            );
        }
        for (name, s) in &self.spans {
            let _ = writeln!(
                out,
                "span,{name},{},{},{},{},{},,{}",
                s.dur.count,
                s.dur.sum,
                s.self_ns,
                if s.dur.count == 0 { 0 } else { s.dur.min },
                s.dur.max,
                buckets_to_string(&s.dur.buckets)
            );
        }
        out
    }

    /// Serializes the snapshot as one JSON document — the body of the
    /// live server's `GET /snapshot` and the wire format `dsa obs top`
    /// polls. Full fidelity: histograms and span durations carry their
    /// sparse bucket encoding (same `index:count|...` form as the CSV),
    /// so [`Snapshot::from_json`] reconstructs the snapshot exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json::escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(name), json::num(*v));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":\"{}\"}}",
                json::escape(name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets_to_string(&h.buckets)
            );
        }
        out.push_str("},\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"min_ns\":{},\
                 \"max_ns\":{},\"buckets\":\"{}\"}}",
                json::escape(name),
                s.dur.count,
                s.dur.sum,
                s.self_ns,
                if s.dur.count == 0 { 0 } else { s.dur.min },
                s.dur.max,
                buckets_to_string(&s.dur.buckets)
            );
        }
        out.push_str("}}");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or missing/ill-typed fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        if doc.as_obj().is_none() {
            return Err("snapshot document is not an object".to_string());
        }
        let mut snap = Self::default();
        let field = |v: &Json, name: &str, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: missing {key}"))
        };
        let hist = |v: &Json,
                    name: &str,
                    sum_key: &str,
                    min_key: &str,
                    max_key: &str|
         -> Result<Hist, String> {
            let count = field(v, name, "count")?;
            Ok(Hist {
                count,
                sum: field(v, name, sum_key)?,
                min: if count == 0 {
                    u64::MAX
                } else {
                    field(v, name, min_key)?
                },
                max: field(v, name, max_key)?,
                buckets: buckets_from_string(
                    v.get("buckets")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("{name}: missing buckets"))?,
                )?,
            })
        };
        for (name, v) in doc.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
            snap.counters.insert(
                name.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter {name}: not a u64"))?,
            );
        }
        for (name, v) in doc.get("gauges").and_then(Json::as_obj).unwrap_or(&[]) {
            snap.gauges.insert(
                name.clone(),
                v.as_f64()
                    .ok_or_else(|| format!("gauge {name}: not a number"))?,
            );
        }
        for (name, v) in doc.get("hists").and_then(Json::as_obj).unwrap_or(&[]) {
            snap.hists
                .insert(name.clone(), hist(v, name, "sum", "min", "max")?);
        }
        for (name, v) in doc.get("spans").and_then(Json::as_obj).unwrap_or(&[]) {
            snap.spans.insert(
                name.clone(),
                SpanStats {
                    dur: hist(v, name, "total_ns", "min_ns", "max_ns")?,
                    self_ns: field(v, name, "self_ns")?,
                },
            );
        }
        Ok(snap)
    }

    /// Parses a CSV body produced by [`Snapshot::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns an error on a malformed header, row, or bucket encoding.
    pub fn from_csv(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let header = lines.next().ok_or("empty obs CSV")?;
        if header != "kind,name,count,sum_ns,self_ns,min_ns,max_ns,value,buckets" {
            return Err(format!("unrecognized obs CSV header {header:?}"));
        }
        let mut snap = Self::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 9 {
                return Err(format!("expected 9 fields, got {}: {line:?}", fields.len()));
            }
            let name = fields[1].to_string();
            let num = |i: usize| -> Result<u64, String> {
                fields[i]
                    .parse()
                    .map_err(|_| format!("bad number {:?} in {line:?}", fields[i]))
            };
            match fields[0] {
                "counter" => {
                    snap.counters.insert(name, num(2)?);
                }
                "gauge" => {
                    let v: f64 = fields[7]
                        .parse()
                        .map_err(|_| format!("bad gauge value {:?}", fields[7]))?;
                    snap.gauges.insert(name, v);
                }
                "hist" => {
                    let count = num(2)?;
                    snap.hists.insert(
                        name,
                        Hist {
                            count,
                            sum: num(3)?,
                            min: if count == 0 { u64::MAX } else { num(5)? },
                            max: num(6)?,
                            buckets: buckets_from_string(fields[8])?,
                        },
                    );
                }
                "span" => {
                    let count = num(2)?;
                    snap.spans.insert(
                        name,
                        SpanStats {
                            dur: Hist {
                                count,
                                sum: num(3)?,
                                min: if count == 0 { u64::MAX } else { num(5)? },
                                max: num(6)?,
                                buckets: buckets_from_string(fields[8])?,
                            },
                            self_ns: num(4)?,
                        },
                    );
                }
                other => return Err(format!("unknown metric kind {other:?}")),
            }
        }
        Ok(snap)
    }
}

/// Writes a snapshot to `out_dir/obs-<meta.run>.csv` under the v2
/// provenance stamp, atomically (temp sibling + rename).
///
/// # Errors
///
/// Returns an error when the directory or file cannot be written.
pub fn write_csv(out_dir: &Path, meta: &ExportMeta, snap: &Snapshot) -> Result<PathBuf, String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let path = out_dir.join(format!("obs-{}.csv", meta.run));
    let mut text = meta.stamp();
    text.push('\n');
    text.push_str(&snap.to_csv());
    let tmp = path.with_extension(format!("csv.tmp.{}", std::process::id()));
    std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("installing {}: {e}", path.display()))?;
    Ok(path)
}

/// Reads a stamped obs CSV back: returns the export provenance and the
/// snapshot. Accepts both the current v2 stamp and the legacy v1 stamp
/// (whose meta carries only the run id).
///
/// # Errors
///
/// Returns an error when the file cannot be read, carries no recognized
/// stamp, or its body is malformed.
pub fn read_csv(path: &Path) -> Result<(ExportMeta, Snapshot), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let (stamp, body) = text
        .split_once('\n')
        .ok_or_else(|| format!("{}: empty obs file", path.display()))?;
    let meta = ExportMeta::parse_stamp(stamp).map_err(|e| format!("{}: {e}", path.display()))?;
    let snap = Snapshot::from_csv(body).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((meta, snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache.hit".into(), 3);
        snap.counters.insert("cache.miss.seed".into(), 1);
        snap.gauges.insert("attacks.rows_per_sec".into(), 1234.5);
        let mut h = Hist::default();
        h.record(900);
        h.record(40_000);
        snap.hists.insert("evo.cell_ns".into(), h);
        let mut s = SpanStats::default();
        s.record_for_test(1_000_000, 800_000);
        s.record_for_test(2_000_000, 1_500_000);
        snap.spans.insert("swarm.rounds".into(), s);
        snap
    }

    impl SpanStats {
        fn record_for_test(&mut self, total: u64, self_ns: u64) {
            self.dur.record(total);
            self.self_ns += self_ns;
        }
    }

    #[test]
    fn csv_roundtrips() {
        let snap = sample();
        let parsed = Snapshot::from_csv(&snap.to_csv()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn json_roundtrips() {
        let snap = sample();
        let doc = snap.to_json();
        let parsed = Snapshot::from_json(&doc).unwrap();
        assert_eq!(snap, parsed);
        // An empty snapshot is a valid (empty-sections) document.
        let empty = Snapshot::default();
        assert_eq!(Snapshot::from_json(&empty.to_json()).unwrap(), empty);
        // Malformed documents are errors, not panics.
        for bad in [
            "",
            "[]",
            r#"{"counters":{"x":"y"}}"#,
            r#"{"hists":{"h":{}}}"#,
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn stamped_file_roundtrips_with_v3_meta() {
        let dir = std::env::temp_dir().join(format!("dsa-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = sample();
        let meta = ExportMeta {
            run: "unit".to_string(),
            bin: "experiments".to_string(),
            scale: Some("smoke".to_string()),
            threads: 8,
            ts_ms: 1_754_640_000_000,
            mem: Some(crate::journal::MemBlock {
                rss_peak_bytes: 48 << 20,
                arena_peak_bytes: 3 << 20,
                alloc_count: 1234,
                alloc_bytes: 5 << 20,
            }),
        };
        let path = write_csv(&dir, &meta, &snap).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "obs-unit.csv");
        let (parsed_meta, parsed) = read_csv(&path).unwrap();
        assert_eq!(parsed_meta, meta);
        assert_eq!(snap, parsed);
        let rendered = parsed_meta.render();
        for token in [
            "run unit",
            "bin=experiments",
            "scale=smoke",
            "threads=8",
            "rss_peak=48.0MiB",
            "arena_peak=3.0MiB",
            "allocs=1234",
        ] {
            assert!(rendered.contains(token), "missing {token} in {rendered:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_and_v2_stamps_still_parse() {
        let meta = ExportMeta::parse_stamp("# dsa-obs v1 run=legacy").unwrap();
        assert_eq!(meta.run, "legacy");
        assert_eq!(meta.bin, "");
        assert_eq!(meta.scale, None);
        assert_eq!((meta.threads, meta.ts_ms), (0, 0));
        // A v2 stamp written by the previous version parses with no mem.
        let meta =
            ExportMeta::parse_stamp("# dsa-obs v2 run=old bin=dsa scale=- threads=4 ts_ms=7")
                .unwrap();
        assert_eq!(meta.run, "old");
        assert_eq!(meta.threads, 4);
        assert_eq!(meta.mem, None);
        // Unknown keys are ignored, not fatal — the tolerance that kept
        // v2 readers alive through this version's new tokens.
        let meta =
            ExportMeta::parse_stamp("# dsa-obs v2 run=old threads=4 ts_ms=7 future_key=x").unwrap();
        assert_eq!(meta.run, "old");
        // A mem-less v3 stamp round-trips through its own parser.
        let v3 = ExportMeta {
            run: "r".to_string(),
            bin: "dsa".to_string(),
            scale: None,
            threads: 1,
            ts_ms: 5,
            mem: None,
        };
        assert!(v3.stamp().starts_with("# dsa-obs v3 "));
        assert!(!v3.stamp().contains("rss_peak"));
        assert_eq!(ExportMeta::parse_stamp(&v3.stamp()).unwrap(), v3);
        assert!(ExportMeta::parse_stamp("# something else").is_err());
    }

    #[test]
    fn malformed_rows_are_errors() {
        assert!(Snapshot::from_csv("").is_err());
        assert!(Snapshot::from_csv("wrong,header\n").is_err());
        let header = "kind,name,count,sum_ns,self_ns,min_ns,max_ns,value,buckets\n";
        assert!(Snapshot::from_csv(&format!("{header}counter,x\n")).is_err());
        assert!(Snapshot::from_csv(&format!("{header}widget,x,1,0,0,0,0,,\n")).is_err());
        assert!(Snapshot::from_csv(&format!("{header}hist,x,1,5,0,5,5,,99:1\n")).is_err());
    }

    #[test]
    fn render_mentions_every_metric() {
        let snap = sample();
        let table = snap.render();
        for name in [
            "cache.hit",
            "cache.miss.seed",
            "attacks.rows_per_sec",
            "evo.cell_ns",
            "swarm.rounds",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.contains(r#""kind":"span","name":"swarm.rounds","count":2"#));
    }

    #[test]
    fn shape_view_strips_durations() {
        let mut a = sample();
        let mut b = sample();
        // Same structure, different timings.
        a.spans.get_mut("swarm.rounds").unwrap().self_ns = 1;
        b.spans.get_mut("swarm.rounds").unwrap().self_ns = 2;
        assert_eq!(a.render_shape(), b.render_shape());
        assert_ne!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_100), "3.1µs");
        assert_eq!(fmt_ns(48_000_000), "48.0ms");
        assert_eq!(fmt_ns(2_400_000_000), "2.40s");
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(412), "412B");
        assert_eq!(fmt_bytes(3174), "3.1KiB");
        assert_eq!(fmt_bytes(48 << 20), "48.0MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }
}
