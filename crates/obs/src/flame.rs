//! Folded-stacks export: `dsa obs flame`.
//!
//! Renders span data in the folded-stacks text format consumed by
//! inferno, speedscope and Brendan Gregg's `flamegraph.pl`: one line
//! per unique stack, frames joined by `;`, followed by a space and an
//! integer weight. Two sources, two weights:
//!
//! - [`fold_events`] reconstructs real per-thread call stacks from the
//!   raw begin/end [`TraceEvent`]s captured under `--trace` (the same
//!   input as the Chrome-trace exporter) and weights each stack by the
//!   closing span's **self time** — or, for runs under `--alloc`, by
//!   its **self allocation count**, giving an allocation flamegraph.
//! - [`fold_record`] flattens a journal record's span summaries into
//!   one-frame stacks weighted by self time. The journal keeps no
//!   parent links, so this view has no nesting — but it works on any
//!   historical run without re-running it.
//!
//! Identical stacks are aggregated and lines are emitted in sorted
//! order, so the output is deterministic for a given event sequence.

use crate::journal::JournalRecord;
use crate::span::TraceEvent;
use std::collections::BTreeMap;

/// Which per-span quantity weights the folded stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Self time in nanoseconds (total minus children).
    SelfNanos,
    /// Self heap allocations (counted only under `--alloc`).
    Allocs,
}

/// Folds raw trace events into folded-stacks text. Events within one
/// track arrive in program order (the per-thread buffers preserve it);
/// tracks are independent stacks that aggregate into one profile.
/// Unbalanced events — an end with no matching open frame, possible
/// when the event cap truncated a thread's buffer — are skipped rather
/// than corrupting neighbouring stacks. Zero-weight stacks are omitted:
/// in allocation mode a steady-state (allocation-free) run folds to an
/// empty document, which is exactly the claim being verified.
#[must_use]
pub fn fold_events(events: &[TraceEvent], weight: Weight) -> String {
    let mut stacks: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for event in events {
        let stack = stacks.entry(event.track).or_default();
        if !event.end {
            stack.push(&event.name);
            continue;
        }
        if stack.last().copied() != Some(event.name.as_ref()) {
            // Truncated/unbalanced input: drop the event, keep going.
            continue;
        }
        let w = match weight {
            Weight::SelfNanos => event.self_ns,
            Weight::Allocs => event.alloc,
        };
        if w > 0 {
            *folded.entry(stack.join(";")).or_default() += w;
        }
        stack.pop();
    }
    render(&folded)
}

/// Folds a journal record's span summaries into a flat (one-frame)
/// folded-stacks document weighted by self time.
#[must_use]
pub fn fold_record(record: &JournalRecord) -> String {
    let folded = record
        .spans
        .iter()
        .filter(|(_, s)| s.self_ns > 0)
        .map(|(name, s)| (name.clone(), s.self_ns))
        .collect();
    render(&folded)
}

fn render(folded: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, w) in folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::SpanSummary;

    fn ev(name: &str, track: u32, end: bool, self_ns: u64, alloc: u64) -> TraceEvent {
        TraceEvent {
            name: Box::from(name),
            track,
            ts_ns: 0,
            end,
            self_ns,
            alloc,
        }
    }

    #[test]
    fn folds_nested_stacks_with_self_time_weights() {
        // outer { inner } outer, plus an unrelated track.
        let events = vec![
            ev("outer", 1, false, 0, 0),
            ev("inner", 1, false, 0, 0),
            ev("inner", 1, true, 30, 2),
            ev("outer", 1, true, 70, 0),
            ev("task", 2, false, 0, 0),
            ev("task", 2, true, 50, 1),
        ];
        let folded = fold_events(&events, Weight::SelfNanos);
        assert_eq!(folded, "outer 70\nouter;inner 30\ntask 50\n");
        // Allocation weighting drops zero-alloc frames.
        let folded = fold_events(&events, Weight::Allocs);
        assert_eq!(folded, "outer;inner 2\ntask 1\n");
    }

    #[test]
    fn repeated_stacks_aggregate_and_unbalanced_events_are_skipped() {
        let events = vec![
            ev("run", 1, false, 0, 0),
            ev("run", 1, true, 10, 0),
            ev("run", 1, false, 0, 0),
            ev("run", 1, true, 15, 0),
            // A stray end (cap-truncated begin) must not panic or leak
            // into other stacks.
            ev("ghost", 1, true, 99, 0),
            ev("run", 2, false, 0, 0),
            ev("run", 2, true, 5, 0),
        ];
        let folded = fold_events(&events, Weight::SelfNanos);
        assert_eq!(folded, "run 30\n");
    }

    #[test]
    fn record_fold_is_flat_self_time() {
        let mut record = JournalRecord::default();
        record.spans.insert(
            "swarm.run".to_string(),
            SpanSummary {
                count: 4,
                total_ns: 1_000,
                self_ns: 800,
                ..SpanSummary::default()
            },
        );
        record.spans.insert(
            "swarm.setup".to_string(),
            SpanSummary::default(), // zero self time: omitted
        );
        assert_eq!(fold_record(&record), "swarm.run 800\n");
    }
}
