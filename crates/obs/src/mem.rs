//! Process memory sampling: `mem.rss_bytes` / `mem.rss_peak_bytes`.
//!
//! Reads `VmRSS` and `VmHWM` from `/proc/self/status` (a no-op on
//! platforms without procfs) and publishes them through the gauge
//! registry: the instantaneous reading via `gauge_set`, the peak via
//! [`gauge_max`] so a late low sample can never erase an earlier
//! high-water mark.
//!
//! Sampling has three cadences, all gated on `metrics_enabled`:
//!
//! - [`sample`] — one explicit reading; the binaries call it right
//!   before the end-of-run snapshot so every journal record and CSV
//!   export carries final RSS figures.
//! - [`spawn_sampler`] — a detached background thread on a fixed
//!   cadence, started alongside `--metrics`, so a live `/metrics`
//!   scrape or `obs top` session sees RSS move during the run.
//! - [`sample_throttled`] — a cheap hook for hot-ish paths (span
//!   merges, worker-pool job completion): one relaxed atomic load when
//!   not armed, and at most one procfs read per [`THROTTLE`] otherwise.
//!
//! The throttled hook is additionally gated on [`arm`], which only the
//! binaries call. Library tests exercise spans and the worker pool with
//! metrics enabled while asserting *exact* registry contents across
//! thread counts; a time-dependent sample sneaking in from a merge hook
//! would make those assertions flaky. Arming keeps the hooks inert in
//! any process that has not opted into wall-clock-dependent telemetry.

use crate::metrics::{gauge_max, gauge_set, metrics_enabled};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Minimum spacing between procfs reads from [`sample_throttled`].
pub const THROTTLE: Duration = Duration::from_millis(100);

/// Default cadence for the background sampler thread.
pub const SAMPLER_INTERVAL: Duration = Duration::from_millis(250);

static ARMED: AtomicBool = AtomicBool::new(false);
static LAST_SAMPLE_NS: AtomicU64 = AtomicU64::new(0);
static SAMPLER_RUNNING: AtomicBool = AtomicBool::new(false);

/// One reading of the process's resident set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSample {
    /// Current resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Kernel-tracked resident high-water mark in bytes (`VmHWM`).
    pub rss_peak_bytes: u64,
}

/// Arms the passive sampling hooks ([`sample_throttled`]). Called by
/// the binaries when metrics are on; library code and tests never arm,
/// so span/worker instrumentation stays deterministic for them.
pub fn arm() {
    ARMED.store(true, Ordering::Relaxed);
}

/// Whether the passive hooks are armed.
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Heap bytes held by a `Vec`'s allocation: capacity × element size.
/// The building block every engine scratch's `footprint()` sums over —
/// capacity, not length, because the arena's point is to keep grown
/// allocations alive across runs.
#[must_use]
#[allow(clippy::ptr_arg)] // capacity() needs the Vec, not a slice
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Reads the current RSS figures from `/proc/self/status`. Returns
/// `None` where procfs is unavailable (non-Linux) or unparsable.
#[must_use]
pub fn read_rss() -> Option<MemSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status(&status)
}

/// Parses `VmRSS`/`VmHWM` out of a `/proc/self/status` body. Values
/// are reported by the kernel in kB.
fn parse_status(status: &str) -> Option<MemSample> {
    let mut rss = None;
    let mut hwm = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            hwm = parse_kb(rest);
        }
        if rss.is_some() && hwm.is_some() {
            break;
        }
    }
    let rss_bytes = rss?;
    Some(MemSample {
        rss_bytes,
        // VmHWM is by definition >= VmRSS; fall back to the current
        // reading if the kernel omits it.
        rss_peak_bytes: hwm.unwrap_or(rss_bytes).max(rss_bytes),
    })
}

fn parse_kb(rest: &str) -> Option<u64> {
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Takes one RSS sample and publishes it to the gauge registry:
/// `mem.rss_bytes` (set) and `mem.rss_peak_bytes` (high-water via
/// [`gauge_max`]). A no-op unless metrics are enabled or when procfs
/// is unavailable. Returns the sample for callers that want the raw
/// numbers.
pub fn sample() -> Option<MemSample> {
    if !metrics_enabled() {
        return None;
    }
    let s = read_rss()?;
    gauge_set("mem.rss_bytes", s.rss_bytes as f64);
    gauge_max("mem.rss_peak_bytes", s.rss_peak_bytes as f64);
    Some(s)
}

/// Passive sampling hook for span merges and worker-pool completions:
/// costs one relaxed load unless [`arm`]ed, and samples at most once
/// per [`THROTTLE`] otherwise.
pub fn sample_throttled() {
    if !armed() || !metrics_enabled() {
        return;
    }
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let now_ns = EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64;
    let last = LAST_SAMPLE_NS.load(Ordering::Relaxed);
    // 0 means "never sampled" — the first armed call always reads.
    if last != 0 && now_ns.saturating_sub(last) < THROTTLE.as_nanos() as u64 {
        return;
    }
    if LAST_SAMPLE_NS
        .compare_exchange(last, now_ns.max(1), Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        sample();
    }
}

/// Starts the detached background sampler (and arms the passive
/// hooks). Idempotent: a second call is a no-op. The thread samples
/// every `interval` for the life of the process; each iteration is
/// gated on `metrics_enabled`, so it costs one atomic load per tick
/// if metrics are later turned off.
pub fn spawn_sampler(interval: Duration) {
    arm();
    if SAMPLER_RUNNING.swap(true, Ordering::Relaxed) {
        return;
    }
    std::thread::Builder::new()
        .name("dsa-obs-mem".to_string())
        .spawn(move || loop {
            std::thread::sleep(interval);
            sample();
        })
        // Failing to spawn degrades to boundary-only sampling.
        .ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_fields() {
        let body = "Name:\tdsa\nVmPeak:\t  999 kB\nVmRSS:\t  2048 kB\nVmHWM:\t  4096 kB\n";
        let s = parse_status(body).unwrap();
        assert_eq!(s.rss_bytes, 2048 * 1024);
        assert_eq!(s.rss_peak_bytes, 4096 * 1024);
        // Missing HWM falls back to RSS.
        let s = parse_status("VmRSS:\t 10 kB\n").unwrap();
        assert_eq!(s.rss_peak_bytes, s.rss_bytes);
        // Missing RSS is a miss, not a zero.
        assert!(parse_status("VmHWM:\t 10 kB\n").is_none());
        assert!(parse_status("garbage").is_none());
    }

    #[test]
    fn vec_bytes_counts_capacity_not_length() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        assert_eq!(vec_bytes(&Vec::<u8>::new()), 0);
    }

    #[test]
    fn read_rss_reports_a_live_process_on_linux() {
        if let Some(s) = read_rss() {
            assert!(s.rss_bytes > 0);
            assert!(s.rss_peak_bytes >= s.rss_bytes);
        }
        // Off Linux read_rss is None and that is the contract.
    }

    #[test]
    fn sampling_is_gated_and_publishes_gauges() {
        let _g = crate::tests::LOCK.lock().unwrap();
        crate::disable();
        crate::reset();
        assert!(sample().is_none(), "disabled sampling must be a no-op");
        crate::enable_metrics();
        crate::reset();
        if sample().is_some() {
            let snap = crate::report::snapshot();
            let rss = snap.gauges["mem.rss_bytes"];
            let peak = snap.gauges["mem.rss_peak_bytes"];
            assert!(rss > 0.0);
            assert!(peak >= rss);
        }
        crate::disable();
        crate::reset();
    }

    #[test]
    fn throttled_hook_is_inert_until_armed() {
        let _g = crate::tests::LOCK.lock().unwrap();
        crate::enable_metrics();
        crate::reset();
        if !armed() {
            sample_throttled();
            assert!(
                !crate::report::snapshot()
                    .gauges
                    .contains_key("mem.rss_bytes"),
                "unarmed throttled sampling must not publish gauges"
            );
        }
        crate::disable();
        crate::reset();
    }
}
