//! The embedded observability server: a zero-dependency, hand-rolled
//! HTTP/1.1 endpoint over [`std::net::TcpListener`], deployable in two
//! modes.
//!
//! **In-run exposition** ([`Mode::Live`], the `--obs-listen <addr>`
//! flag on both binaries): a background thread inside any observed run
//! serves the *live registry* —
//!
//! - `GET /metrics` — Prometheus text exposition v0.0.4
//!   ([`crate::expo::render`] over [`crate::snapshot`]); counters are
//!   global and monotone, so two successive scrapes mid-run satisfy
//!   [`crate::expo::check_monotone`]. Span aggregates merge into the
//!   global table as fork-join regions complete (workers are joined per
//!   region), so spans appear region-by-region while histograms and
//!   counters update continuously.
//! - `GET /snapshot` — the same registry as JSON
//!   ([`crate::Snapshot::to_json`]), which `dsa obs top` polls.
//! - `GET /healthz` — liveness.
//!
//! **Resident query mode** ([`Mode::resident`], `dsa obs serve`): a
//! standalone process answering over the run journal under a results
//! directory, *without running any simulation* —
//!
//! - `GET /runs` — summary list of journal records (JSON array).
//! - `GET /runs/<id>` — one full record (exact run id or unique
//!   prefix), as its journal JSON.
//! - `GET /diff/<a>/<b>` — structured diff ([`crate::diff::to_json`]).
//! - `GET /regress` — the perf-gate verdict
//!   ([`crate::regress::to_json`]); HTTP 200 when the gate passes, 503
//!   when it fails, so `curl -f` gates a CI step by status code alone.
//! - plus `/metrics`, `/snapshot` and `/healthz` as above — the
//!   resident server enables metrics and instruments itself
//!   (`serve.requests`, `serve.http_errors`, `serve.request_ns`), so
//!   its own scrape endpoint is never empty.
//!
//! Journal records are parsed once at startup and re-parsed only when
//! either journal file's mtime (or size) changes — each request
//! re-stats two files, not re-reads them.
//!
//! The HTTP surface is deliberately minimal: GET only, `Connection:
//! close`, no keep-alive, no TLS, request heads capped at 16 KiB with
//! 64 headers. [`parse_request`] is a total function over raw bytes —
//! malformed request lines, oversized heads and unknown methods map to
//! 400/405/414 responses, never panics — and is exercised directly by
//! the fuzz-ish tests in `tests/live_scrape.rs`.

use crate::journal::{self, JournalRecord};
use crate::json;
use crate::regress::{self, RegressConfig};
use crate::{expo, metrics, snapshot};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

/// Largest request head (request line + headers) the server reads.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest request line the parser accepts.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers the parser accepts.
pub const MAX_HEADERS: usize = 64;
/// Per-connection socket timeout: a stalled client cannot wedge the
/// accept loop for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// What the server answers from.
pub enum Mode {
    /// Exposition of this process's live registry only.
    Live,
    /// Live exposition plus journal-backed query endpoints over a
    /// results directory.
    Resident(Box<ResidentState>),
}

impl Mode {
    /// Builds the resident mode over a results directory, with the
    /// regress configuration and bench baselines `/regress` should use.
    #[must_use]
    pub fn resident(dir: PathBuf, cfg: RegressConfig, baselines: BTreeMap<String, f64>) -> Self {
        Mode::Resident(Box::new(ResidentState {
            dir,
            cfg,
            baselines,
            cache: Mutex::new(JournalCache::default()),
        }))
    }
}

/// Resident-mode state: the journal directory plus a parsed-record
/// cache keyed by the two journal files' modification stamps.
pub struct ResidentState {
    dir: PathBuf,
    cfg: RegressConfig,
    baselines: BTreeMap<String, f64>,
    cache: Mutex<JournalCache>,
}

#[derive(Default)]
struct JournalCache {
    stamp: Vec<Option<(SystemTime, u64)>>,
    records: Vec<JournalRecord>,
    skipped: usize,
}

impl ResidentState {
    /// The parsed journal, re-read only when a journal file changed.
    fn records(&self) -> Result<(Vec<JournalRecord>, usize), String> {
        let stamp: Vec<Option<(SystemTime, u64)>> =
            [journal::JOURNAL_ROTATED, journal::JOURNAL_FILE]
                .iter()
                .map(|name| {
                    std::fs::metadata(self.dir.join(name))
                        .ok()
                        .map(|m| (m.modified().unwrap_or(SystemTime::UNIX_EPOCH), m.len()))
                })
                .collect();
        let mut cache = self.cache.lock().expect("journal cache poisoned");
        if cache.stamp != stamp {
            let (records, skipped) = journal::read_all(&self.dir)?;
            cache.records = records;
            cache.skipped = skipped;
            cache.stamp = stamp;
        }
        Ok((cache.records.clone(), cache.skipped))
    }
}

// ---- request parsing --------------------------------------------------------

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query), as sent.
    pub path: String,
}

/// A response the server will write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}\n", json::escape(message)),
        )
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Parses a request head (everything up to the blank line) from raw
/// bytes. Total: every input maps to `Ok` or an error status code
/// (400 for malformed syntax, 414 for an oversized request line), never
/// a panic. Headers are bounded ([`MAX_HEADERS`], [`MAX_REQUEST_LINE`]
/// per line) and discarded — no endpoint reads them.
///
/// # Errors
///
/// Returns the HTTP status code the connection should be answered with.
pub fn parse_request(head: &[u8]) -> Result<Request, u16> {
    let text = std::str::from_utf8(head).map_err(|_| 400u16)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(400u16)?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(414);
    }
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(400);
    };
    if parts.next().is_some() || method.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(400);
    }
    if !path.starts_with('/') {
        return Err(400);
    }
    let mut headers = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS || line.len() > MAX_REQUEST_LINE || !line.contains(':') {
            return Err(400);
        }
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
    })
}

// ---- routing ---------------------------------------------------------------

/// Resolves a `/runs/<token>` segment: exact run id first, then unique
/// prefix (mirrors the CLI's resolution minus negative indexing, which
/// reads poorly in a URL).
fn resolve<'a>(records: &'a [JournalRecord], token: &str) -> Result<&'a JournalRecord, Response> {
    if let Some(r) = records.iter().rev().find(|r| r.meta.run_id == token) {
        return Ok(r);
    }
    let matches: Vec<&JournalRecord> = records
        .iter()
        .filter(|r| r.meta.run_id.starts_with(token))
        .collect();
    match matches.as_slice() {
        [] => Err(Response::error(
            404,
            &format!("no journal record matches '{token}'"),
        )),
        [r] => Ok(r),
        many => Err(Response::error(
            400,
            &format!("'{token}' is ambiguous: {} records match", many.len()),
        )),
    }
}

/// The `/runs` index document: a summary object per journal record plus
/// the count of unparseable lines skipped. Shared verbatim with
/// `dsa obs runs --json`, so scripting against the CLI and scripting
/// against the server read the same schema.
#[must_use]
pub fn runs_json(records: &[JournalRecord], skipped: usize) -> String {
    let mut out = format!(
        "{{\"count\":{},\"skipped\":{skipped},\"runs\":[",
        records.len()
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"run\":\"{}\",\"bin\":\"{}\",\"cmd\":\"{}\",\"ts_ms\":{},\"scale\":{},\
             \"wall_ms\":{},\"spans\":{},\"cache_touches\":{}}}",
            json::escape(&r.meta.run_id),
            json::escape(&r.meta.binary),
            json::escape(&r.meta.command),
            r.meta.timestamp_ms,
            r.meta.scale.as_ref().map_or_else(
                || "null".to_string(),
                |s| format!("\"{}\"", json::escape(s))
            ),
            r.wall_ms,
            r.spans.len(),
            r.cache.len()
        ));
    }
    out.push_str("]}\n");
    out
}

fn handle_live(path: &str) -> Option<Response> {
    match path {
        "/healthz" => Some(Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: "ok\n".to_string(),
        }),
        "/metrics" => Some(match expo::render(&snapshot()) {
            Ok(body) => Response {
                status: 200,
                content_type: expo::CONTENT_TYPE,
                body,
            },
            Err(msg) => Response::error(500, &msg),
        }),
        "/snapshot" => {
            let mut body = snapshot().to_json();
            body.push('\n');
            Some(Response::json(200, body))
        }
        _ => None,
    }
}

fn handle_resident(state: &ResidentState, path: &str) -> Response {
    let journal = match state.records() {
        Ok(r) => r,
        Err(msg) => return Response::error(500, &msg),
    };
    let (records, skipped) = journal;
    if path == "/runs" {
        return Response::json(200, runs_json(&records, skipped));
    }
    if let Some(token) = path.strip_prefix("/runs/") {
        if token.is_empty() || token.contains('/') {
            return Response::error(404, &format!("unknown path {path:?}"));
        }
        return match resolve(&records, token) {
            Ok(r) => Response::json(200, r.to_json_line() + "\n"),
            Err(resp) => resp,
        };
    }
    if let Some(rest) = path.strip_prefix("/diff/") {
        let Some((a, b)) = rest.split_once('/') else {
            return Response::error(400, "diff needs two runs: /diff/<a>/<b>");
        };
        if a.is_empty() || b.is_empty() || b.contains('/') {
            return Response::error(400, "diff needs two runs: /diff/<a>/<b>");
        }
        let ra = match resolve(&records, a) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let rb = match resolve(&records, b) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let threshold = state.cfg.threshold_pct;
        return Response::json(200, crate::diff::to_json(ra, rb, threshold) + "\n");
    }
    if path == "/regress" {
        let report = regress::check(&records, &state.baselines, &state.cfg);
        let status = if report.ok() { 200 } else { 503 };
        return Response::json(status, regress::to_json(&report, &state.cfg) + "\n");
    }
    Response::error(404, &format!("unknown path {path:?}"))
}

/// Routes one parsed request. Pure — no socket involved — so tests can
/// drive the full surface without binding a port.
#[must_use]
pub fn handle(req: &Request, mode: &Mode) -> Response {
    if req.method != "GET" {
        return Response::error(405, &format!("method {} not allowed", req.method));
    }
    // Strip any query string: no endpoint takes parameters yet.
    let path = req.path.split('?').next().unwrap_or("");
    if let Some(resp) = handle_live(path) {
        return resp;
    }
    match mode {
        Mode::Live => Response::error(
            404,
            &format!(
                "unknown path {path:?} (this is an in-run exposition endpoint; \
                 journal queries need `dsa obs serve`)"
            ),
        ),
        Mode::Resident(state) => handle_resident(state, path),
    }
}

// ---- the socket layer -------------------------------------------------------

fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, u16> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(414);
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    // A client that hung up mid-response is its own problem.
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(resp.body.as_bytes()))
        .and_then(|()| stream.flush());
}

fn serve_connection(stream: &mut TcpStream, mode: &Mode) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let t0 = Instant::now();
    let parsed = read_head(stream).and_then(|head| parse_request(&head));
    // Count the request before rendering the response, so a /metrics
    // scrape sees itself — the very first scrape already carries
    // serve.requests = 1 and successive scrapes grow monotonically.
    metrics::incr("serve.requests");
    let resp = match parsed {
        Ok(req) => handle(&req, mode),
        Err(status) => Response::error(status, status_text(status)),
    };
    if resp.status >= 400 {
        metrics::incr("serve.http_errors");
    }
    metrics::observe(
        "serve.request_ns",
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    write_response(stream, &resp);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A bound observability server, ready to accept.
pub struct Server {
    listener: TcpListener,
    mode: Mode,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be parsed or bound.
    pub fn bind(addr: &str, mode: Mode) -> Result<Self, String> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| format!("bad listen address {addr:?}: {e}"))?
            .collect();
        let listener = TcpListener::bind(&addrs[..]).map_err(|e| format!("binding {addr}: {e}"))?;
        Ok(Self { listener, mode })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Returns an error when the socket's local address is unavailable.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))
    }

    /// Accepts and serves connections forever, one at a time. The
    /// sequential loop is deliberate: a scrape endpoint's request rate
    /// is one poller every few seconds, and per-connection timeouts
    /// bound how long a stalled client can hold the loop.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            match stream {
                Ok(mut stream) => serve_connection(&mut stream, &self.mode),
                Err(_) => continue,
            }
        }
    }
}

/// Binds `addr` and serves it from a background thread — what
/// `--obs-listen` spawns inside an observed run. Returns the bound
/// address (so port 0 callers learn their port). The thread is detached:
/// it lives until the process exits, which is exactly the lifetime an
/// in-run exposition endpoint should have.
///
/// # Errors
///
/// Returns an error when binding fails (the run proceeds unobserved
/// rather than crashing — callers decide whether that is fatal).
pub fn spawn(addr: &str, mode: Mode) -> Result<SocketAddr, String> {
    let server = Server::bind(addr, mode)?;
    let bound = server.local_addr()?;
    std::thread::Builder::new()
        .name("dsa-obs-serve".to_string())
        .spawn(move || server.run())
        .map_err(|e| format!("spawning server thread: {e}"))?;
    Ok(bound)
}

/// A minimal HTTP/1.1 GET client for the same surface: used by
/// `dsa obs top`, the CLI's `--monotone` lint mode and the integration
/// tests. Returns `(status, body)`.
///
/// # Errors
///
/// Returns an error on connection failure, timeout, or a response that
/// is not minimal HTTP/1.1.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("sending request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parser_accepts_wellformed_heads() {
        let req = parse_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        // No headers at all is fine.
        let req = parse_request(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.path, "/");
        // Query strings ride along in the path.
        let req = parse_request(b"GET /runs?limit=5 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/runs?limit=5");
    }

    #[test]
    fn request_parser_rejects_malformed_heads_without_panicking() {
        for (head, expect) in [
            (&b"GET\r\n\r\n"[..], 400u16),
            (b"GET /x\r\n\r\n", 400),
            (b"GET /x HTTP/2\r\n\r\n", 400),
            (b"get /x HTTP/1.1\r\n\r\n", 400),
            (b"GET x HTTP/1.1\r\n\r\n", 400),
            (b"GET /x HTTP/1.1 extra\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n", 400),
            (b"\xff\xfe\r\n\r\n", 400),
            (b"", 400),
        ] {
            assert_eq!(parse_request(head).unwrap_err(), expect, "head {head:?}");
        }
        // An oversized request line maps to 414.
        let mut huge = b"GET /".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse_request(&huge).unwrap_err(), 414);
        // Too many headers maps to 400.
        let mut many = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&many).unwrap_err(), 400);
    }

    #[test]
    fn live_mode_routes_and_404s() {
        let get = |path: &str| {
            handle(
                &Request {
                    method: "GET".to_string(),
                    path: path.to_string(),
                },
                &Mode::Live,
            )
        };
        assert_eq!(get("/healthz").status, 200);
        assert_eq!(get("/metrics").status, 200);
        assert_eq!(get("/snapshot").status, 200);
        assert_eq!(get("/runs").status, 404);
        assert_eq!(get("/nope").status, 404);
        // Query strings are stripped before routing.
        assert_eq!(get("/healthz?x=1").status, 200);
        let post = handle(
            &Request {
                method: "POST".to_string(),
                path: "/metrics".to_string(),
            },
            &Mode::Live,
        );
        assert_eq!(post.status, 405);
    }
}
