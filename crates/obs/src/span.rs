//! Nesting RAII spans with per-thread aggregation.
//!
//! A span guard timestamps its scope via [`Instant`] and, on drop, folds
//! the duration into a *thread-local* aggregate keyed by span name — no
//! lock is taken while a worker is running tasks. Locals merge into the
//! global span table when their thread exits (a thread-local destructor)
//! or when [`flush`] runs on the calling thread; merging is pure addition
//! over named aggregates, so the result is independent of worker
//! scheduling. Span *counts* are therefore bit-identical across thread
//! counts, while durations form distributions.
//!
//! The exit-time merge is only *observable* after the thread is joined:
//! `std::thread::scope` by itself unblocks when a worker's closure
//! returns, which happens *before* its thread-local destructors run — a
//! snapshot taken right after an unjoined scope can miss a worker's
//! spans. Join workers explicitly (as `dsa_core::parallel` does) or call
//! [`flush`] as the worker's last act.
//!
//! Nesting is tracked with a per-thread stack: a guard's elapsed time is
//! added to its parent frame's child tally, so every span reports both
//! its total (wall) time and its *self* time (total minus children).
//! Guards must drop in LIFO order — the natural result of binding them
//! to scopes.

use crate::metrics::{events_enabled, trace_enabled, Hist};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated timings of one span name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Distribution of total (wall) durations, in nanoseconds.
    pub dur: Hist,
    /// Total time minus time spent in child spans, in nanoseconds.
    pub self_ns: u64,
}

impl SpanStats {
    fn record(&mut self, total_ns: u64, self_ns: u64) {
        self.dur.record(total_ns);
        self.self_ns += self_ns;
    }

    /// Folds another aggregate into this one (order-independent).
    pub fn merge(&mut self, other: &Self) {
        self.dur.merge(&other.dur);
        self.self_ns += other.self_ns;
    }
}

/// One raw begin/end event, captured only while event recording
/// ([`crate::enable_events`]) is on — the input to the Chrome-trace
/// exporter. Timestamps are nanoseconds since the process's trace epoch
/// (the first event ever recorded), so they are monotone per track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: Box<str>,
    /// Track (one per recording thread, assigned on first event).
    pub track: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// `false` = begin ("B"), `true` = end ("E").
    pub end: bool,
    /// On end events: the span's self time (total − children).
    pub self_ns: u64,
    /// On end events: allocations attributed to the span itself (this
    /// thread's count delta minus child spans'). Always 0 unless the
    /// counting allocator is enabled (`--alloc`).
    pub alloc: u64,
}

/// Raw events kept in memory at ~48 bytes each; beyond this cap new
/// events are dropped (and counted in `obs.trace_events_dropped`), so a
/// runaway traced run degrades instead of exhausting memory.
const EVENT_CAP: usize = 1 << 19;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TRACK: AtomicU32 = AtomicU32::new(1);
static GLOBAL_EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn epoch_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct Frame {
    name: Cow<'static, str>,
    start: Instant,
    child_ns: u64,
    /// This thread's allocation count when the span opened.
    start_allocs: u64,
    /// Allocations attributed to (completed) child spans.
    child_allocs: u64,
}

#[derive(Default)]
struct LocalSpans {
    stack: Vec<Frame>,
    agg: BTreeMap<Cow<'static, str>, SpanStats>,
    events: Vec<TraceEvent>,
    /// This thread's event track id (0 = not yet assigned).
    track: u32,
}

impl LocalSpans {
    fn track_id(&mut self) -> u32 {
        if self.track == 0 {
            self.track = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
        }
        self.track
    }

    fn merge_into_global(&mut self) {
        // A merge marks a span boundary worth a (throttled, armed-only)
        // RSS reading — merges happen at thread exit and explicit
        // flushes, never inside the span hot path.
        crate::mem::sample_throttled();
        if !self.agg.is_empty() {
            let mut global = GLOBAL.lock().expect("span registry poisoned");
            for (name, stats) in std::mem::take(&mut self.agg) {
                if let Some(g) = global.get_mut(name.as_ref()) {
                    g.merge(&stats);
                } else {
                    global.insert(name.into_owned().into_boxed_str(), stats);
                }
            }
        }
        if !self.events.is_empty() {
            let mut global = GLOBAL_EVENTS.lock().expect("event buffer poisoned");
            let room = EVENT_CAP.saturating_sub(global.len());
            let mut drained = std::mem::take(&mut self.events);
            if drained.len() > room {
                crate::metrics::add("obs.trace_events_dropped", (drained.len() - room) as u64);
                drained.truncate(room);
            }
            global.append(&mut drained);
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.merge_into_global();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::default());
}

static GLOBAL: Mutex<BTreeMap<Box<str>, SpanStats>> = Mutex::new(BTreeMap::new());

/// An open span; closing (dropping) it records the elapsed time.
#[must_use = "binding the guard keeps the span open for the scope"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span with a static name. Free when tracing is off: one relaxed
/// atomic load, no allocation, inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    open(Cow::Borrowed(name))
}

/// Opens a span with a computed name (e.g. `profile.{domain}`). Prefer
/// [`span`] on hot paths; this one allocates only while tracing is on.
pub fn span_owned(name: String) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: false };
    }
    open(Cow::Owned(name))
}

fn open(name: Cow<'static, str>) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: false };
    }
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        if events_enabled() {
            let track = local.track_id();
            let event = TraceEvent {
                name: Box::from(name.as_ref()),
                track,
                ts_ns: epoch_ns(),
                end: false,
                self_ns: 0,
                alloc: 0,
            };
            local.events.push(event);
        }
        local.stack.push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
            start_allocs: crate::alloc::thread_count(),
            child_allocs: 0,
        });
    });
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            let frame = local
                .stack
                .pop()
                .expect("span guards must drop in LIFO order");
            let total = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = total.saturating_sub(frame.child_ns);
            let total_allocs = crate::alloc::thread_count().saturating_sub(frame.start_allocs);
            let self_allocs = total_allocs.saturating_sub(frame.child_allocs);
            if events_enabled() {
                let track = local.track_id();
                let event = TraceEvent {
                    name: Box::from(frame.name.as_ref()),
                    track,
                    ts_ns: epoch_ns(),
                    end: true,
                    self_ns,
                    alloc: self_allocs,
                };
                local.events.push(event);
            }
            if let Some(parent) = local.stack.last_mut() {
                parent.child_ns += total;
                parent.child_allocs += total_allocs;
            }
            if let Some(stats) = local.agg.get_mut(&frame.name) {
                stats.record(total, self_ns);
            } else {
                let mut stats = SpanStats::default();
                stats.record(total, self_ns);
                local.agg.insert(frame.name, stats);
            }
        });
    }
}

/// Merges the calling thread's span aggregates into the global table.
/// Worker threads do this automatically on exit; the main thread does it
/// implicitly through [`crate::snapshot`]. Open spans stay open — they
/// are counted when their guard drops.
pub fn flush() {
    LOCAL.with(|local| local.borrow_mut().merge_into_global());
}

pub(crate) fn spans_snapshot() -> BTreeMap<String, SpanStats> {
    flush();
    let global = GLOBAL.lock().expect("span registry poisoned");
    global
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// Drains every captured trace event (after merging the calling
/// thread's pending buffer): the input to the Chrome-trace exporter.
/// Worker-thread events are merged when their threads are joined, which
/// `dsa_core::parallel` guarantees before any fork-join region returns.
#[must_use]
pub fn take_events() -> Vec<TraceEvent> {
    flush();
    std::mem::take(&mut *GLOBAL_EVENTS.lock().expect("event buffer poisoned"))
}

pub(crate) fn reset_spans() {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        local.agg.clear();
        local.events.clear();
    });
    GLOBAL.lock().expect("span registry poisoned").clear();
    GLOBAL_EVENTS.lock().expect("event buffer poisoned").clear();
}
