//! End-to-end tests of the embedded observability server: a live
//! in-process scrape (two monotone `/metrics` scrapes against a running
//! registry — the `--obs-listen` contract), the resident query mode over
//! a real journal directory, a golden exposition body, and fuzz-ish
//! robustness of the HTTP request parser (malformed input maps to error
//! statuses, never a panic, and never kills the accept loop).

use dsa_obs::journal::{self, JournalRecord};
use dsa_obs::metrics_enabled;
use dsa_obs::serve::{self, http_get, Mode};
use dsa_obs::{expo, regress::RegressConfig, Snapshot};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;

/// The enable flags and registries are process-global; serialize every
/// test that touches them (same pattern as the crate's unit tests).
static LOCK: Mutex<()> = Mutex::new(());

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-obs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta(run_id: &str, command: &str, ts_ms: u64) -> dsa_obs::RunMeta {
    dsa_obs::RunMeta {
        run_id: run_id.to_string(),
        binary: "dsa".to_string(),
        command: command.to_string(),
        timestamp_ms: ts_ms,
        scale: Some("smoke".to_string()),
        domain: Some("swarm".to_string()),
        seed: Some(1),
        threads: 1,
    }
}

/// A snapshot with one of each instrument kind, built directly (not via
/// the global registry) so it is identical on every run.
fn golden_snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    snap.counters.insert("cache.hit".to_string(), 3);
    snap.counters.insert("cache.miss.seed".to_string(), 1);
    snap.gauges.insert("evo.cells_per_sec".to_string(), 1234.5);
    snap.gauges
        .insert("mem.rss_bytes".to_string(), (40u64 << 20) as f64);
    snap.gauges
        .insert("mem.rss_peak_bytes".to_string(), (48u64 << 20) as f64);
    snap.gauges
        .insert("mem.arena_peak_bytes".to_string(), (3u64 << 20) as f64);
    let mut h = dsa_obs::Hist::default();
    for v in [0, 1, 900] {
        h.record(v);
    }
    snap.hists.insert("attacks.cell_ns".to_string(), h);
    let mut dur = dsa_obs::Hist::default();
    dur.record(1_000_000);
    snap.spans.insert(
        "swarm.run".to_string(),
        dsa_obs::SpanStats {
            dur,
            self_ns: 800_000,
        },
    );
    snap
}

#[test]
fn exposition_matches_the_golden_body() {
    // The checked-in fixture pins the exact exposition format: HELP/TYPE
    // lines, name mangling, cumulative histogram buckets, span series.
    // A diff here means the wire format changed — update the fixture
    // deliberately, and treat it as a breaking change for scrapers.
    let body = expo::render(&golden_snapshot()).unwrap();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &body).unwrap();
        return;
    }
    let golden = include_str!("golden_metrics.txt");
    assert_eq!(
        body, golden,
        "exposition drifted from tests/golden_metrics.txt \
         (UPDATE_GOLDEN=1 regenerates it)"
    );
}

#[test]
fn live_scrapes_are_valid_and_monotone() {
    let _g = LOCK.lock().unwrap();
    dsa_obs::enable_metrics();
    dsa_obs::reset();
    dsa_obs::incr("test.live.events");
    dsa_obs::observe("test.live.lat_ns", 700);
    dsa_obs::gauge_set("test.live.rows_per_sec", 10.0);

    let addr = serve::spawn("127.0.0.1:0", Mode::Live).unwrap();
    let addr = addr.to_string();

    let (status, body1) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let scrape1 = expo::parse(&body1).unwrap();
    assert!(scrape1.value("dsa_test_live_events_total").unwrap() >= 1.0);

    // The run advances between scrapes; counters must only grow.
    dsa_obs::incr("test.live.events");
    dsa_obs::observe("test.live.lat_ns", 90_000);
    dsa_obs::gauge_set("test.live.rows_per_sec", 7.0); // gauges may move freely

    let (status, body2) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let scrape2 = expo::parse(&body2).unwrap();
    expo::check_monotone(&scrape1, &scrape2).unwrap();
    // The server's self-instrumentation counted the first scrape.
    assert!(
        scrape2.value("dsa_serve_requests_total").unwrap()
            >= scrape1.value("dsa_serve_requests_total").unwrap()
    );

    // /snapshot serves the same registry as JSON, and it round-trips.
    let (status, body) = http_get(&addr, "/snapshot").unwrap();
    assert_eq!(status, 200);
    let snap = Snapshot::from_json(&body).unwrap();
    assert!(snap.counters["test.live.events"] >= 2);

    // Live mode has no journal endpoints.
    let (status, _) = http_get(&addr, "/runs").unwrap();
    assert_eq!(status, 404);

    dsa_obs::disable();
    dsa_obs::reset();
}

#[test]
fn resident_mode_answers_journal_queries_without_a_simulation() {
    let _g = LOCK.lock().unwrap();
    let dir = unique_dir("resident");

    // Two comparable runs (same command + scale) with a planted slowdown.
    for (i, wall_ms, self_ns) in [(1u64, 10u64, 1_000_000u64), (2, 30, 3_000_000)] {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache.hit".to_string(), 5 * i);
        let mut dur = dsa_obs::Hist::default();
        dur.record(self_ns);
        snap.spans
            .insert("swarm.run".to_string(), dsa_obs::SpanStats { dur, self_ns });
        let record = JournalRecord::from_snapshot(
            meta(&format!("run-{i}"), "dsa swarm pra --all", 1_000 + i),
            wall_ms,
            &snap,
        );
        journal::append(&dir, &record, journal::DEFAULT_MAX_BYTES).unwrap();
    }

    let was_enabled = metrics_enabled();
    let mode = Mode::resident(dir.clone(), RegressConfig::default(), BTreeMap::new());
    let addr = serve::spawn("127.0.0.1:0", mode).unwrap().to_string();

    let (status, body) = http_get(&addr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = http_get(&addr, "/runs").unwrap();
    assert_eq!(status, 200);
    let doc = dsa_obs::json::parse(&body).unwrap();
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(2));
    let runs = doc.get("runs").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(runs[1].get("run").and_then(|v| v.as_str()), Some("run-2"));

    // One record by exact id, as its journal JSON.
    let (status, body) = http_get(&addr, "/runs/run-1").unwrap();
    assert_eq!(status, 200);
    let record = JournalRecord::from_json_line(body.trim()).unwrap();
    assert_eq!(record.meta.run_id, "run-1");
    let (status, _) = http_get(&addr, "/runs/nope").unwrap();
    assert_eq!(status, 404);
    // An ambiguous prefix is a client error, not a guess.
    let (status, _) = http_get(&addr, "/runs/run-").unwrap();
    assert_eq!(status, 400);

    // A structured diff between the two runs.
    let (status, body) = http_get(&addr, "/diff/run-1/run-2").unwrap();
    assert_eq!(status, 200);
    let doc = dsa_obs::json::parse(&body).unwrap();
    assert_eq!(doc.get("comparable").and_then(|v| v.as_bool()), Some(true));
    let wall = doc.get("wall_ms").unwrap();
    assert_eq!(wall.get("b").and_then(|v| v.as_u64()), Some(30));

    // The regress gate sees a 200% span regression → verdict fails → 503.
    let (status, body) = http_get(&addr, "/regress").unwrap();
    assert_eq!(status, 503);
    let doc = dsa_obs::json::parse(&body).unwrap();
    assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(false));

    // A journal append after startup is picked up (mtime-based refresh).
    let record = JournalRecord::from_snapshot(
        meta("run-3", "dsa gossip pra", 2_000),
        5,
        &Snapshot::default(),
    );
    journal::append(&dir, &record, journal::DEFAULT_MAX_BYTES).unwrap();
    let (status, body) = http_get(&addr, "/runs").unwrap();
    assert_eq!(status, 200);
    let doc = dsa_obs::json::parse(&body).unwrap();
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(3));

    // The resident server's own /metrics stays a valid exposition.
    let (status, body) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    expo::parse(&body).unwrap();

    if !was_enabled {
        dsa_obs::disable();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_error_statuses_and_never_kill_the_server() {
    let _g = LOCK.lock().unwrap();
    let addr = serve::spawn("127.0.0.1:0", Mode::Live).unwrap().to_string();

    let send_raw = |raw: &[u8]| -> String {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    };

    for (raw, status) in [
        (&b"BLAH\r\n\r\n"[..], "400"),
        (b"POST /metrics HTTP/1.1\r\n\r\n", "405"),
        (b"GET /metrics SMTP/3\r\n\r\n", "400"),
        (b"\x00\xff\xfe\r\n\r\n", "400"),
        (b"GET /unknown HTTP/1.1\r\n\r\n", "404"),
    ] {
        let reply = send_raw(raw);
        let got = reply.split(' ').nth(1).unwrap_or("<no status>");
        assert_eq!(got, status, "request {raw:?} got:\n{reply}");
    }

    // An oversized head is rejected with 414, not buffered forever.
    let mut huge = b"GET /".to_vec();
    huge.extend(std::iter::repeat_n(b'a', serve::MAX_HEAD_BYTES + 100));
    huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert!(send_raw(&huge).contains("414"));

    // After all that abuse, the server still answers.
    let (status, body) = http_get(&addr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
}

#[test]
fn request_parser_survives_random_bytes() {
    // Fuzz-ish: the parser is a total function — feed it a few thousand
    // pseudo-random heads (deterministic LCG; no dev-dependencies in
    // this crate) and require an Ok or a known error status, no panic.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for round in 0..4000 {
        let len = (next() % 200) as usize;
        let mut head: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        if round % 3 == 0 {
            // Bias a third of the inputs toward almost-valid requests:
            // random mutations of a correct head exercise deeper paths.
            let mut base = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
            let at = (next() as usize) % base.len();
            base[at] = (next() % 256) as u8;
            head = base;
        }
        match dsa_obs::serve::parse_request(&head) {
            Ok(req) => assert!(req.path.starts_with('/')),
            Err(status) => assert!(
                matches!(status, 400 | 414),
                "unexpected status {status} for {head:?}"
            ),
        }
    }
}
