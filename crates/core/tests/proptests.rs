//! Property-based tests of the framework's shared population split.

use dsa_core::sim::split_population;
use proptest::prelude::*;

proptest! {
    /// Both groups always hold at least one peer, whatever the fraction.
    #[test]
    fn both_groups_nonempty(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, assignment) = split_population(n, fraction);
        prop_assert!(count_a >= 1);
        prop_assert!(count_a < n);
        prop_assert!(assignment.contains(&0));
        prop_assert!(assignment.contains(&1));
    }

    /// The protagonist count stays within one peer of the exact share
    /// (rounding moves it by at most 1/2; the non-empty clamp by at most
    /// another 1/2 beyond that).
    #[test]
    fn protagonist_count_tracks_fraction(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, _) = split_population(n, fraction);
        let exact = fraction * n as f64;
        prop_assert!(
            (count_a as f64 - exact).abs() <= 1.0,
            "n={n} fraction={fraction} count_a={count_a} exact={exact}"
        );
    }

    /// The assignment vector is a prefix of zeros followed by ones, one
    /// entry per peer, with exactly `count_a` protagonists.
    #[test]
    fn assignment_is_prefix_of_zeros(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, assignment) = split_population(n, fraction);
        prop_assert_eq!(assignment.len(), n);
        prop_assert!(assignment[..count_a].iter().all(|&g| g == 0));
        prop_assert!(assignment[count_a..].iter().all(|&g| g == 1));
    }
}

/// The boundary fractions the exclusive proptest range cannot reach: the
/// non-empty clamp must hold even at 0 and 1 exactly.
#[test]
fn degenerate_fractions_still_split() {
    for n in [2usize, 3, 50] {
        for fraction in [0.0, 1.0] {
            let (count_a, assignment) = split_population(n, fraction);
            assert!((1..n).contains(&count_a), "n={n} fraction={fraction}");
            assert_eq!(assignment.len(), n);
        }
    }
}
