//! Property-based tests of the framework's shared population split and
//! of the heuristic design-space explorers.

use dsa_core::search::{evolve, hill_climb};
use dsa_core::sim::split_population;
use dsa_core::space::{DesignSpace, Dimension};
use proptest::prelude::*;

proptest! {
    /// Both groups always hold at least one peer, whatever the fraction.
    #[test]
    fn both_groups_nonempty(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, assignment) = split_population(n, fraction);
        prop_assert!(count_a >= 1);
        prop_assert!(count_a < n);
        prop_assert!(assignment.contains(&0));
        prop_assert!(assignment.contains(&1));
    }

    /// The protagonist count stays within one peer of the exact share
    /// (rounding moves it by at most 1/2; the non-empty clamp by at most
    /// another 1/2 beyond that).
    #[test]
    fn protagonist_count_tracks_fraction(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, _) = split_population(n, fraction);
        let exact = fraction * n as f64;
        prop_assert!(
            (count_a as f64 - exact).abs() <= 1.0,
            "n={n} fraction={fraction} count_a={count_a} exact={exact}"
        );
    }

    /// The assignment vector is a prefix of zeros followed by ones, one
    /// entry per peer, with exactly `count_a` protagonists.
    #[test]
    fn assignment_is_prefix_of_zeros(n in 2usize..300, fraction in 0.0f64..1.0) {
        let (count_a, assignment) = split_population(n, fraction);
        prop_assert_eq!(assignment.len(), n);
        prop_assert!(assignment[..count_a].iter().all(|&g| g == 0));
        prop_assert!(assignment[count_a..].iter().all(|&g| g == 1));
    }
}

/// A small multimodal space with a deterministic, cheap objective whose
/// landscape still has structure (interacting coordinates).
fn search_space() -> (DesignSpace, impl Fn(usize) -> f64 + Clone) {
    let space = DesignSpace::new(
        "search-props",
        vec![
            Dimension::new("a", (0..5).map(|i| i.to_string()).collect()),
            Dimension::new("b", (0..4).map(|i| i.to_string()).collect()),
            Dimension::new("c", (0..3).map(|i| i.to_string()).collect()),
        ],
    );
    let s2 = space.clone();
    let objective = move |idx: usize| {
        let c = s2.coords(idx);
        (c[0] as f64 - 2.2).sin() + 1.5 * (c[1] as f64 * 0.7).cos() + 0.3 * c[2] as f64
            - 0.2 * (c[0] as f64 * c[1] as f64)
    };
    (space, objective)
}

proptest! {
    /// Neither explorer ever spends more distinct objective evaluations
    /// than its budget allows (evolve may finish the generation member it
    /// started, hence the +1 slack its unit tests also grant).
    #[test]
    fn explorers_respect_evaluation_budget(
        budget in 1usize..40,
        seed in 0u64..500,
        restarts in 1usize..6,
    ) {
        let (space, objective) = search_space();
        let hc = hill_climb(&space, objective.clone(), restarts, budget, seed);
        prop_assert!(hc.evaluations <= budget, "hill-climb spent {} of {budget}", hc.evaluations);
        let ev = evolve(&space, objective, 3, 6, 50, 0.3, budget, seed);
        prop_assert!(ev.evaluations <= budget + 1, "evolve spent {} of {budget}", ev.evaluations);
    }

    /// Same seed, same outcome, bit for bit — across repeated runs and
    /// for every field of the outcome (index, value, spend, trajectory).
    #[test]
    fn explorers_are_bit_identical_across_repeats(
        budget in 1usize..60,
        seed in 0u64..500,
    ) {
        let (space, objective) = search_space();
        let hc1 = hill_climb(&space, objective.clone(), 3, budget, seed);
        let hc2 = hill_climb(&space, objective.clone(), 3, budget, seed);
        prop_assert_eq!(hc1, hc2);
        let ev1 = evolve(&space, objective.clone(), 3, 6, 25, 0.25, budget, seed);
        let ev2 = evolve(&space, objective, 3, 6, 25, 0.25, budget, seed);
        prop_assert_eq!(ev1, ev2);
    }

    /// The reported best value is the objective at the reported best
    /// index, and the trajectory's last entry is the best.
    #[test]
    fn outcome_is_internally_consistent(budget in 2usize..60, seed in 0u64..200) {
        let (space, objective) = search_space();
        for out in [
            hill_climb(&space, objective.clone(), 2, budget, seed),
            evolve(&space, objective.clone(), 2, 4, 20, 0.3, budget, seed),
        ] {
            prop_assert!((out.best_value - objective(out.best_index)).abs() < 1e-12);
            if let Some(&(last_idx, last_val)) = out.trajectory.last() {
                prop_assert_eq!(last_idx, out.best_index);
                prop_assert!((last_val - out.best_value).abs() < 1e-12);
            }
        }
    }
}

/// The boundary fractions the exclusive proptest range cannot reach: the
/// non-empty clamp must hold even at 0 and 1 exactly.
#[test]
fn degenerate_fractions_still_split() {
    for n in [2usize, 3, 50] {
        for fraction in [0.0, 1.0] {
            let (count_a, assignment) = split_population(n, fraction);
            assert!((1..n).contains(&count_a), "n={n} fraction={fraction}");
            assert_eq!(assignment.len(), n);
        }
    }
}
