//! Integration tests for the observability wiring in `dsa-core`: cache
//! hit/miss counters (with mismatch reasons) and fork-join load metrics.
//!
//! These run in their own test binary — and serialize on a local mutex —
//! because the obs registries are process-global.

use dsa_core::cache::{read_stamped, write_stamped, DomainSweep, SweepKey};
use dsa_core::domain::{erase, Domain, Effort};
use dsa_core::parallel::parallel_map_indexed;
use dsa_core::pra::PraConfig;
use dsa_core::sim::EncounterSim;
use dsa_core::space::{DesignSpace, Dimension};
use dsa_core::tournament::OpponentSampling;
use std::path::PathBuf;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// An analytic five-protocol domain (protocols are generosity levels),
/// small enough that a smoke sweep is instant.
#[derive(Debug)]
struct TinySim;

impl EncounterSim for TinySim {
    type Protocol = f64;

    fn run_homogeneous(&self, protocol: &f64, _seed: u64) -> f64 {
        *protocol
    }

    fn run_encounter(&self, a: &f64, b: &f64, fraction_a: f64, _seed: u64) -> (f64, f64) {
        let pool = fraction_a * a + (1.0 - fraction_a) * b;
        (pool + (b - a), pool + (a - b))
    }
}

struct TinyDomain;

impl Domain for TinyDomain {
    type Sim = TinySim;

    fn name(&self) -> &'static str {
        "tiny"
    }

    fn space(&self) -> DesignSpace {
        DesignSpace::new(
            "tiny-space",
            vec![Dimension::new(
                "Generosity",
                (0..5).map(|i| format!("g{i}")).collect(),
            )],
        )
    }

    fn protocol(&self, index: usize) -> f64 {
        index as f64 / 4.0
    }

    fn code(&self, index: usize) -> String {
        format!("g{index}")
    }

    fn presets(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn attackers(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn sim(&self, _effort: Effort, _churn: f64) -> TinySim {
        TinySim
    }
}

fn config() -> PraConfig {
    PraConfig {
        performance_runs: 2,
        encounter_runs: 1,
        sampling: OpponentSampling::Exhaustive,
        threads: 1,
        seed: 11,
        ..PraConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-obs-core-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn rerun_flips_miss_to_hit() {
    let _g = LOCK.lock().unwrap();
    dsa_obs::enable_metrics();
    dsa_obs::reset();
    let dir = temp_dir("flip");
    let domain = erase(TinyDomain);
    let cfg = config();

    // Cold: the cache file does not exist yet.
    let first = DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(!first.from_cache);
    let cold = dsa_obs::snapshot();
    assert_eq!(cold.counters["cache.miss.absent"], 1);
    assert_eq!(cold.counters["cache.store"], 1);
    assert!(!cold.counters.contains_key("cache.hit"));

    // Warm rerun: the counters flip from miss to hit.
    let second =
        DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    assert!(second.from_cache);
    let warm = dsa_obs::snapshot();
    assert_eq!(warm.counters["cache.miss.absent"], 1, "no new miss");
    assert_eq!(warm.counters["cache.hit"], 1);
    assert_eq!(warm.counters["cache.store"], 1, "no second store");
    assert_eq!(warm.hists["cache.read_bytes"].count, 1);

    dsa_obs::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_stamp_field_mismatch_counts_under_its_own_name() {
    let _g = LOCK.lock().unwrap();
    dsa_obs::enable_metrics();
    dsa_obs::reset();
    let dir = temp_dir("fields");
    std::fs::create_dir_all(&dir).unwrap();
    let written = SweepKey {
        domain: "rep".into(),
        space_hash: 0x0123,
        scale: "lab".into(),
        params: 0x4567,
        seed: 24301,
        len: 2,
        attack: 0xA77A,
        evo: 0xE40,
        attrib: 0xA11B,
    };
    let path = dir.join("probe.csv");
    write_stamped(&path, &written, "row\nrow\n").unwrap();

    // One probe per stamp field: mutate the caller's key and check the
    // reason lands under the right counter.
    type Probe = (&'static str, fn(&mut SweepKey));
    let probes: [Probe; 9] = [
        ("cache.miss.domain", |k| k.domain = "swarm".into()),
        ("cache.miss.space", |k| k.space_hash ^= 1),
        ("cache.miss.scale", |k| k.scale = "paper".into()),
        ("cache.miss.params", |k| k.params ^= 1),
        ("cache.miss.seed", |k| k.seed += 1),
        ("cache.miss.n", |k| k.len += 1),
        ("cache.miss.attack", |k| k.attack ^= 1),
        ("cache.miss.evo", |k| k.evo ^= 1),
        ("cache.miss.attrib", |k| k.attrib ^= 1),
    ];
    for (counter, mutate) in probes {
        let mut key = written.clone();
        mutate(&mut key);
        assert!(read_stamped(&path, &key).unwrap().is_none());
        let snap = dsa_obs::snapshot();
        assert_eq!(snap.counters[counter], 1, "{counter}");
    }
    // The unmutated key still validates.
    assert!(read_stamped(&path, &written).unwrap().is_some());
    let snap = dsa_obs::snapshot();
    assert_eq!(snap.counters["cache.hit"], 1);
    // Exactly one miss per field probe, nothing double-counted.
    let misses: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("cache.miss."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(misses, 9);

    dsa_obs::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_join_regions_report_load_metrics() {
    let _g = LOCK.lock().unwrap();
    dsa_obs::enable_metrics();
    dsa_obs::reset();

    let out = parallel_map_indexed(40, 4, |i| (i as f64).sqrt());
    assert_eq!(out.len(), 40);
    let snap = dsa_obs::snapshot();
    assert_eq!(snap.counters["parallel.jobs"], 1);
    assert_eq!(snap.counters["parallel.tasks"], 40);
    // One busy-time observation per worker.
    assert_eq!(snap.hists["parallel.worker_busy_ns"].count, 4);
    assert!(snap.gauges["parallel.busy_max_ns"] >= snap.gauges["parallel.busy_mean_ns"]);
    assert!(snap.gauges["parallel.imbalance"] >= 1.0);

    // The serial path reports one worker (the calling thread).
    dsa_obs::reset();
    let _ = parallel_map_indexed(10, 1, |i| i);
    let snap = dsa_obs::snapshot();
    assert_eq!(snap.counters["parallel.jobs"], 1);
    assert_eq!(snap.counters["parallel.tasks"], 10);
    assert_eq!(snap.hists["parallel.worker_busy_ns"].count, 1);

    dsa_obs::disable();
}

#[test]
fn disabled_metrics_record_nothing_from_core() {
    let _g = LOCK.lock().unwrap();
    dsa_obs::disable();
    dsa_obs::reset();
    let dir = temp_dir("off");
    let domain = erase(TinyDomain);
    let cfg = config();
    let _ = DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
    let _ = parallel_map_indexed(16, 4, |i| i);
    assert!(dsa_obs::snapshot().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
