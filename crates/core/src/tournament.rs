//! Tournament scheduling for the Robustness / Aggressiveness phases.
//!
//! The paper's methodology (§4.3.2): a *tournament* pits protocol Π against
//! every other protocol in *encounters* — mixed populations split 50/50
//! (Robustness) or 10/90 (Aggressiveness) — with 10 runs per encounter;
//! Π's score is wins / games. On a laptop the full 3270² pairing is
//! infeasible (the authors used a cluster for ~25 hours), so the schedule
//! also supports *sampled* tournaments: every protocol meets the same
//! number of uniformly drawn opponents, preserving the win-rate estimator.

use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling::sample_indices;
use dsa_workloads::seeds::SeedSeq;

/// How opponents are chosen for each protocol's tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpponentSampling {
    /// Every protocol meets every other protocol (the paper's setting).
    Exhaustive,
    /// Every protocol meets `n` uniformly sampled distinct opponents
    /// (laptop-scale estimator of the same win rate).
    Sampled(usize),
}

/// One scheduled encounter: `protagonist` (holding `fraction` of the
/// population) against `opponent`, for `runs` independent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pairing {
    /// Index of the protocol whose score this encounter contributes to.
    pub protagonist: usize,
    /// Index of the opposing protocol.
    pub opponent: usize,
}

/// Builds the tournament schedule for `n` protocols.
///
/// Every protocol receives the same number of pairings (`n − 1` when
/// exhaustive, `min(k, n − 1)` when sampled), which keeps win rates
/// comparable across protocols — the paper's "total number of games ...
/// is constant for all protocols".
#[must_use]
pub fn schedule(n: usize, sampling: OpponentSampling, seed: u64) -> Vec<Pairing> {
    let mut out = Vec::new();
    match sampling {
        OpponentSampling::Exhaustive => {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        out.push(Pairing {
                            protagonist: i,
                            opponent: j,
                        });
                    }
                }
            }
        }
        OpponentSampling::Sampled(k) => {
            let k = k.min(n.saturating_sub(1));
            let root = SeedSeq::new(seed);
            for i in 0..n {
                let mut rng: Xoshiro256pp = root.child(i as u64).rng();
                // Sample from n−1 "others" and skip over self.
                let mut opponents = sample_indices(n - 1, k, &mut rng);
                for o in &mut opponents {
                    if *o >= i {
                        *o += 1;
                    }
                }
                for j in opponents {
                    out.push(Pairing {
                        protagonist: i,
                        opponent: j,
                    });
                }
            }
        }
    }
    out
}

/// Accumulates win/loss records into per-protocol scores.
#[derive(Debug, Clone)]
pub struct WinLedger {
    wins: Vec<u64>,
    games: Vec<u64>,
}

impl WinLedger {
    /// Creates an empty ledger for `n` protocols.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            wins: vec![0; n],
            games: vec![0; n],
        }
    }

    /// Records one game for `protagonist`: a win iff its group utility
    /// strictly exceeded the opponent group's (ties are losses, per the
    /// paper's "otherwise we mark it as a Loss").
    pub fn record(&mut self, protagonist: usize, own_utility: f64, opponent_utility: f64) {
        self.games[protagonist] += 1;
        if own_utility > opponent_utility {
            self.wins[protagonist] += 1;
        }
    }

    /// Records `games` games for `protagonist` of which `wins` were won,
    /// in one step — the bulk equivalent of `games` calls to
    /// [`Self::record`] (`wins` of them with a winning margin), without
    /// the per-game loop.
    ///
    /// # Panics
    ///
    /// Panics if `wins > games`.
    pub fn record_batch(&mut self, protagonist: usize, wins: u64, games: u64) {
        assert!(
            wins <= games,
            "wins {wins} exceed games {games} for protocol {protagonist}"
        );
        self.games[protagonist] += games;
        self.wins[protagonist] += wins;
    }

    /// Win rates in `[0, 1]`; protocols with no games score NaN.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        self.wins
            .iter()
            .zip(&self.games)
            .map(|(&w, &g)| {
                if g == 0 {
                    f64::NAN
                } else {
                    w as f64 / g as f64
                }
            })
            .collect()
    }

    /// Games played per protocol.
    #[must_use]
    pub fn games(&self) -> &[u64] {
        &self.games
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exhaustive_schedule_covers_all_ordered_pairs() {
        let s = schedule(5, OpponentSampling::Exhaustive, 0);
        assert_eq!(s.len(), 20);
        let set: HashSet<(usize, usize)> = s.iter().map(|p| (p.protagonist, p.opponent)).collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|p| p.protagonist != p.opponent));
    }

    #[test]
    fn sampled_schedule_gives_equal_game_counts() {
        let s = schedule(50, OpponentSampling::Sampled(7), 3);
        let mut counts = vec![0usize; 50];
        for p in &s {
            counts[p.protagonist] += 1;
            assert_ne!(p.protagonist, p.opponent);
            assert!(p.opponent < 50);
        }
        assert!(counts.iter().all(|&c| c == 7));
    }

    #[test]
    fn sampled_opponents_are_distinct_per_protagonist() {
        let s = schedule(30, OpponentSampling::Sampled(10), 9);
        for i in 0..30 {
            let opp: Vec<usize> = s
                .iter()
                .filter(|p| p.protagonist == i)
                .map(|p| p.opponent)
                .collect();
            let set: HashSet<usize> = opp.iter().copied().collect();
            assert_eq!(set.len(), opp.len());
        }
    }

    #[test]
    fn sampling_larger_than_field_degrades_to_exhaustive_count() {
        let s = schedule(4, OpponentSampling::Sampled(100), 1);
        assert_eq!(s.len(), 4 * 3);
    }

    #[test]
    fn sampled_schedule_is_deterministic() {
        let a = schedule(20, OpponentSampling::Sampled(5), 42);
        let b = schedule(20, OpponentSampling::Sampled(5), 42);
        assert_eq!(a, b);
        let c = schedule(20, OpponentSampling::Sampled(5), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn ledger_counts_wins_and_ties_as_losses() {
        let mut l = WinLedger::new(2);
        l.record(0, 1.0, 0.5); // win
        l.record(0, 0.5, 0.5); // tie → loss
        l.record(0, 0.2, 0.5); // loss
        l.record(1, 2.0, 1.0); // win
        let r = l.rates();
        assert!((r[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r[1], 1.0);
        assert_eq!(l.games(), &[3, 1]);
    }

    #[test]
    fn ledger_empty_protocol_is_nan() {
        let l = WinLedger::new(1);
        assert!(l.rates()[0].is_nan());
    }

    #[test]
    fn record_batch_matches_per_game_records() {
        let mut looped = WinLedger::new(3);
        let mut batched = WinLedger::new(3);
        for (prot, wins, games) in [(0u64, 3u64, 5u64), (1, 0, 4), (2, 7, 7), (0, 1, 1)] {
            let prot = prot as usize;
            for g in 0..games {
                looped.record(prot, if g < wins { 1.0 } else { 0.0 }, 0.5);
            }
            batched.record_batch(prot, wins, games);
        }
        assert_eq!(looped.rates(), batched.rates());
        assert_eq!(looped.games(), batched.games());
    }

    #[test]
    #[should_panic(expected = "exceed games")]
    fn record_batch_rejects_impossible_counts() {
        let mut l = WinLedger::new(1);
        l.record_batch(0, 2, 1);
    }
}
