//! PRA sweep results: storage, ranking queries and CSV round-tripping.
//!
//! Sweep outputs feed several downstream consumers — the figure harnesses,
//! the Table 3 regression, and `EXPERIMENTS.md` — so they are stored as a
//! plain struct-of-vectors and serialized as self-describing CSV (stable
//! column order, quoted names, no external dependencies).

use crate::pra::PraPoint;

/// Results of a PRA sweep, indexed by protocol position.
#[derive(Debug, Clone, PartialEq)]
pub struct PraResults {
    /// Unnormalized mean utilities from the performance phase.
    pub performance_raw: Vec<f64>,
    /// Performance normalized over the space (best = 1).
    pub performance: Vec<f64>,
    /// Robustness win rates.
    pub robustness: Vec<f64>,
    /// Aggressiveness win rates.
    pub aggressiveness: Vec<f64>,
}

impl PraResults {
    /// Bundles the four phase outputs.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    #[must_use]
    pub fn new(
        performance_raw: Vec<f64>,
        performance: Vec<f64>,
        robustness: Vec<f64>,
        aggressiveness: Vec<f64>,
    ) -> Self {
        assert_eq!(performance_raw.len(), performance.len());
        assert_eq!(performance.len(), robustness.len());
        assert_eq!(robustness.len(), aggressiveness.len());
        Self {
            performance_raw,
            performance,
            robustness,
            aggressiveness,
        }
    }

    /// Number of protocols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.performance.len()
    }

    /// Whether the result set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.performance.is_empty()
    }

    /// The PRA point of one protocol.
    #[must_use]
    pub fn point(&self, i: usize) -> PraPoint {
        PraPoint {
            performance: self.performance[i],
            robustness: self.robustness[i],
            aggressiveness: self.aggressiveness[i],
        }
    }

    /// Protocol indices sorted best-first by the given measure extractor.
    #[must_use]
    pub fn ranked_by(&self, measure: impl Fn(&PraPoint) -> f64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| {
            let va = measure(&self.point(a));
            let vb = measure(&self.point(b));
            vb.partial_cmp(&va)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }

    /// 1-based rank of protocol `i` under a measure (the paper quotes
    /// "Birds ... ranks at 30 among all 3270 protocols").
    #[must_use]
    pub fn rank_of(&self, i: usize, measure: impl Fn(&PraPoint) -> f64) -> usize {
        self.ranked_by(measure)
            .iter()
            .position(|&x| x == i)
            .map_or(0, |p| p + 1)
    }

    /// Serializes to CSV with an `index` column and optional names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is given with the wrong length.
    #[must_use]
    pub fn to_csv(&self, names: Option<&[String]>) -> String {
        if let Some(n) = names {
            assert_eq!(n.len(), self.len(), "names length mismatch");
        }
        let mut out =
            String::from("index,name,performance_raw,performance,robustness,aggressiveness\n");
        for i in 0..self.len() {
            let name = names.map_or(String::new(), |n| quote_csv(&n[i]));
            // `{}` on f64 prints the shortest representation that parses
            // back to the identical bits — the cache must round-trip
            // exactly or reruns would silently diverge from cached runs.
            out.push_str(&format!(
                "{i},{name},{},{},{},{}\n",
                self.performance_raw[i],
                self.performance[i],
                self.robustness[i],
                self.aggressiveness[i]
            ));
        }
        out
    }

    /// Parses the CSV produced by [`Self::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv(text: &str) -> Result<(Self, Vec<String>), String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        if !header.starts_with("index,name,performance_raw") {
            return Err(format!("unexpected header: {header}"));
        }
        let mut raw = Vec::new();
        let mut perf = Vec::new();
        let mut rob = Vec::new();
        let mut agg = Vec::new();
        let mut names = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields = split_csv(line);
            if fields.len() != 6 {
                return Err(format!("line {}: expected 6 fields", lineno + 2));
            }
            let parse = |s: &str, what: &str| {
                s.parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 2))
            };
            names.push(fields[1].clone());
            raw.push(parse(&fields[2], "performance_raw")?);
            perf.push(parse(&fields[3], "performance")?);
            rob.push(parse(&fields[4], "robustness")?);
            agg.push(parse(&fields[5], "aggressiveness")?);
        }
        Ok((Self::new(raw, perf, rob, agg), names))
    }
}

/// Quotes a CSV field if it contains separators or quotes.
#[must_use]
pub fn quote_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits one CSV line honoring double-quoted fields.
#[must_use]
pub fn split_csv(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                field.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    out.push(field);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PraResults {
        PraResults::new(
            vec![10.0, 20.0, 5.0],
            vec![0.5, 1.0, 0.25],
            vec![0.9, 0.3, 0.6],
            vec![0.8, 0.2, 0.55],
        )
    }

    #[test]
    fn point_accessor() {
        let r = sample();
        let p = r.point(1);
        assert_eq!(p.performance, 1.0);
        assert_eq!(p.robustness, 0.3);
    }

    #[test]
    fn ranked_by_performance() {
        let r = sample();
        assert_eq!(r.ranked_by(|p| p.performance), vec![1, 0, 2]);
        assert_eq!(r.ranked_by(|p| p.robustness), vec![0, 2, 1]);
    }

    #[test]
    fn rank_of_is_one_based() {
        let r = sample();
        assert_eq!(r.rank_of(1, |p| p.performance), 1);
        assert_eq!(r.rank_of(2, |p| p.performance), 3);
    }

    #[test]
    fn csv_roundtrip_with_names() {
        let r = sample();
        let names = vec![
            "Stranger=None, k=1".to_string(),
            "plain".to_string(),
            "has \"quotes\"".to_string(),
        ];
        let csv = r.to_csv(Some(&names));
        let (back, back_names) = PraResults::from_csv(&csv).unwrap();
        assert_eq!(back, r);
        assert_eq!(back_names, names);
    }

    #[test]
    fn csv_roundtrip_without_names() {
        let r = sample();
        let csv = r.to_csv(None);
        let (back, names) = PraResults::from_csv(&csv).unwrap();
        assert_eq!(back, r);
        assert!(names.iter().all(String::is_empty));
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(PraResults::from_csv("").is_err());
        assert!(PraResults::from_csv("wrong,header\n").is_err());
        let bad = "index,name,performance_raw,performance,robustness,aggressiveness\n0,x,1,2\n";
        assert!(PraResults::from_csv(bad).is_err());
        let nonnum =
            "index,name,performance_raw,performance,robustness,aggressiveness\n0,x,a,b,c,d\n";
        assert!(PraResults::from_csv(nonnum).is_err());
    }

    #[test]
    fn split_csv_handles_quotes() {
        assert_eq!(
            split_csv(r#"1,"a,b",c"#),
            vec!["1".to_string(), "a,b".to_string(), "c".to_string()]
        );
        assert_eq!(
            split_csv(r#""say ""hi""",2"#),
            vec!["say \"hi\"".to_string(), "2".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "names length")]
    fn csv_names_length_checked() {
        let r = sample();
        let _ = r.to_csv(Some(&["only-one".to_string()]));
    }
}
