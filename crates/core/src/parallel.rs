//! Deterministic fork-join parallelism for sweeps.
//!
//! The paper ran its 107 million simulations on a 50-node cluster; we run
//! on however many cores the machine has. The one invariant that must
//! survive parallelization is *bit-identical results regardless of thread
//! count*: every task derives its own seed from its index (not from any
//! scheduling order), and results are written into a pre-sized output
//! vector at the task's index. Guide-recommended practice for CPU-bound
//! work: plain scoped threads, no async runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Maps `f` over `0..n` in parallel, preserving index order in the output.
///
/// `threads` is a *request*, resolved by [`effective_threads`]: `0` means
/// "use available parallelism", and any request is clamped to
/// `1..=max(n, 1)` — asking for more workers than tasks spawns only `n`,
/// never idle threads. Tasks are distributed by an atomic work counter,
/// so uneven task costs balance automatically; determinism is unaffected
/// because outputs are indexed.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_indexed_scratch(n, threads, || (), |(), i| f(i))
}

/// [`parallel_map_indexed`] with a per-worker scratch value: `scratch()`
/// runs once per worker thread and the result is handed to every task
/// that worker executes, so tight sweeps (e.g. the empirical payoff
/// matrix) can reuse buffers across tasks instead of allocating per task.
///
/// `threads` follows the same clamping as [`parallel_map_indexed`]
/// (via [`effective_threads`]): `0` resolves to the machine's available
/// parallelism, `threads > n` runs only `n` workers, and a resolved count
/// of 1 runs serially on the calling thread (no workers are spawned).
///
/// The scratch must not carry results between tasks — task outputs land
/// at their own index and workers steal tasks in a nondeterministic
/// order, so anything accumulated in the scratch would break the
/// bit-identical-across-thread-counts invariant.
///
/// When metrics are enabled ([`dsa_obs::enable_metrics`]), each fork-join
/// region reports: `parallel.jobs` and `parallel.tasks` counters (event
/// counts, thread-count-invariant), a `parallel.worker_busy_ns` histogram
/// with one observation per worker (its count is the number of workers,
/// so it — alone among the stack's metrics — varies with the thread
/// count), and `parallel.busy_max_ns` / `parallel.busy_mean_ns` /
/// `parallel.imbalance` gauges for the most recent job (imbalance =
/// max/mean worker busy time; 1.0 is a perfectly balanced pool).
pub fn parallel_map_indexed_scratch<T, S, C, F>(
    n: usize,
    threads: usize,
    scratch: C,
    f: F,
) -> Vec<T>
where
    T: Send + Default + Clone,
    C: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads(threads, n);
    if n == 0 {
        return Vec::new();
    }
    let record = dsa_obs::metrics_enabled();
    if threads <= 1 {
        let start = record.then(Instant::now);
        let mut s = scratch();
        let out: Vec<T> = (0..n).map(|i| f(&mut s, i)).collect();
        if let Some(start) = start {
            let busy = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_job(n, &[busy]);
        }
        return out;
    }

    let mut out = vec![T::default(); n];
    let counter = AtomicUsize::new(0);
    // Hand out disjoint &mut slots to workers via raw chunks: simplest is
    // to collect per-worker (index, value) pairs and merge afterwards —
    // avoids unsafe and keeps the code obviously correct.
    let mut partials: Vec<Vec<(usize, T)>> = Vec::new();
    let mut busy_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            let scratch = &scratch;
            handles.push(scope.spawn(move || {
                let mut s = scratch();
                let mut local = Vec::new();
                let mut busy = 0u64;
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if record {
                        let t0 = Instant::now();
                        local.push((i, f(&mut s, i)));
                        busy += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    } else {
                        local.push((i, f(&mut s, i)));
                    }
                }
                (local, busy)
            }));
        }
        for h in handles {
            let (local, busy) = h.join().expect("worker thread panicked");
            partials.push(local);
            busy_ns.push(busy);
        }
    });
    for (i, v) in partials.into_iter().flatten() {
        out[i] = v;
    }
    if record {
        record_job(n, &busy_ns);
    }
    out
}

/// Reports one fork-join region's load metrics; see
/// [`parallel_map_indexed_scratch`] for the metric names.
fn record_job(tasks: usize, busy_ns: &[u64]) {
    // Fork-join boundaries are where sweep memory peaks (every worker's
    // scratch is warm); give the RSS sampler a shot here. Inert unless
    // a binary armed it, so library tests stay deterministic.
    dsa_obs::mem::sample_throttled();
    dsa_obs::incr("parallel.jobs");
    dsa_obs::add("parallel.tasks", tasks as u64);
    let mut max = 0u64;
    let mut sum = 0u64;
    for &b in busy_ns {
        // One sample per worker: the only instrument whose *count* varies
        // with the thread count, so it records under the ThreadDependent
        // class and determinism checks exclude it by tag, not by name.
        dsa_obs::observe_thread_dependent("parallel.worker_busy_ns", b);
        max = max.max(b);
        sum += b;
    }
    let mean = sum as f64 / busy_ns.len() as f64;
    dsa_obs::gauge_set("parallel.busy_max_ns", max as f64);
    dsa_obs::gauge_set("parallel.busy_mean_ns", mean);
    if mean > 0.0 {
        dsa_obs::gauge_set("parallel.imbalance", max as f64 / mean);
    }
}

/// Resolves a thread-count request against the machine and the workload:
/// `requested = 0` becomes the machine's available parallelism, then the
/// result is clamped to `1..=max(tasks, 1)` — so `threads > tasks` never
/// spawns idle workers, and a zero-task job still resolves to 1.
#[must_use]
pub fn effective_threads(requested: usize, tasks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indexed(100, 4, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let f = |i: usize| (i as f64).sqrt().sin();
        let one = parallel_map_indexed(500, 1, f);
        let many = parallel_map_indexed(500, 8, f);
        assert_eq!(one, many);
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u8> = parallel_map_indexed(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_task() {
        assert_eq!(parallel_map_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(9, 0), 1);
    }

    #[test]
    fn zero_thread_request_resolves_to_available_parallelism() {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(effective_threads(0, 1000), hw.min(1000));
        // And the mapped results are identical to an explicit request.
        let auto = parallel_map_indexed(64, 0, |i| i * 3);
        let explicit = parallel_map_indexed(64, 2, |i| i * 3);
        assert_eq!(auto, explicit);
    }

    #[test]
    fn more_threads_than_tasks_is_clamped_not_an_error() {
        // threads > n spawns only n workers; every index still lands once.
        assert_eq!(effective_threads(64, 3), 3);
        let out = parallel_map_indexed(3, 64, |i| i + 10);
        assert_eq!(out, vec![10, 11, 12]);
        // Scratch variant under the same over-request.
        let scratched = parallel_map_indexed_scratch(3, 64, || 0u8, |_, i| i + 10);
        assert_eq!(scratched, out);
    }

    #[test]
    fn boundary_thread_requests_keep_determinism() {
        let f = |i: usize| (i as f64).cos().abs();
        let serial = parallel_map_indexed(50, 1, f);
        for threads in [0usize, 2, 50, 51, 1000] {
            assert_eq!(
                parallel_map_indexed(50, threads, f),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scratch_variant_matches_plain_map_across_thread_counts() {
        // The scratch is a reusable buffer; results must not depend on
        // which worker (and thus which scratch instance) ran a task.
        let f = |buf: &mut Vec<f64>, i: usize| {
            buf.clear();
            buf.extend((0..=i).map(|x| x as f64));
            buf.iter().sum::<f64>().sqrt()
        };
        let one = parallel_map_indexed_scratch(200, 1, Vec::new, f);
        let many = parallel_map_indexed_scratch(200, 8, Vec::new, f);
        assert_eq!(one, many);
        let plain = parallel_map_indexed(200, 4, |i| (0..=i).map(|x| x as f64).sum::<f64>().sqrt());
        assert_eq!(one, plain);
    }

    #[test]
    fn uneven_task_costs_still_ordered() {
        // Tasks with wildly different costs; results must still land at
        // their own index.
        let out = parallel_map_indexed(64, 8, |i| {
            if i % 7 == 0 {
                // Busy work.
                (0..10_000).map(|x| x as f64).sum::<f64>() * 0.0 + i as f64
            } else {
                i as f64
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
