//! Deterministic fork-join parallelism for sweeps.
//!
//! The paper ran its 107 million simulations on a 50-node cluster; we run
//! on however many cores the machine has. The one invariant that must
//! survive parallelization is *bit-identical results regardless of thread
//! count*: every task derives its own seed from its index (not from any
//! scheduling order), and results are written into a pre-sized output
//! vector at the task's index. Guide-recommended practice for CPU-bound
//! work: plain scoped threads, no async runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` in parallel, preserving index order in the output.
///
/// `threads = 0` means "use available parallelism". Tasks are distributed
/// by an atomic work counter, so uneven task costs balance automatically;
/// determinism is unaffected because outputs are indexed.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_indexed_scratch(n, threads, || (), |(), i| f(i))
}

/// [`parallel_map_indexed`] with a per-worker scratch value: `scratch()`
/// runs once per worker thread and the result is handed to every task
/// that worker executes, so tight sweeps (e.g. the empirical payoff
/// matrix) can reuse buffers across tasks instead of allocating per task.
///
/// The scratch must not carry results between tasks — task outputs land
/// at their own index and workers steal tasks in a nondeterministic
/// order, so anything accumulated in the scratch would break the
/// bit-identical-across-thread-counts invariant.
pub fn parallel_map_indexed_scratch<T, S, C, F>(
    n: usize,
    threads: usize,
    scratch: C,
    f: F,
) -> Vec<T>
where
    T: Send + Default + Clone,
    C: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads(threads, n);
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        let mut s = scratch();
        return (0..n).map(|i| f(&mut s, i)).collect();
    }

    let mut out = vec![T::default(); n];
    let counter = AtomicUsize::new(0);
    // Hand out disjoint &mut slots to workers via raw chunks: simplest is
    // to collect per-worker (index, value) pairs and merge afterwards —
    // avoids unsafe and keeps the code obviously correct.
    let mut partials: Vec<Vec<(usize, T)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            let scratch = &scratch;
            handles.push(scope.spawn(move || {
                let mut s = scratch();
                let mut local = Vec::new();
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&mut s, i)));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker thread panicked"));
        }
    });
    for (i, v) in partials.into_iter().flatten() {
        out[i] = v;
    }
    out
}

/// Resolves a thread-count request against the machine and the workload.
#[must_use]
pub fn effective_threads(requested: usize, tasks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indexed(100, 4, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let f = |i: usize| (i as f64).sqrt().sin();
        let one = parallel_map_indexed(500, 1, f);
        let many = parallel_map_indexed(500, 8, f);
        assert_eq!(one, many);
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u8> = parallel_map_indexed(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_task() {
        assert_eq!(parallel_map_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(9, 0), 1);
    }

    #[test]
    fn scratch_variant_matches_plain_map_across_thread_counts() {
        // The scratch is a reusable buffer; results must not depend on
        // which worker (and thus which scratch instance) ran a task.
        let f = |buf: &mut Vec<f64>, i: usize| {
            buf.clear();
            buf.extend((0..=i).map(|x| x as f64));
            buf.iter().sum::<f64>().sqrt()
        };
        let one = parallel_map_indexed_scratch(200, 1, Vec::new, f);
        let many = parallel_map_indexed_scratch(200, 8, Vec::new, f);
        assert_eq!(one, many);
        let plain = parallel_map_indexed(200, 4, |i| (0..=i).map(|x| x as f64).sum::<f64>().sqrt());
        assert_eq!(one, plain);
    }

    #[test]
    fn uneven_task_costs_still_ordered() {
        // Tasks with wildly different costs; results must still land at
        // their own index.
        let out = parallel_map_indexed(64, 8, |i| {
            if i % 7 == 0 {
                // Busy work.
                (0..10_000).map(|x| x as f64).sum::<f64>() * 0.0 + i as f64
            } else {
                i as f64
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
