//! The PRA quantification — the paper's solution concept (§3.2).
//!
//! Maps every protocol Π in a design space to a point in the
//! three-dimensional PRA cube `[0,1]³`:
//!
//! * **Performance** `P(Π)`: mean per-peer utility of a homogeneous
//!   population, averaged over runs, normalized so the best protocol in
//!   the space scores 1.
//! * **Robustness** `R(Π)`: the proportion of tournament games Π wins when
//!   it holds 50% of the population against every (or a sampled set of)
//!   other protocol(s) holding the other 50%.
//! * **Aggressiveness** `A(Π)`: the same with Π holding only 10%.
//!
//! The 50% robustness split is the paper's "highest number that an
//! invading protocol can have"; [`tournament_rates`] is exposed separately
//! so the §4.3.2 validation (90/10 split, Pearson ≈ 0.97 against 50/50)
//! can be reproduced.

use crate::parallel::parallel_map_indexed;
use crate::results::PraResults;
use crate::sim::EncounterSim;
use crate::tournament::{schedule, OpponentSampling, WinLedger};
use dsa_workloads::seeds::SeedSeq;

/// Configuration of a PRA sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PraConfig {
    /// Homogeneous runs per protocol (paper: 100).
    pub performance_runs: usize,
    /// Runs per tournament encounter (paper: 10).
    pub encounter_runs: usize,
    /// Protagonist population share in the robustness phase (paper: 0.5).
    pub robustness_share: f64,
    /// Protagonist population share in the aggressiveness phase (paper: 0.1).
    pub aggressiveness_share: f64,
    /// Opponent selection (paper: exhaustive; laptop default: sampled).
    pub sampling: OpponentSampling,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Master seed; the entire sweep is a pure function of it.
    pub seed: u64,
}

impl Default for PraConfig {
    /// Laptop-scale defaults; see `DESIGN.md` §3 for the scaling argument.
    fn default() -> Self {
        Self {
            performance_runs: 8,
            encounter_runs: 2,
            robustness_share: 0.5,
            aggressiveness_share: 0.1,
            sampling: OpponentSampling::Sampled(64),
            threads: 0,
            seed: 0x5EED,
        }
    }
}

impl PraConfig {
    /// The paper's full-fidelity setting (hours of CPU on the full space).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            performance_runs: 100,
            encounter_runs: 10,
            sampling: OpponentSampling::Exhaustive,
            ..Self::default()
        }
    }
}

/// One protocol's position in PRA space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PraPoint {
    /// Normalized performance in `[0, 1]`.
    pub performance: f64,
    /// Robustness in `[0, 1]`.
    pub robustness: f64,
    /// Aggressiveness in `[0, 1]`.
    pub aggressiveness: f64,
}

/// Runs the full PRA quantification over a protocol list.
///
/// Phases: performance (homogeneous populations), robustness tournament,
/// aggressiveness tournament. Each phase is parallel and deterministic in
/// `config.seed` regardless of `config.threads`, and is traced as a
/// `pra.{performance,robustness,aggressiveness}` span when tracing is on.
pub fn quantify<S: EncounterSim>(
    sim: &S,
    protocols: &[S::Protocol],
    config: &PraConfig,
) -> PraResults {
    let (performance_raw, performance) = {
        let _s = dsa_obs::span("pra.performance");
        let raw = performance_phase(sim, protocols, config);
        let norm = dsa_stats::describe::normalize_by_max(&raw);
        (raw, norm)
    };
    let robustness = {
        let _s = dsa_obs::span("pra.robustness");
        tournament_rates(sim, protocols, config.robustness_share, config, 1)
    };
    let aggressiveness = {
        let _s = dsa_obs::span("pra.aggressiveness");
        tournament_rates(sim, protocols, config.aggressiveness_share, config, 2)
    };
    PraResults::new(performance_raw, performance, robustness, aggressiveness)
}

/// The performance phase alone (used by the churn experiment, which the
/// paper runs without re-doing the tournaments).
pub fn performance_phase<S: EncounterSim>(
    sim: &S,
    protocols: &[S::Protocol],
    config: &PraConfig,
) -> Vec<f64> {
    let root = SeedSeq::new(config.seed).child(0);
    parallel_map_indexed(protocols.len(), config.threads, |i| {
        let node = root.child(i as u64);
        let runs = config.performance_runs.max(1);
        let mut acc = 0.0;
        for r in 0..runs {
            acc += sim.run_homogeneous(&protocols[i], node.child(r as u64).seed());
        }
        acc / runs as f64
    })
}

/// Runs one tournament at the given protagonist share and returns each
/// protocol's win rate.
///
/// `phase_tag` separates the seed streams of different tournaments run
/// under the same master seed (robustness vs aggressiveness vs the 90/10
/// validation).
pub fn tournament_rates<S: EncounterSim>(
    sim: &S,
    protocols: &[S::Protocol],
    protagonist_share: f64,
    config: &PraConfig,
    phase_tag: u64,
) -> Vec<f64> {
    assert!(
        protagonist_share > 0.0 && protagonist_share < 1.0,
        "protagonist share must be in (0,1), got {protagonist_share}"
    );
    let n = protocols.len();
    let pairings = schedule(
        n,
        config.sampling,
        SeedSeq::new(config.seed).child(99).seed(),
    );
    let root = SeedSeq::new(config.seed).child(phase_tag);
    let runs = config.encounter_runs.max(1);

    // Each task resolves one pairing (all its runs) to (protagonist, wins).
    let outcomes: Vec<(usize, u64, u64)> =
        parallel_map_indexed(pairings.len(), config.threads, |p| {
            let pairing = pairings[p];
            let node = root.child(p as u64);
            let mut wins = 0u64;
            for r in 0..runs {
                let seed = node.child(r as u64).seed();
                let (own, other) = sim.run_encounter(
                    &protocols[pairing.protagonist],
                    &protocols[pairing.opponent],
                    protagonist_share,
                    seed,
                );
                if own > other {
                    wins += 1;
                }
            }
            (pairing.protagonist, wins, runs as u64)
        });

    let mut ledger = WinLedger::new(n);
    for (prot, wins, games) in outcomes {
        ledger.record_batch(prot, wins, games);
    }
    ledger.rates()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::testsim::FreeriderToy;

    fn protocols() -> Vec<f64> {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    }

    fn config() -> PraConfig {
        PraConfig {
            performance_runs: 3,
            encounter_runs: 2,
            sampling: OpponentSampling::Exhaustive,
            threads: 2,
            seed: 7,
            ..PraConfig::default()
        }
    }

    #[test]
    fn performance_ranks_generosity() {
        // In the toy domain, homogeneous utility equals generosity.
        let r = quantify(&FreeriderToy, &protocols(), &config());
        assert_eq!(r.performance.len(), 5);
        assert!((r.performance[4] - 1.0).abs() < 1e-9);
        for w in r.performance.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn robustness_rewards_freeriding_in_toy_domain() {
        // In encounters the less generous side always wins (+|a−b| margin),
        // so robustness is monotone decreasing in generosity: 0.0 wins all.
        let r = quantify(&FreeriderToy, &protocols(), &config());
        assert_eq!(r.robustness[0], 1.0);
        assert_eq!(r.robustness[4], 0.0);
        for w in r.robustness.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn aggressiveness_matches_robustness_in_share_independent_toy() {
        // The toy's winner does not depend on the split, mirroring the
        // paper's observation that R and A are highly correlated.
        let r = quantify(&FreeriderToy, &protocols(), &config());
        assert_eq!(r.robustness, r.aggressiveness);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut c1 = config();
        c1.threads = 1;
        let mut c8 = config();
        c8.threads = 8;
        let a = quantify(&FreeriderToy, &protocols(), &c1);
        let b = quantify(&FreeriderToy, &protocols(), &c8);
        assert_eq!(a.performance_raw, b.performance_raw);
        assert_eq!(a.robustness, b.robustness);
        assert_eq!(a.aggressiveness, b.aggressiveness);
    }

    #[test]
    fn sampled_tournament_approximates_exhaustive() {
        let mut sampled = config();
        sampled.sampling = OpponentSampling::Sampled(3);
        let full = quantify(&FreeriderToy, &protocols(), &config());
        let sub = quantify(&FreeriderToy, &protocols(), &sampled);
        // The extremes are invariant to which opponents were drawn (the
        // toy's least generous protocol beats everyone, the most generous
        // loses to everyone), and the estimates must agree in the large.
        assert_eq!(sub.robustness[0], 1.0);
        assert_eq!(sub.robustness[4], 0.0);
        let rho = dsa_stats::correlation::pearson(&full.robustness, &sub.robustness);
        assert!(rho > 0.8, "rho={rho}");
    }

    #[test]
    fn ninety_ten_correlates_with_fifty_fifty() {
        // The paper's §4.3.2 check, in miniature.
        let c = config();
        let p = protocols();
        let r50 = tournament_rates(&FreeriderToy, &p, 0.5, &c, 1);
        let r90 = tournament_rates(&FreeriderToy, &p, 0.9, &c, 3);
        let rho = dsa_stats::correlation::pearson(&r50, &r90);
        assert!(rho > 0.95, "rho={rho}");
    }

    #[test]
    #[should_panic(expected = "protagonist share")]
    fn degenerate_share_panics() {
        let _ = tournament_rates(&FreeriderToy, &protocols(), 1.0, &config(), 1);
    }
}
