//! Content-addressed sweep cache, generic over domains.
//!
//! A PRA sweep is a pure function of *(domain, space shape, simulator
//! scale, master seed)*, so the harness computes each sweep once and
//! caches it as CSV under `results/`. The cache file is stamped with a
//! metadata line recording the full key:
//!
//! ```text
//! # dsa-sweep v1 domain=rep space=0123456789abcdef scale=lab params=89abcdef01234567 seed=24301 n=216
//! index,name,performance_raw,performance,robustness,aggressiveness
//! ...
//! ```
//!
//! On load, the stamp is compared against the key the caller is about to
//! compute under; any mismatch — different space hash (the domain's
//! actualization changed), scale, parameter fingerprint (a scale preset
//! or effort mapping was edited), seed or protocol count — means the
//! cache is stale and is recomputed, not trusted. A malformed body is an
//! error (silent truncation must not masquerade as data).

use crate::domain::{fnv1a, DynDomain, Effort};
use crate::pra::PraConfig;
use crate::results::PraResults;
use std::path::{Path, PathBuf};

/// Fingerprint of everything besides domain/scale name and seed that a
/// sweep's numbers depend on: the simulator parameters (via the domain's
/// textual signature) and the PRA configuration. Threads are excluded —
/// results are deterministic across thread counts — and the seed is its
/// own key field.
#[must_use]
pub fn params_hash(sim_signature: &str, config: &PraConfig) -> u64 {
    let canon = format!(
        "{sim_signature}|perf_runs={} enc_runs={} rob_share={} agg_share={} sampling={:?}",
        config.performance_runs,
        config.encounter_runs,
        config.robustness_share,
        config.aggressiveness_share,
        config.sampling
    );
    fnv1a(canon.as_bytes())
}

/// The full identity of a sweep: what must match for a cached result to
/// be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepKey {
    /// Domain name (`swarm`, `gossip`, `rep`, ...).
    pub domain: String,
    /// Space-shape hash ([`crate::domain::space_shape_hash`]).
    pub space_hash: u64,
    /// Scale name (`smoke`, `lab`, `paper`).
    pub scale: String,
    /// Simulator + PRA parameter fingerprint ([`params_hash`]).
    pub params: u64,
    /// Master seed of the sweep.
    pub seed: u64,
    /// Number of protocols in the space.
    pub len: usize,
}

impl SweepKey {
    /// Builds the key for a domain swept at an effort level under a PRA
    /// configuration (the seed is `config.seed`).
    #[must_use]
    pub fn of(domain: &dyn DynDomain, scale: &str, effort: Effort, config: &PraConfig) -> Self {
        Self::with_signature(domain, scale, &domain.sim_signature(effort), config)
    }

    /// Builds the key from an explicit simulator signature — for callers
    /// that construct the simulator themselves rather than through the
    /// domain's effort mapping. Both paths must fingerprint the same
    /// parameters the same way to share a cache entry.
    #[must_use]
    pub fn with_signature(
        domain: &dyn DynDomain,
        scale: &str,
        sim_signature: &str,
        config: &PraConfig,
    ) -> Self {
        Self {
            domain: domain.name().to_string(),
            space_hash: domain.space_hash(),
            scale: scale.to_string(),
            params: params_hash(sim_signature, config),
            seed: config.seed,
            len: domain.size(),
        }
    }

    /// The cache file path for this key.
    #[must_use]
    pub fn cache_path(&self, out_dir: &Path) -> PathBuf {
        out_dir.join(format!("pra-{}-{}.csv", self.domain, self.scale))
    }

    /// Renders the metadata stamp (the cache file's first line).
    #[must_use]
    fn meta_line(&self) -> String {
        format!(
            "# dsa-sweep v1 domain={} space={:016x} scale={} params={:016x} seed={} n={}",
            self.domain, self.space_hash, self.scale, self.params, self.seed, self.len
        )
    }

    /// Parses a metadata stamp; `None` when the line is not a v1 stamp.
    fn parse_meta(line: &str) -> Option<Self> {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("#") || tokens.next() != Some("dsa-sweep") {
            return None;
        }
        if tokens.next() != Some("v1") {
            return None;
        }
        let mut domain = None;
        let mut space_hash = None;
        let mut scale = None;
        let mut params = None;
        let mut seed = None;
        let mut len = None;
        for token in tokens {
            let (key, value) = token.split_once('=')?;
            match key {
                "domain" => domain = Some(value.to_string()),
                "space" => space_hash = u64::from_str_radix(value, 16).ok(),
                "scale" => scale = Some(value.to_string()),
                "params" => params = u64::from_str_radix(value, 16).ok(),
                "seed" => seed = value.parse().ok(),
                "n" => len = value.parse().ok(),
                _ => {}
            }
        }
        Some(Self {
            domain: domain?,
            space_hash: space_hash?,
            scale: scale?,
            params: params?,
            seed: seed?,
            len: len?,
        })
    }
}

/// A sweep together with its key and provenance.
#[derive(Debug, Clone)]
pub struct DomainSweep {
    /// The key the sweep was computed (or validated) under.
    pub key: SweepKey,
    /// Protocol display codes, in index order.
    pub names: Vec<String>,
    /// The PRA measures.
    pub results: PraResults,
    /// Whether this sweep was served from the cache.
    pub from_cache: bool,
}

impl DomainSweep {
    /// Attempts to load a cached sweep matching `key`. Returns `Ok(None)`
    /// when the file is missing, carries no (or a mismatched) stamp, or
    /// holds the wrong number of rows — all the "recompute, don't trust"
    /// cases.
    ///
    /// # Errors
    ///
    /// Returns an error when the file exists with a matching stamp but
    /// its body cannot be parsed (corruption should be surfaced, not
    /// silently recomputed over).
    pub fn load(key: &SweepKey, out_dir: &Path) -> Result<Option<Self>, String> {
        let path = key.cache_path(out_dir);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let Some((first, body)) = text.split_once('\n') else {
            return Ok(None);
        };
        match SweepKey::parse_meta(first) {
            Some(stamp) if stamp == *key => {}
            _ => return Ok(None),
        }
        let (results, names) = PraResults::from_csv(body)
            .map_err(|e| format!("corrupt sweep cache {}: {e}", path.display()))?;
        if results.len() != key.len {
            return Ok(None);
        }
        Ok(Some(Self {
            key: key.clone(),
            names,
            results,
            from_cache: true,
        }))
    }

    /// Loads the cached sweep for `key`, or computes it with `compute`
    /// and caches the result.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache directory/file cannot be written.
    pub fn load_or_compute_with(
        key: SweepKey,
        out_dir: &Path,
        compute: impl FnOnce() -> (Vec<String>, PraResults),
    ) -> Result<Self, String> {
        if let Some(cached) = Self::load(&key, out_dir)? {
            return Ok(cached);
        }
        let (names, results) = compute();
        let sweep = Self {
            key,
            names,
            results,
            from_cache: false,
        };
        sweep.store(out_dir)?;
        Ok(sweep)
    }

    /// Loads the cached sweep for a domain at a scale, or runs the full
    /// PRA quantification via the domain's erased simulator and caches
    /// it. The key's seed is `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache cannot be written.
    pub fn load_or_compute(
        domain: &dyn DynDomain,
        effort: Effort,
        config: &PraConfig,
        scale: &str,
        out_dir: &Path,
    ) -> Result<Self, String> {
        let key = SweepKey::of(domain, scale, effort, config);
        Self::load_or_compute_with(key, out_dir, || {
            (domain.codes(), domain.quantify_all(effort, config))
        })
    }

    /// Writes the sweep to its cache path, atomically: the content goes
    /// to a temporary sibling first and is renamed into place, so an
    /// interrupted run can never leave a stamp-matching truncated file
    /// (which would surface as a hard "corrupt cache" error on every
    /// subsequent run).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be written.
    pub fn store(&self, out_dir: &Path) -> Result<PathBuf, String> {
        let path = self.key.cache_path(out_dir);
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
        let mut text = self.key.meta_line();
        text.push('\n');
        text.push_str(&self.results.to_csv(Some(&self.names)));
        let tmp = path.with_extension(format!("csv.tmp.{}", std::process::id()));
        std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("installing {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::erase;
    use crate::sim::testsim::ToyDomain;
    use crate::tournament::OpponentSampling;

    fn config() -> PraConfig {
        PraConfig {
            performance_runs: 2,
            encounter_runs: 1,
            sampling: OpponentSampling::Exhaustive,
            threads: 1,
            seed: 11,
            ..PraConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsa-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cached_sweep_is_bit_identical_to_fresh_compute() {
        let dir = temp_dir("roundtrip");
        let domain = erase(ToyDomain);
        let cfg = config();
        let fresh =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!fresh.from_cache);
        let reloaded =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(reloaded.from_cache);
        // Bit-identical: PraResults is compared field by field on f64s.
        assert_eq!(fresh.results, reloaded.results);
        assert_eq!(fresh.names, reloaded.names);
        // And identical to an uncached recompute.
        let direct = domain.quantify_all(Effort::Smoke, &cfg);
        assert_eq!(reloaded.results, direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_space_hash_is_recomputed_not_trusted() {
        let dir = temp_dir("hash");
        let domain = erase(ToyDomain);
        let cfg = config();
        let first =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!first.from_cache);
        // Same path, but the caller's space hash differs (as if the
        // domain's actualization changed between runs).
        let mut stale_key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &cfg);
        stale_key.space_hash ^= 0xDEAD_BEEF;
        assert!(DomainSweep::load(&stale_key, &dir).unwrap().is_none());
        let recomputed = DomainSweep::load_or_compute_with(stale_key, &dir, || {
            (domain.codes(), domain.quantify_all(Effort::Smoke, &cfg))
        })
        .unwrap();
        assert!(!recomputed.from_cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_pra_parameters_are_recomputed_not_trusted() {
        let dir = temp_dir("params");
        let domain = erase(ToyDomain);
        let cfg = config();
        let first =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!first.from_cache);
        // Same scale name and seed, but e.g. the sampling was edited: the
        // stamped params fingerprint no longer matches.
        let mut edited = cfg;
        edited.sampling = OpponentSampling::Sampled(2);
        let second =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &edited, "smoke", &dir).unwrap();
        assert!(!second.from_cache, "edited PRA config must recompute");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_scale_seed_or_len_is_recomputed() {
        let dir = temp_dir("meta");
        let domain = erase(ToyDomain);
        let cfg = config();
        let sweep =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        // Tamper with the stamp in place: claim another scale.
        let path = sweep.key.cache_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("scale=smoke", "scale=lab")).unwrap();
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &cfg);
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        // A different seed in the caller's key also misses.
        sweep.store(&dir).unwrap();
        let mut reseeded = cfg;
        reseeded.seed += 1;
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &reseeded);
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        // A wrong row count misses even when the stamp agrees.
        let mut short = sweep.clone();
        short.key.len = 4;
        assert!(DomainSweep::load(&short.key, &dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unstamped_legacy_file_is_ignored() {
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let domain = erase(ToyDomain);
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &config());
        // An old-format cache: plain CSV, no stamp.
        let body = "index,name,performance_raw,performance,robustness,aggressiveness\n\
                    0,g0,1,1,1,1\n1,g1,1,1,1,1\n2,g2,1,1,1,1\n3,g3,1,1,1,1\n4,g4,1,1,1,1\n";
        std::fs::write(key.cache_path(&dir), body).unwrap();
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_body_under_matching_stamp_is_an_error() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let domain = erase(ToyDomain);
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &config());
        let text = format!("{}\nnot,a,sweep\n", key.meta_line());
        std::fs::write(key.cache_path(&dir), text).unwrap();
        assert!(DomainSweep::load(&key, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_line_roundtrips() {
        let key = SweepKey {
            domain: "rep".into(),
            space_hash: 0x0123_4567_89ab_cdef,
            scale: "lab".into(),
            params: 0x89ab_cdef_0123_4567,
            seed: 24301,
            len: 216,
        };
        assert_eq!(SweepKey::parse_meta(&key.meta_line()), Some(key));
        assert!(SweepKey::parse_meta("index,name,performance_raw").is_none());
        assert!(SweepKey::parse_meta("# dsa-sweep v2 domain=x").is_none());
        // A stamp without a params field (pre-fingerprint format) is
        // stale by construction.
        assert!(SweepKey::parse_meta(
            "# dsa-sweep v1 domain=rep space=0123456789abcdef scale=lab seed=24301 n=216"
        )
        .is_none());
    }
}
