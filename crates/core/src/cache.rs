//! Content-addressed sweep cache, generic over domains.
//!
//! A PRA sweep is a pure function of *(domain, space shape, simulator
//! scale, master seed)*, so the harness computes each sweep once and
//! caches it as CSV under `results/`. The cache file is stamped with a
//! metadata line recording the full key:
//!
//! ```text
//! # dsa-sweep v1 domain=rep space=0123456789abcdef scale=lab params=89abcdef01234567 seed=24301 n=216
//! index,name,performance_raw,performance,robustness,aggressiveness
//! ...
//! ```
//!
//! On load, the stamp is compared against the key the caller is about to
//! compute under; any mismatch — different space hash (the domain's
//! actualization changed), scale, parameter fingerprint (a scale preset
//! or effort mapping was edited), seed or protocol count — means the
//! cache is stale and is recomputed, not trusted. A malformed body is an
//! error (silent truncation must not masquerade as data).

use crate::domain::{fnv1a, DynDomain, Effort};
use crate::pra::PraConfig;
use crate::results::PraResults;
use std::path::{Path, PathBuf};

/// Fingerprint of everything besides domain/scale name and seed that a
/// sweep's numbers depend on: the simulator parameters (via the domain's
/// textual signature) and the PRA configuration. Threads are excluded —
/// results are deterministic across thread counts — and the seed is its
/// own key field.
#[must_use]
pub fn params_hash(sim_signature: &str, config: &PraConfig) -> u64 {
    let canon = format!(
        "{sim_signature}|perf_runs={} enc_runs={} rob_share={} agg_share={} sampling={:?}",
        config.performance_runs,
        config.encounter_runs,
        config.robustness_share,
        config.aggressiveness_share,
        config.sampling
    );
    fnv1a(canon.as_bytes())
}

/// The full identity of a sweep: what must match for a cached result to
/// be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepKey {
    /// Domain name (`swarm`, `gossip`, `rep`, ...).
    pub domain: String,
    /// Space-shape hash ([`crate::domain::space_shape_hash`]).
    pub space_hash: u64,
    /// Scale name (`smoke`, `lab`, `paper`).
    pub scale: String,
    /// Simulator + PRA parameter fingerprint ([`params_hash`]).
    pub params: u64,
    /// Master seed of the sweep.
    pub seed: u64,
    /// Number of protocols in the space.
    pub len: usize,
    /// Attack-model fingerprint: 0 for plain PRA sweeps; adversarial
    /// sweeps (`dsa-attacks`) set it to the model + budget-grid hash, so
    /// their stamps can never validate a plain sweep's file (or another
    /// attack's) and a changed budget grid self-invalidates.
    pub attack: u64,
    /// Evolutionary-dynamics fingerprint: 0 for plain PRA and attack
    /// sweeps; population-dynamics sweeps (`dsa-evolution`) set it to the
    /// candidate-set + dynamics-parameter hash, so an evo stamp can never
    /// validate any other sweep and a changed candidate set or dynamics
    /// configuration self-invalidates.
    pub evo: u64,
    /// Variance-attribution fingerprint: 0 for every sweep; derived
    /// attribution tables (`dsa-attribution`) set it to the hash of the
    /// response surface's source stamps plus the model specification, so
    /// an attribution stamp can never validate a sweep (or vice versa)
    /// and a changed underlying sweep or model spec self-invalidates.
    pub attrib: u64,
}

impl SweepKey {
    /// Builds the key for a domain swept at an effort level under a PRA
    /// configuration (the seed is `config.seed`).
    #[must_use]
    pub fn of(domain: &dyn DynDomain, scale: &str, effort: Effort, config: &PraConfig) -> Self {
        Self::with_signature(domain, scale, &domain.sim_signature(effort), config)
    }

    /// Builds the key from an explicit simulator signature — for callers
    /// that construct the simulator themselves rather than through the
    /// domain's effort mapping. Both paths must fingerprint the same
    /// parameters the same way to share a cache entry.
    #[must_use]
    pub fn with_signature(
        domain: &dyn DynDomain,
        scale: &str,
        sim_signature: &str,
        config: &PraConfig,
    ) -> Self {
        Self {
            domain: domain.name().to_string(),
            space_hash: domain.space_hash(),
            scale: scale.to_string(),
            params: params_hash(sim_signature, config),
            seed: config.seed,
            len: domain.size(),
            attack: 0,
            evo: 0,
            attrib: 0,
        }
    }

    /// The same key re-stamped for an adversarial sweep: `attack` is the
    /// attack model's fingerprint ([`crate::domain::fnv1a`] over its name,
    /// parameters and budget grid).
    #[must_use]
    pub fn with_attack(mut self, attack: u64) -> Self {
        self.attack = attack;
        self
    }

    /// The same key re-stamped for a population-dynamics sweep: `evo` is
    /// the evolution fingerprint ([`crate::domain::fnv1a`] over the
    /// candidate set and the dynamics parameters).
    #[must_use]
    pub fn with_evo(mut self, evo: u64) -> Self {
        self.evo = evo;
        self
    }

    /// The same key re-stamped for a derived attribution table: `attrib`
    /// is the attribution fingerprint ([`crate::domain::fnv1a`] over the
    /// source sweeps' stamps and the model specification).
    #[must_use]
    pub fn with_attrib(mut self, attrib: u64) -> Self {
        self.attrib = attrib;
        self
    }

    /// The cache file path for this key.
    #[must_use]
    pub fn cache_path(&self, out_dir: &Path) -> PathBuf {
        out_dir.join(format!("pra-{}-{}.csv", self.domain, self.scale))
    }

    /// Renders the metadata stamp (the cache file's first line). The
    /// `attack` field is stamped only when set, so plain PRA stamps keep
    /// their original format.
    #[must_use]
    pub fn meta_line(&self) -> String {
        let mut line = format!(
            "# dsa-sweep v1 domain={} space={:016x} scale={} params={:016x} seed={} n={}",
            self.domain, self.space_hash, self.scale, self.params, self.seed, self.len
        );
        if self.attack != 0 {
            line.push_str(&format!(" attack={:016x}", self.attack));
        }
        if self.evo != 0 {
            line.push_str(&format!(" evo={:016x}", self.evo));
        }
        if self.attrib != 0 {
            line.push_str(&format!(" attrib={:016x}", self.attrib));
        }
        line
    }

    /// Compares this (caller's) key against a parsed stamp and names the
    /// first field that diverges, in stamp order: `domain`, `space`,
    /// `scale`, `params`, `seed`, `n`, `attack`, `evo`, `attrib`. `None`
    /// means the stamp validates. The name feeds the `cache.miss.<field>`
    /// counters and cache-debugging messages, so a stale file says *why*
    /// it was rejected instead of silently recomputing.
    #[must_use]
    pub fn first_mismatch(&self, stamp: &Self) -> Option<&'static str> {
        if self.domain != stamp.domain {
            return Some("domain");
        }
        if self.space_hash != stamp.space_hash {
            return Some("space");
        }
        if self.scale != stamp.scale {
            return Some("scale");
        }
        if self.params != stamp.params {
            return Some("params");
        }
        if self.seed != stamp.seed {
            return Some("seed");
        }
        if self.len != stamp.len {
            return Some("n");
        }
        if self.attack != stamp.attack {
            return Some("attack");
        }
        if self.evo != stamp.evo {
            return Some("evo");
        }
        if self.attrib != stamp.attrib {
            return Some("attrib");
        }
        None
    }

    /// Parses a metadata stamp; `None` when the line is not a v1 stamp.
    #[must_use]
    pub fn parse_meta(line: &str) -> Option<Self> {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("#") || tokens.next() != Some("dsa-sweep") {
            return None;
        }
        if tokens.next() != Some("v1") {
            return None;
        }
        let mut domain = None;
        let mut space_hash = None;
        let mut scale = None;
        let mut params = None;
        let mut seed = None;
        let mut len = None;
        let mut attack = 0;
        let mut evo = 0;
        let mut attrib = 0;
        for token in tokens {
            let (key, value) = token.split_once('=')?;
            match key {
                "domain" => domain = Some(value.to_string()),
                "space" => space_hash = u64::from_str_radix(value, 16).ok(),
                "scale" => scale = Some(value.to_string()),
                "params" => params = u64::from_str_radix(value, 16).ok(),
                "seed" => seed = value.parse().ok(),
                "n" => len = value.parse().ok(),
                "attack" => attack = u64::from_str_radix(value, 16).ok()?,
                "evo" => evo = u64::from_str_radix(value, 16).ok()?,
                "attrib" => attrib = u64::from_str_radix(value, 16).ok()?,
                _ => {}
            }
        }
        Some(Self {
            domain: domain?,
            space_hash: space_hash?,
            scale: scale?,
            params: params?,
            seed: seed?,
            len: len?,
            attack,
            evo,
            attrib,
        })
    }
}

/// The `cache.miss.<field>` counter for a [`SweepKey::first_mismatch`]
/// field name (static, so disabled-metrics calls stay allocation-free).
fn miss_counter(field: &'static str) -> &'static str {
    match field {
        "domain" => "cache.miss.domain",
        "space" => "cache.miss.space",
        "scale" => "cache.miss.scale",
        "params" => "cache.miss.params",
        "seed" => "cache.miss.seed",
        "n" => "cache.miss.n",
        "attack" => "cache.miss.attack",
        "evo" => "cache.miss.evo",
        "attrib" => "cache.miss.attrib",
        _ => "cache.miss.other",
    }
}

/// Reads a stamped cache file and returns its body when the stamp's key
/// equals `key`. `Ok(None)` covers the "recompute, don't trust" cases:
/// missing file, missing stamp, or a stamp computed under any other key.
///
/// Every outcome is counted (when metrics are enabled): `cache.hit` for a
/// validated stamp, `cache.miss.absent` / `cache.miss.unstamped` for a
/// missing file or stamp, and `cache.miss.<field>` naming the first stamp
/// field that diverged ([`SweepKey::first_mismatch`]) — so a stale cache
/// reports *why* it was invalidated.
///
/// # Errors
///
/// Returns an error when the file exists but cannot be read.
pub fn read_stamped(path: &Path, key: &SweepKey) -> Result<Option<String>, String> {
    if !path.exists() {
        dsa_obs::incr("cache.miss.absent");
        dsa_obs::note_cache_event(cache_file_name(path), "miss.absent");
        return Ok(None);
    }
    let mut text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let Some(stamp_end) = text.find('\n') else {
        dsa_obs::incr("cache.miss.unstamped");
        dsa_obs::note_cache_event(cache_file_name(path), "miss.unstamped");
        return Ok(None);
    };
    match SweepKey::parse_meta(&text[..stamp_end]) {
        Some(stamp) => match key.first_mismatch(&stamp) {
            None => {
                dsa_obs::incr("cache.hit");
                dsa_obs::note_cache_event(cache_file_name(path), "hit");
                // Strip the stamp in place rather than copying the
                // (possibly multi-thousand-row) body into a second
                // allocation.
                text.drain(..=stamp_end);
                // Body sizes are a pure function of the workload (not of
                // timing), so this histogram is bit-identical across
                // thread counts and repeated runs.
                dsa_obs::observe("cache.read_bytes", text.len() as u64);
                Ok(Some(text))
            }
            Some(field) => {
                let counter = miss_counter(field);
                dsa_obs::incr(counter);
                let outcome = counter.strip_prefix("cache.").unwrap_or(counter);
                dsa_obs::note_cache_event(cache_file_name(path), outcome);
                Ok(None)
            }
        },
        None => {
            dsa_obs::incr("cache.miss.unstamped");
            dsa_obs::note_cache_event(cache_file_name(path), "miss.unstamped");
            Ok(None)
        }
    }
}

/// The bare file name a cache event is journaled under (paths vary with
/// the out-dir; file names are stable workload identifiers).
fn cache_file_name(path: &Path) -> &str {
    path.file_name().and_then(|n| n.to_str()).unwrap_or("?")
}

/// Writes `body` under `key`'s stamp, atomically: the content goes to a
/// temporary sibling first and is renamed into place, so an interrupted
/// run can never leave a stamp-matching truncated file (which would
/// surface as a hard "corrupt cache" error on every subsequent run).
///
/// # Errors
///
/// Returns an error when the directory or file cannot be written.
pub fn write_stamped(path: &Path, key: &SweepKey, body: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let mut text = key.meta_line();
    text.push('\n');
    text.push_str(body);
    let tmp = path.with_extension(format!("csv.tmp.{}", std::process::id()));
    dsa_obs::observe("cache.write_bytes", body.len() as u64);
    std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("installing {}: {e}", path.display()))?;
    Ok(())
}

/// A sweep together with its key and provenance.
#[derive(Debug, Clone)]
pub struct DomainSweep {
    /// The key the sweep was computed (or validated) under.
    pub key: SweepKey,
    /// Protocol display codes, in index order.
    pub names: Vec<String>,
    /// The PRA measures.
    pub results: PraResults,
    /// Whether this sweep was served from the cache.
    pub from_cache: bool,
}

impl DomainSweep {
    /// Attempts to load a cached sweep matching `key`. Returns `Ok(None)`
    /// when the file is missing, carries no (or a mismatched) stamp, or
    /// holds the wrong number of rows — all the "recompute, don't trust"
    /// cases.
    ///
    /// # Errors
    ///
    /// Returns an error when the file exists with a matching stamp but
    /// its body cannot be parsed (corruption should be surfaced, not
    /// silently recomputed over).
    pub fn load(key: &SweepKey, out_dir: &Path) -> Result<Option<Self>, String> {
        let path = key.cache_path(out_dir);
        let Some(body) = read_stamped(&path, key)? else {
            return Ok(None);
        };
        let (results, names) = PraResults::from_csv(&body)
            .map_err(|e| format!("corrupt sweep cache {}: {e}", path.display()))?;
        if results.len() != key.len {
            // The stamp validated (and counted as `cache.hit`) but the
            // body holds the wrong number of rows.
            dsa_obs::incr("cache.miss.rows");
            dsa_obs::note_cache_event(cache_file_name(&path), "miss.rows");
            return Ok(None);
        }
        Ok(Some(Self {
            key: key.clone(),
            names,
            results,
            from_cache: true,
        }))
    }

    /// Loads the cached sweep for `key`, or computes it with `compute`
    /// and caches the result.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache directory/file cannot be written.
    pub fn load_or_compute_with(
        key: SweepKey,
        out_dir: &Path,
        compute: impl FnOnce() -> (Vec<String>, PraResults),
    ) -> Result<Self, String> {
        if let Some(cached) = Self::load(&key, out_dir)? {
            return Ok(cached);
        }
        let (names, results) = compute();
        let sweep = Self {
            key,
            names,
            results,
            from_cache: false,
        };
        sweep.store(out_dir)?;
        Ok(sweep)
    }

    /// Loads the cached sweep for a domain at a scale, or runs the full
    /// PRA quantification via the domain's erased simulator and caches
    /// it. The key's seed is `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache cannot be written.
    pub fn load_or_compute(
        domain: &dyn DynDomain,
        effort: Effort,
        config: &PraConfig,
        scale: &str,
        out_dir: &Path,
    ) -> Result<Self, String> {
        let key = SweepKey::of(domain, scale, effort, config);
        Self::load_or_compute_with(key, out_dir, || {
            (domain.codes(), domain.quantify_all(effort, config))
        })
    }

    /// Writes the sweep to its cache path via [`write_stamped`]
    /// (atomic temp sibling + rename).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be written.
    pub fn store(&self, out_dir: &Path) -> Result<PathBuf, String> {
        let path = self.key.cache_path(out_dir);
        write_stamped(&path, &self.key, &self.results.to_csv(Some(&self.names)))?;
        dsa_obs::incr("cache.store");
        dsa_obs::note_cache_event(cache_file_name(&path), "store");
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::erase;
    use crate::sim::testsim::ToyDomain;
    use crate::tournament::OpponentSampling;

    fn config() -> PraConfig {
        PraConfig {
            performance_runs: 2,
            encounter_runs: 1,
            sampling: OpponentSampling::Exhaustive,
            threads: 1,
            seed: 11,
            ..PraConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsa-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cached_sweep_is_bit_identical_to_fresh_compute() {
        let dir = temp_dir("roundtrip");
        let domain = erase(ToyDomain);
        let cfg = config();
        let fresh =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!fresh.from_cache);
        let reloaded =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(reloaded.from_cache);
        // Bit-identical: PraResults is compared field by field on f64s.
        assert_eq!(fresh.results, reloaded.results);
        assert_eq!(fresh.names, reloaded.names);
        // And identical to an uncached recompute.
        let direct = domain.quantify_all(Effort::Smoke, &cfg);
        assert_eq!(reloaded.results, direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_space_hash_is_recomputed_not_trusted() {
        let dir = temp_dir("hash");
        let domain = erase(ToyDomain);
        let cfg = config();
        let first =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!first.from_cache);
        // Same path, but the caller's space hash differs (as if the
        // domain's actualization changed between runs).
        let mut stale_key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &cfg);
        stale_key.space_hash ^= 0xDEAD_BEEF;
        assert!(DomainSweep::load(&stale_key, &dir).unwrap().is_none());
        let recomputed = DomainSweep::load_or_compute_with(stale_key, &dir, || {
            (domain.codes(), domain.quantify_all(Effort::Smoke, &cfg))
        })
        .unwrap();
        assert!(!recomputed.from_cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attack_stamped_cache_never_validates_a_plain_key() {
        let dir = temp_dir("attack");
        let domain = erase(ToyDomain);
        let cfg = config();
        let plain =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        // Re-stamp the same file as an attack sweep: the plain key must
        // no longer trust it, and the attack key must not trust a file
        // stamped with a different attack fingerprint.
        let mut attacked = plain.clone();
        attacked.key = attacked.key.with_attack(0xA77A);
        attacked.store(&dir).unwrap();
        let plain_key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &cfg);
        assert!(DomainSweep::load(&plain_key, &dir).unwrap().is_none());
        let other_attack = plain_key.clone().with_attack(0xBEEF);
        assert!(DomainSweep::load(&other_attack, &dir).unwrap().is_none());
        let same_attack = plain_key.with_attack(0xA77A);
        assert!(DomainSweep::load(&same_attack, &dir).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_pra_parameters_are_recomputed_not_trusted() {
        let dir = temp_dir("params");
        let domain = erase(ToyDomain);
        let cfg = config();
        let first =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        assert!(!first.from_cache);
        // Same scale name and seed, but e.g. the sampling was edited: the
        // stamped params fingerprint no longer matches.
        let mut edited = cfg;
        edited.sampling = OpponentSampling::Sampled(2);
        let second =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &edited, "smoke", &dir).unwrap();
        assert!(!second.from_cache, "edited PRA config must recompute");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_scale_seed_or_len_is_recomputed() {
        let dir = temp_dir("meta");
        let domain = erase(ToyDomain);
        let cfg = config();
        let sweep =
            DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", &dir).unwrap();
        // Tamper with the stamp in place: claim another scale.
        let path = sweep.key.cache_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("scale=smoke", "scale=lab")).unwrap();
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &cfg);
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        // A different seed in the caller's key also misses.
        sweep.store(&dir).unwrap();
        let mut reseeded = cfg;
        reseeded.seed += 1;
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &reseeded);
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        // A wrong row count misses even when the stamp agrees.
        let mut short = sweep.clone();
        short.key.len = 4;
        assert!(DomainSweep::load(&short.key, &dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unstamped_legacy_file_is_ignored() {
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let domain = erase(ToyDomain);
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &config());
        // An old-format cache: plain CSV, no stamp.
        let body = "index,name,performance_raw,performance,robustness,aggressiveness\n\
                    0,g0,1,1,1,1\n1,g1,1,1,1,1\n2,g2,1,1,1,1\n3,g3,1,1,1,1\n4,g4,1,1,1,1\n";
        std::fs::write(key.cache_path(&dir), body).unwrap();
        assert!(DomainSweep::load(&key, &dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_body_under_matching_stamp_is_an_error() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let domain = erase(ToyDomain);
        let key = SweepKey::of(&*domain, "smoke", Effort::Smoke, &config());
        let text = format!("{}\nnot,a,sweep\n", key.meta_line());
        std::fs::write(key.cache_path(&dir), text).unwrap();
        assert!(DomainSweep::load(&key, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_mismatch_names_each_diverging_field() {
        let key = SweepKey {
            domain: "rep".into(),
            space_hash: 0x0123,
            scale: "lab".into(),
            params: 0x4567,
            seed: 24301,
            len: 216,
            attack: 0xA77A,
            evo: 0xE40,
            attrib: 0xA11B,
        };
        assert_eq!(key.first_mismatch(&key), None);
        // One test probe per stamp field, mutated independently.
        let mut stamp = key.clone();
        stamp.domain = "swarm".into();
        assert_eq!(key.first_mismatch(&stamp), Some("domain"));
        let mut stamp = key.clone();
        stamp.space_hash ^= 1;
        assert_eq!(key.first_mismatch(&stamp), Some("space"));
        let mut stamp = key.clone();
        stamp.scale = "paper".into();
        assert_eq!(key.first_mismatch(&stamp), Some("scale"));
        let mut stamp = key.clone();
        stamp.params ^= 1;
        assert_eq!(key.first_mismatch(&stamp), Some("params"));
        let mut stamp = key.clone();
        stamp.seed += 1;
        assert_eq!(key.first_mismatch(&stamp), Some("seed"));
        let mut stamp = key.clone();
        stamp.len += 1;
        assert_eq!(key.first_mismatch(&stamp), Some("n"));
        let mut stamp = key.clone();
        stamp.attack = 0;
        assert_eq!(key.first_mismatch(&stamp), Some("attack"));
        let mut stamp = key.clone();
        stamp.evo = 0;
        assert_eq!(key.first_mismatch(&stamp), Some("evo"));
        let mut stamp = key.clone();
        stamp.attrib = 0;
        assert_eq!(key.first_mismatch(&stamp), Some("attrib"));
        // Divergence is reported in stamp order: the earliest field wins.
        let mut stamp = key.clone();
        stamp.scale = "paper".into();
        stamp.seed += 1;
        assert_eq!(key.first_mismatch(&stamp), Some("scale"));
        // `first_mismatch` is exactly stamp equality, so `read_stamped`'s
        // accept/reject decision is unchanged by the reason reporting.
        let stamp = key.clone().with_attack(key.attack ^ 1);
        assert!(key != stamp && key.first_mismatch(&stamp).is_some());
    }

    #[test]
    fn meta_line_roundtrips() {
        let key = SweepKey {
            domain: "rep".into(),
            space_hash: 0x0123_4567_89ab_cdef,
            scale: "lab".into(),
            params: 0x89ab_cdef_0123_4567,
            seed: 24301,
            len: 216,
            attack: 0,
            evo: 0,
            attrib: 0,
        };
        assert_eq!(SweepKey::parse_meta(&key.meta_line()), Some(key.clone()));
        // An attack fingerprint is stamped and round-trips; its stamp
        // never equals the plain key's.
        let attacked = key.clone().with_attack(0xBEEF);
        assert!(attacked.meta_line().contains("attack=000000000000beef"));
        assert_eq!(
            SweepKey::parse_meta(&attacked.meta_line()),
            Some(attacked.clone())
        );
        assert_ne!(attacked.meta_line(), key.meta_line());
        // An evo fingerprint is orthogonal to both: it round-trips and
        // never validates the plain or attack-stamped key.
        let evolved = key.clone().with_evo(0xE40);
        assert!(evolved.meta_line().contains("evo=0000000000000e40"));
        assert_eq!(
            SweepKey::parse_meta(&evolved.meta_line()),
            Some(evolved.clone())
        );
        assert_ne!(evolved, key);
        assert_ne!(evolved, attacked);
        // An attribution fingerprint is orthogonal to all three: it
        // round-trips and never validates plain, attack or evo stamps.
        let attributed = key.clone().with_attrib(0xA11B);
        assert!(attributed.meta_line().contains("attrib=000000000000a11b"));
        assert_eq!(
            SweepKey::parse_meta(&attributed.meta_line()),
            Some(attributed.clone())
        );
        assert_ne!(attributed, key);
        assert_ne!(attributed, attacked);
        assert_ne!(attributed, evolved);
        assert_ne!(SweepKey::parse_meta(&attacked.meta_line()), Some(key));
        assert!(SweepKey::parse_meta("index,name,performance_raw").is_none());
        assert!(SweepKey::parse_meta("# dsa-sweep v2 domain=x").is_none());
        // A stamp without a params field (pre-fingerprint format) is
        // stale by construction.
        assert!(SweepKey::parse_meta(
            "# dsa-sweep v1 domain=rep space=0123456789abcdef scale=lab seed=24301 n=216"
        )
        .is_none());
    }
}
