//! Heuristic design-space exploration — the paper's future work (§7).
//!
//! "We would like to explore if a solution concept similar to PRA
//! quantification could be developed which explores the design space using
//! a heuristic based approach. This could be needed in situations where a
//! thorough scan of the design space becomes infeasible due to its size."
//!
//! Two standard explorers are provided over any [`DesignSpace`] and a
//! caller-supplied objective (typically a reduced-fidelity PRA measure):
//! steepest-ascent hill climbing with random restarts, and a (μ+λ)
//! evolutionary search with per-dimension mutation. Both track their
//! evaluation budget so callers can compare "quality per simulation"
//! against the exhaustive sweep.

use crate::space::DesignSpace;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::seeds::SeedSeq;
use std::collections::HashMap;

/// Result of a heuristic exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best point found (flat design-space index).
    pub best_index: usize,
    /// Objective value at the best point.
    pub best_value: f64,
    /// Number of *distinct* objective evaluations spent.
    pub evaluations: usize,
    /// Best-so-far trajectory, one entry per accepted improvement.
    pub trajectory: Vec<(usize, f64)>,
}

/// A memoizing wrapper so explorers never pay twice for the same point —
/// simulation runs are the only expensive resource here.
struct Memo<'a> {
    objective: &'a dyn Fn(usize) -> f64,
    cache: HashMap<usize, f64>,
}

impl<'a> Memo<'a> {
    fn new(objective: &'a dyn Fn(usize) -> f64) -> Self {
        Self {
            objective,
            cache: HashMap::new(),
        }
    }

    fn eval(&mut self, idx: usize) -> f64 {
        *self
            .cache
            .entry(idx)
            .or_insert_with(|| (self.objective)(idx))
    }

    fn evaluations(&self) -> usize {
        self.cache.len()
    }
}

/// Steepest-ascent hill climbing with random restarts.
///
/// Each restart begins at a uniform random point and repeatedly moves to
/// the best single-coordinate neighbor until no neighbor improves or the
/// evaluation budget is exhausted.
///
/// Restart `r` draws its starting point from `SeedSeq::new(seed).child(r)`
/// — a pure function of `(seed, r)` with no shared stream, so a restart's
/// trajectory never depends on how much budget earlier restarts consumed.
pub fn hill_climb(
    space: &DesignSpace,
    objective: impl Fn(usize) -> f64,
    restarts: usize,
    budget: usize,
    seed: u64,
) -> SearchOutcome {
    assert!(restarts > 0, "need at least one restart");
    let mut memo = Memo::new(&objective);
    let root = SeedSeq::new(seed);
    let mut best_index = 0;
    let mut best_value = f64::NEG_INFINITY;
    let mut trajectory = Vec::new();

    'restarts: for restart in 0..restarts {
        if memo.evaluations() >= budget {
            break 'restarts;
        }
        let mut current = root.child(restart as u64).rng().index(space.size());
        let mut current_val = memo.eval(current);
        if current_val > best_value {
            best_value = current_val;
            best_index = current;
            trajectory.push((current, current_val));
        }
        loop {
            if memo.evaluations() >= budget {
                break 'restarts;
            }
            let mut improved = false;
            let mut best_neighbor = current;
            let mut best_neighbor_val = current_val;
            for nb in space.neighbors(current) {
                if memo.evaluations() >= budget {
                    break;
                }
                let v = memo.eval(nb);
                if v > best_neighbor_val {
                    best_neighbor = nb;
                    best_neighbor_val = v;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
            current = best_neighbor;
            current_val = best_neighbor_val;
            if current_val > best_value {
                best_value = current_val;
                best_index = current;
                trajectory.push((current, current_val));
            }
        }
    }

    SearchOutcome {
        best_index,
        best_value,
        evaluations: memo.evaluations(),
        trajectory,
    }
}

/// (μ+λ) evolutionary search: keep the μ best, breed λ mutants per
/// generation by re-rolling each coordinate with probability
/// `mutation_rate`.
#[allow(clippy::too_many_arguments)]
pub fn evolve(
    space: &DesignSpace,
    objective: impl Fn(usize) -> f64,
    mu: usize,
    lambda: usize,
    generations: usize,
    mutation_rate: f64,
    budget: usize,
    seed: u64,
) -> SearchOutcome {
    assert!(mu > 0 && lambda > 0, "need positive mu and lambda");
    let mut memo = Memo::new(&objective);
    let mut rng: Xoshiro256pp = SeedSeq::new(seed).child(1).rng();
    let mut trajectory = Vec::new();

    // Initial population.
    let mut population: Vec<usize> = (0..mu).map(|_| rng.index(space.size())).collect();
    let mut best_index = population[0];
    let mut best_value = f64::NEG_INFINITY;

    for _generation in 0..generations {
        if memo.evaluations() >= budget {
            break;
        }
        // Breed.
        let mut offspring = Vec::with_capacity(lambda);
        for l in 0..lambda {
            let parent = population[l % population.len()];
            let mut coords = space.coords(parent);
            for (d, c) in coords.iter_mut().enumerate() {
                if rng.chance(mutation_rate) {
                    *c = rng.index(space.dimensions()[d].len());
                }
            }
            offspring.push(space.index(&coords));
        }
        // Select μ best from parents ∪ offspring.
        let mut pool: Vec<usize> = population.iter().copied().chain(offspring).collect();
        pool.sort_unstable();
        pool.dedup();
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(pool.len());
        for idx in pool {
            if memo.evaluations() >= budget && !memo.cache.contains_key(&idx) {
                continue;
            }
            scored.push((idx, memo.eval(idx)));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(&(idx, val)) = scored.first() {
            if val > best_value {
                best_value = val;
                best_index = idx;
                trajectory.push((idx, val));
            }
        }
        population = scored.iter().take(mu).map(|&(i, _)| i).collect();
        if population.is_empty() {
            break;
        }
    }

    SearchOutcome {
        best_index,
        best_value,
        evaluations: memo.evaluations(),
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dimension;

    /// A smooth separable objective with its optimum at the max corner.
    fn space_and_peak() -> (DesignSpace, impl Fn(usize) -> f64) {
        let space = DesignSpace::new(
            "toy",
            vec![
                Dimension::new("x", (0..7).map(|i| i.to_string()).collect()),
                Dimension::new("y", (0..5).map(|i| i.to_string()).collect()),
                Dimension::new("z", (0..4).map(|i| i.to_string()).collect()),
            ],
        );
        let s2 = space.clone();
        let obj = move |idx: usize| {
            let c = s2.coords(idx);
            c[0] as f64 + 2.0 * c[1] as f64 + 0.5 * c[2] as f64
        };
        (space, obj)
    }

    #[test]
    fn hill_climb_finds_separable_optimum() {
        let (space, obj) = space_and_peak();
        let out = hill_climb(&space, obj, 3, 10_000, 1);
        assert_eq!(space.coords(out.best_index), vec![6, 4, 3]);
        assert!((out.best_value - (6.0 + 8.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn hill_climb_respects_budget() {
        let (space, obj) = space_and_peak();
        let out = hill_climb(&space, obj, 10, 5, 2);
        assert!(out.evaluations <= 5);
    }

    #[test]
    fn hill_climb_uses_fewer_evals_than_space() {
        let (space, obj) = space_and_peak();
        let out = hill_climb(&space, obj, 2, 10_000, 3);
        assert!(out.evaluations < space.size());
    }

    #[test]
    fn trajectory_is_monotone() {
        let (space, obj) = space_and_peak();
        let out = hill_climb(&space, obj, 5, 10_000, 4);
        for w in out.trajectory.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn evolve_finds_separable_optimum() {
        let (space, obj) = space_and_peak();
        let out = evolve(&space, obj, 4, 8, 60, 0.3, 10_000, 5);
        assert_eq!(space.coords(out.best_index), vec![6, 4, 3]);
    }

    #[test]
    fn evolve_is_deterministic() {
        let (space, obj) = space_and_peak();
        let a = evolve(&space, &obj, 3, 6, 20, 0.25, 1_000, 9);
        let b = evolve(&space, &obj, 3, 6, 20, 0.25, 1_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn evolve_respects_budget() {
        let (space, obj) = space_and_peak();
        let out = evolve(&space, obj, 3, 6, 1_000, 0.3, 12, 6);
        assert!(out.evaluations <= 13, "evals {}", out.evaluations);
    }

    #[test]
    fn search_beats_random_point_on_average() {
        let (space, obj) = space_and_peak();
        let out = hill_climb(&space, &obj, 2, 200, 8);
        // Mean objective over the space.
        let mean: f64 = space.indices().map(&obj).sum::<f64>() / space.size() as f64;
        assert!(out.best_value > mean);
    }
}
