//! Design Space Analysis (DSA) — the paper's primary contribution.
//!
//! DSA is a simulation-based method for modeling incentives in complex
//! distributed protocols (Section 3). It "emphasizes the specification and
//! analysis of a design space, rather than proposing a single protocol":
//!
//! 1. **Parameterization** — identify the salient design dimensions
//!    ([`space::Dimension`]).
//! 2. **Actualization** — specify concrete implementations per dimension;
//!    the cartesian product is the design space ([`space::DesignSpace`]).
//! 3. **Solution concept** — evaluate every protocol in the space. The
//!    paper's concept is the **PRA quantification** ([`pra`]):
//!    *Performance* (homogeneous population), *Robustness* (majority vs
//!    every other protocol at 50/50) and *Aggressiveness* (minority at
//!    10/90), each normalized to `[0, 1]`.
//!
//! The framework is domain-agnostic: anything implementing
//! [`sim::EncounterSim`] can be quantified. The workspace provides three
//! domains — `dsa-swarm` (the paper's P2P file-swarming space),
//! `dsa-gossip` (the Section 3.1 gossip example) and `dsa-reputation`
//! (reputation-mediated sharing, the §7 "domains other than P2P" future
//! work).
//!
//! [`search`] implements the paper's future-work idea of heuristic
//! exploration for spaces too large to sweep exhaustively (§7), and
//! [`parallel`] supplies the deterministic fork-join executor that stands
//! in for the authors' 50-node cluster.
//!
//! [`domain`] erases domains behind a common interface and keeps a global
//! registry of them, so the CLI, the content-addressed sweep cache
//! ([`cache`]) and the cross-domain figures drive every domain through
//! one generic path.

pub mod cache;
pub mod domain;
pub mod parallel;
pub mod pra;
pub mod results;
pub mod search;
pub mod sim;
pub mod space;
pub mod tournament;

pub use cache::{DomainSweep, SweepKey};
pub use domain::{Domain, DynDomain, Effort};
pub use pra::{PraConfig, PraPoint};
pub use results::PraResults;
pub use sim::EncounterSim;
pub use space::{DesignSpace, Dimension};
pub use tournament::OpponentSampling;
