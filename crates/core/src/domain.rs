//! Type-erased domains and the global domain registry.
//!
//! The paper's central claim is that the PRA quantification is
//! *domain-agnostic* — anything that can simulate protocol populations can
//! be quantified. [`Domain`] captures what a domain must provide *beyond*
//! its [`EncounterSim`] for the generic tooling to drive it: a name, a
//! [`DesignSpace`] descriptor, protocol enumeration/parsing/presets, and
//! the attack/churn hooks the harness experiments use. [`DynDomain`]
//! erases the protocol type behind flat space indices, so every consumer
//! — the `dsa` CLI dispatcher, the content-addressed sweep cache
//! ([`crate::cache`]) and the cross-domain figures — is written once and
//! works for any registered domain.
//!
//! Domain crates register an adapter via [`register_domain`]; consumers
//! enumerate [`registry`] or [`lookup`] a domain by name.

use crate::pra::{quantify, PraConfig};
use crate::results::PraResults;
use crate::sim::EncounterSim;
use crate::space::DesignSpace;
use dsa_workloads::seeds::SeedSeq;
use std::sync::{Arc, Mutex, OnceLock};

/// Simulator fidelity level, mirroring the harness scale presets.
///
/// Each domain maps an effort level onto its own simulator parameters
/// (rounds, peers, ...), so generic consumers can ask for "smoke-scale"
/// runs without knowing any domain's configuration type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effort {
    /// Seconds: unit tests, CI smoke runs and ad-hoc CLI queries.
    Smoke,
    /// Minutes on a laptop: the default for recorded experiments.
    Lab,
    /// The paper's full-fidelity parameters (cluster hours).
    Paper,
}

impl Effort {
    /// All levels, cheapest first.
    pub const ALL: [Effort; 3] = [Effort::Smoke, Effort::Lab, Effort::Paper];

    /// The level's canonical name (matches the harness scale names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Smoke => "smoke",
            Self::Lab => "lab",
            Self::Paper => "paper",
        }
    }

    /// Looks a level up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|e| e.name() == name)
    }
}

/// A DSA domain: an [`EncounterSim`] plus the metadata and hooks the
/// generic pipeline (CLI, sweep cache, figures) needs.
///
/// Protocols are addressed by their flat index in the domain's
/// [`DesignSpace`]; `protocol(i)` must agree with the space's mixed-radix
/// enumeration so that coordinates, CSV rows and descriptors line up.
pub trait Domain: Send + Sync + 'static {
    /// The domain's simulator. The `Debug` bound exists so the default
    /// [`Self::sim_signature`] can fingerprint the simulator parameters
    /// an effort level denotes.
    type Sim: EncounterSim + std::fmt::Debug;

    /// Short, CLI- and filename-safe domain name (e.g. `"swarm"`).
    fn name(&self) -> &'static str;

    /// The domain's design-space descriptor (dimension and level names).
    fn space(&self) -> DesignSpace;

    /// Decodes a flat index into the simulator's protocol descriptor.
    fn protocol(&self, index: usize) -> <Self::Sim as EncounterSim>::Protocol;

    /// Compact display code of the protocol at `index` (e.g.
    /// `"B2h2-C1-I5k7-R2"`).
    fn code(&self, index: usize) -> String;

    /// Named protocols, for CLI parsing and rank reports.
    fn presets(&self) -> Vec<(&'static str, usize)>;

    /// Extra parse-only aliases for presets (e.g. `"bt"`), not listed in
    /// reports.
    fn aliases(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    /// The canonical attacker protocols of this domain (the attack hook:
    /// free-riders, whitewashers, silent nodes, ...).
    fn attackers(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    /// The protocol an identity-shedding (whitewashing) adversary runs,
    /// when the domain actualizes one as a design point. Attack models
    /// fall back to the first canonical attacker when `None`.
    fn whitewasher(&self) -> Option<usize> {
        None
    }

    /// Builds the simulator for an effort level; `churn > 0` requests the
    /// domain's churn model at that per-round rate (the churn hook —
    /// ignored by domains where [`Self::supports_churn`] is false).
    fn sim(&self, effort: Effort, churn: f64) -> Self::Sim;

    /// Whether the simulator models peer churn.
    fn supports_churn(&self) -> bool {
        false
    }

    /// The population size one simulation hosts at an effort level — the
    /// peer count behind [`DynDomain::run_encounter`] and
    /// [`DynDomain::run_mixed`]. Population-level consumers (empirical
    /// payoff matrices, mixed-strategy collusion rings) derive their group
    /// counts from it, so domains should override it with the simulator's
    /// actual peer count; the default is a generic small community.
    fn population(&self, effort: Effort) -> usize {
        let _ = effort;
        24
    }

    /// Whether [`Self::run_mixed`] natively hosts `k > 2` protocols in
    /// one simulation (true for engines that take a per-peer assignment
    /// over an arbitrary protocol list). Domains that leave
    /// [`Self::run_mixed`] returning `None` must leave this `false`; the
    /// erased layer then approximates mixtures by round-robin pairwise
    /// encounters ([`mixed_fallback`]).
    fn supports_mixed(&self) -> bool {
        false
    }

    /// Natively simulates one population hosting every `(protocol index,
    /// peer count)` group of `groups` at once and returns the mean
    /// per-peer utility of each group, in `groups` order.
    ///
    /// Returning `None` (the default) means the engine cannot host more
    /// than two protocols in one run; [`DynDomain::run_mixed`] then falls
    /// back to [`mixed_fallback`]. Implementations must honour the two
    /// degeneracy contracts the fallback provides, so callers can rely on
    /// them for every domain: a single group reproduces
    /// [`DynDomain::run_homogeneous`] bit-for-bit, and exactly two groups
    /// reproduce [`DynDomain::run_encounter`] at `fraction_a =
    /// count_a / (count_a + count_b)` bit-for-bit.
    fn run_mixed(&self, effort: Effort, groups: &[(usize, usize)], seed: u64) -> Option<Vec<f64>> {
        let _ = (effort, groups, seed);
        None
    }

    /// A stable textual fingerprint of the simulator parameters this
    /// effort level maps to. It feeds the sweep-cache key: when a
    /// domain's effort mapping changes, cached sweeps computed under the
    /// old parameters stop matching and are recomputed.
    fn sim_signature(&self, effort: Effort) -> String {
        format!("{:?}", self.sim(effort, 0.0))
    }

    /// Parses a protocol token (preset name, alias or flat index).
    ///
    /// # Errors
    ///
    /// Returns a message when the token is neither a known name nor an
    /// in-range index.
    fn parse(&self, token: &str) -> Result<usize, String> {
        let presets = self.presets();
        let aliases = self.aliases();
        parse_token(presets.iter().chain(&aliases), self.space().size(), token)
    }

    /// A human-readable report of one homogeneous simulation, for the CLI
    /// `simulate` command. The default reports the mean per-peer utility;
    /// domains override to surface their own metrics.
    fn simulate_report(&self, index: usize, effort: Effort, churn: f64, seed: u64) -> String {
        let sim = self.sim(effort, churn);
        let utility = sim.run_homogeneous(&self.protocol(index), seed);
        format!(
            "protocol     : {}\nmean utility : {utility:.3}\n",
            self.code(index)
        )
    }
}

/// Resolves a protocol token against named presets, then as a flat index.
///
/// # Errors
///
/// Returns a message when the token is neither a known name nor an
/// in-range index.
pub fn parse_token<'a>(
    named: impl IntoIterator<Item = &'a (&'static str, usize)>,
    size: usize,
    token: &str,
) -> Result<usize, String> {
    if let Some((_, index)) = named.into_iter().find(|(name, _)| *name == token) {
        return Ok(*index);
    }
    let index: usize = token
        .parse()
        .map_err(|_| format!("'{token}' is neither a preset nor an index"))?;
    if index >= size {
        return Err(format!("index {index} out of 0..{size}"));
    }
    Ok(index)
}

/// The object-safe, type-erased view of a [`Domain`] that the registry
/// stores and generic consumers program against. Protocols are flat
/// space indices throughout.
pub trait DynDomain: Send + Sync {
    /// Domain name.
    fn name(&self) -> &str;

    /// The design-space descriptor.
    fn space(&self) -> &DesignSpace;

    /// Number of protocols in the space.
    fn size(&self) -> usize;

    /// A stable hash of the space *shape* (domain name, dimension names,
    /// level names) — the cache key component that invalidates cached
    /// sweeps when a domain's actualization changes.
    fn space_hash(&self) -> u64;

    /// Compact display code of the protocol at `index`.
    fn code(&self, index: usize) -> String;

    /// Per-dimension description of the protocol at `index`.
    fn describe(&self, index: usize) -> String;

    /// Parses a protocol token (preset name, alias or flat index).
    ///
    /// # Errors
    ///
    /// Returns a message when the token is neither a known name nor an
    /// in-range index.
    fn parse(&self, token: &str) -> Result<usize, String>;

    /// Named protocols (name, index).
    fn presets(&self) -> Vec<(String, usize)>;

    /// Canonical attacker protocols (name, index).
    fn attackers(&self) -> Vec<(String, usize)>;

    /// The identity-shedding (whitewashing) protocol, when the domain
    /// actualizes one.
    fn whitewasher(&self) -> Option<usize>;

    /// Whether the simulator models peer churn.
    fn supports_churn(&self) -> bool;

    /// The population size one simulation hosts at an effort level.
    fn population(&self, effort: Effort) -> usize;

    /// Whether [`Self::run_mixed`] is one native multi-protocol
    /// simulation rather than the round-robin pairwise approximation.
    fn supports_mixed(&self) -> bool;

    /// Mean per-group utilities of one population hosting every
    /// `(protocol index, peer count)` group of `groups` at once — the
    /// population-level hook mixed-strategy adversaries and empirical
    /// payoff matrices drive. One group reproduces
    /// [`Self::run_homogeneous`] bit-for-bit; two groups reproduce
    /// [`Self::run_encounter`] at their count ratio bit-for-bit; more
    /// groups run natively where [`Self::supports_mixed`] is true and
    /// through [`mixed_fallback`] otherwise.
    fn run_mixed(&self, groups: &[(usize, usize)], effort: Effort, seed: u64) -> Vec<f64>;

    /// Stable fingerprint of the simulator parameters an effort level
    /// maps to (a sweep-cache key component).
    fn sim_signature(&self, effort: Effort) -> String;

    /// Human-readable report of one homogeneous simulation.
    fn simulate_report(&self, index: usize, effort: Effort, churn: f64, seed: u64) -> String;

    /// Mean per-peer utility of a homogeneous population.
    fn run_homogeneous(&self, index: usize, effort: Effort, seed: u64) -> f64;

    /// Mean group utilities of a mixed population (`fraction_a` share runs
    /// protocol `a`).
    fn run_encounter(
        &self,
        a: usize,
        b: usize,
        fraction_a: f64,
        effort: Effort,
        seed: u64,
    ) -> (f64, f64);

    /// Like [`Self::run_encounter`], but with the domain's churn model
    /// active at `churn` expected departures per peer-round — the
    /// encounter-stream hook identity-churn (whitewash) attack models
    /// drive. Domains without a churn model ([`Self::supports_churn`]
    /// false) simulate without churn.
    fn run_encounter_churn(
        &self,
        a: usize,
        b: usize,
        fraction_a: f64,
        effort: Effort,
        churn: f64,
        seed: u64,
    ) -> (f64, f64);

    /// PRA quantification over an explicit protocol subset.
    fn quantify(&self, indices: &[usize], effort: Effort, config: &PraConfig) -> PraResults;

    /// PRA quantification over the whole space, in index order.
    fn quantify_all(&self, effort: Effort, config: &PraConfig) -> PraResults;

    /// Display codes of every protocol, in index order.
    fn codes(&self) -> Vec<String>;
}

/// The blanket erasure: wraps a typed [`Domain`], caching its space and
/// shape hash.
struct Erased<D: Domain> {
    inner: D,
    space: DesignSpace,
    hash: u64,
}

impl<D: Domain> DynDomain for Erased<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn space(&self) -> &DesignSpace {
        &self.space
    }

    fn size(&self) -> usize {
        self.space.size()
    }

    fn space_hash(&self) -> u64 {
        self.hash
    }

    fn code(&self, index: usize) -> String {
        self.inner.code(index)
    }

    fn describe(&self, index: usize) -> String {
        self.space.describe(index)
    }

    fn parse(&self, token: &str) -> Result<usize, String> {
        self.inner.parse(token)
    }

    fn presets(&self) -> Vec<(String, usize)> {
        self.inner
            .presets()
            .into_iter()
            .map(|(n, i)| (n.to_string(), i))
            .collect()
    }

    fn attackers(&self) -> Vec<(String, usize)> {
        self.inner
            .attackers()
            .into_iter()
            .map(|(n, i)| (n.to_string(), i))
            .collect()
    }

    fn whitewasher(&self) -> Option<usize> {
        self.inner.whitewasher()
    }

    fn supports_churn(&self) -> bool {
        self.inner.supports_churn()
    }

    fn population(&self, effort: Effort) -> usize {
        self.inner.population(effort)
    }

    fn supports_mixed(&self) -> bool {
        self.inner.supports_mixed()
    }

    fn run_mixed(&self, groups: &[(usize, usize)], effort: Effort, seed: u64) -> Vec<f64> {
        assert!(!groups.is_empty(), "run_mixed needs at least one group");
        assert!(
            groups.iter().all(|&(_, count)| count >= 1),
            "every run_mixed group needs at least one peer, got {groups:?}"
        );
        if let Some(utilities) = self.inner.run_mixed(effort, groups, seed) {
            assert_eq!(
                utilities.len(),
                groups.len(),
                "native run_mixed must return one utility per group"
            );
            return utilities;
        }
        mixed_fallback(self, groups, effort, seed)
    }

    fn sim_signature(&self, effort: Effort) -> String {
        self.inner.sim_signature(effort)
    }

    fn simulate_report(&self, index: usize, effort: Effort, churn: f64, seed: u64) -> String {
        self.inner.simulate_report(index, effort, churn, seed)
    }

    fn run_homogeneous(&self, index: usize, effort: Effort, seed: u64) -> f64 {
        let sim = self.inner.sim(effort, 0.0);
        sim.run_homogeneous(&self.inner.protocol(index), seed)
    }

    fn run_encounter(
        &self,
        a: usize,
        b: usize,
        fraction_a: f64,
        effort: Effort,
        seed: u64,
    ) -> (f64, f64) {
        let sim = self.inner.sim(effort, 0.0);
        sim.run_encounter(
            &self.inner.protocol(a),
            &self.inner.protocol(b),
            fraction_a,
            seed,
        )
    }

    fn run_encounter_churn(
        &self,
        a: usize,
        b: usize,
        fraction_a: f64,
        effort: Effort,
        churn: f64,
        seed: u64,
    ) -> (f64, f64) {
        let sim = self.inner.sim(effort, churn);
        sim.run_encounter(
            &self.inner.protocol(a),
            &self.inner.protocol(b),
            fraction_a,
            seed,
        )
    }

    fn quantify(&self, indices: &[usize], effort: Effort, config: &PraConfig) -> PraResults {
        let sim = self.inner.sim(effort, 0.0);
        let protocols: Vec<_> = indices.iter().map(|&i| self.inner.protocol(i)).collect();
        quantify(&sim, &protocols, config)
    }

    fn quantify_all(&self, effort: Effort, config: &PraConfig) -> PraResults {
        let indices: Vec<usize> = (0..self.size()).collect();
        self.quantify(&indices, effort, config)
    }

    fn codes(&self) -> Vec<String> {
        (0..self.size()).map(|i| self.inner.code(i)).collect()
    }
}

/// Approximates a `k`-protocol population by round-robin pairwise
/// encounters, for domains whose engines cannot host more than two
/// protocols in one run — the composition path that lets every registered
/// domain serve [`DynDomain::run_mixed`].
///
/// One group is the homogeneous run and two groups are the plain
/// encounter at their count ratio, both bit-for-bit (the degeneracy
/// contracts native implementations share). For `k ≥ 3`, every unordered
/// pair of groups meets once at the mixture their relative counts imply
/// (with a pair-position-derived seed), and a group's utility is the mean
/// of its pairwise outcomes weighted by the opposing group's mass.
///
/// # Panics
///
/// Panics when `groups` is empty or any group count is zero.
#[must_use]
pub fn mixed_fallback(
    domain: &dyn DynDomain,
    groups: &[(usize, usize)],
    effort: Effort,
    seed: u64,
) -> Vec<f64> {
    assert!(!groups.is_empty(), "run_mixed needs at least one group");
    assert!(
        groups.iter().all(|&(_, count)| count >= 1),
        "every run_mixed group needs at least one peer, got {groups:?}"
    );
    match *groups {
        [(protocol, _)] => vec![domain.run_homogeneous(protocol, effort, seed)],
        [(a, count_a), (b, count_b)] => {
            let fraction_a = count_a as f64 / (count_a + count_b) as f64;
            let (ua, ub) = domain.run_encounter(a, b, fraction_a, effort, seed);
            vec![ua, ub]
        }
        _ => {
            let root = SeedSeq::new(seed);
            let k = groups.len();
            let mut weighted = vec![0.0f64; k];
            let mut mass = vec![0.0f64; k];
            for i in 0..k {
                for j in (i + 1)..k {
                    let (pi, ci) = groups[i];
                    let (pj, cj) = groups[j];
                    let fraction_i = ci as f64 / (ci + cj) as f64;
                    let pair_seed = root.child(i as u64).child(j as u64).seed();
                    let (ui, uj) = domain.run_encounter(pi, pj, fraction_i, effort, pair_seed);
                    weighted[i] += cj as f64 * ui;
                    mass[i] += cj as f64;
                    weighted[j] += ci as f64 * uj;
                    mass[j] += ci as f64;
                }
            }
            weighted.iter().zip(&mass).map(|(&w, &m)| w / m).collect()
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continues an FNV-1a hash over more bytes (the workspace's
/// dependency-free stable hash, used for cache-key fingerprints).
#[must_use]
pub fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over one byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// FNV-1a hash of the space shape: domain name, space name, dimension
/// names and level names. Any change to the actualization — added levels,
/// renamed dimensions, reordered enumerations — changes the hash and
/// thereby invalidates cached sweeps keyed on it.
#[must_use]
pub fn space_shape_hash(domain_name: &str, space: &DesignSpace) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        h = fnv1a_continue(h, bytes);
        // Separator so ("ab","c") and ("a","bc") hash differently.
        h = fnv1a_continue(h, &[0x1F]);
    };
    eat(domain_name.as_bytes());
    eat(space.name().as_bytes());
    for dim in space.dimensions() {
        eat(dim.name.as_bytes());
        for level in &dim.levels {
            eat(level.as_bytes());
        }
    }
    h
}

/// Erases a typed domain into a registry-ready handle.
pub fn erase<D: Domain>(domain: D) -> Arc<dyn DynDomain> {
    let space = domain.space();
    let hash = space_shape_hash(domain.name(), &space);
    Arc::new(Erased {
        inner: domain,
        space,
        hash,
    })
}

fn global() -> &'static Mutex<Vec<Arc<dyn DynDomain>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<dyn DynDomain>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers an erased domain in the global registry. Re-registering a
/// name replaces the previous entry (idempotent), preserving its
/// position.
pub fn register(domain: Arc<dyn DynDomain>) {
    let mut reg = global().lock().expect("registry poisoned");
    if let Some(slot) = reg.iter_mut().find(|d| d.name() == domain.name()) {
        *slot = domain;
    } else {
        reg.push(domain);
    }
}

/// Erases and registers a typed domain; returns the registered handle.
pub fn register_domain<D: Domain>(domain: D) -> Arc<dyn DynDomain> {
    let erased = erase(domain);
    register(Arc::clone(&erased));
    erased
}

/// A snapshot of the registry, in registration order.
#[must_use]
pub fn registry() -> Vec<Arc<dyn DynDomain>> {
    global().lock().expect("registry poisoned").clone()
}

/// Looks a registered domain up by name.
#[must_use]
pub fn lookup(name: &str) -> Option<Arc<dyn DynDomain>> {
    global()
        .lock()
        .expect("registry poisoned")
        .iter()
        .find(|d| d.name() == name)
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::testsim::ToyDomain;
    use crate::tournament::OpponentSampling;

    fn toy() -> Arc<dyn DynDomain> {
        erase(ToyDomain)
    }

    fn config() -> PraConfig {
        PraConfig {
            performance_runs: 2,
            encounter_runs: 1,
            sampling: OpponentSampling::Exhaustive,
            threads: 1,
            seed: 5,
            ..PraConfig::default()
        }
    }

    #[test]
    fn erased_surface_matches_space() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.size(), 5);
        assert_eq!(d.code(0), "g0");
        assert!(d.describe(2).contains("Generosity="));
        assert_eq!(d.codes().len(), 5);
    }

    #[test]
    fn parse_accepts_presets_aliases_and_indices() {
        let d = toy();
        assert_eq!(d.parse("saint").unwrap(), 4);
        assert_eq!(d.parse("scrooge").unwrap(), 0);
        assert_eq!(d.parse("3").unwrap(), 3);
        assert!(d.parse("5").is_err());
        assert!(d.parse("nonsense").is_err());
    }

    #[test]
    fn quantify_all_matches_typed_path() {
        let d = toy();
        let erased = d.quantify_all(Effort::Smoke, &config());
        let protocols: Vec<f64> = (0..5).map(|i| i as f64 / 4.0).collect();
        let typed = quantify(&crate::sim::testsim::FreeriderToy, &protocols, &config());
        assert_eq!(erased, typed);
    }

    #[test]
    fn encounter_matches_typed_path() {
        let d = toy();
        let (a, b) = d.run_encounter(0, 4, 0.5, Effort::Smoke, 9);
        // The toy's least generous side free-rides on the most generous.
        assert!(a > b);
    }

    #[test]
    fn churn_encounter_defaults_to_plain_encounter_without_churn_model() {
        // The toy simulator ignores churn, so the churn hook must agree
        // with the plain encounter path for every rate.
        let d = toy();
        let plain = d.run_encounter(1, 3, 0.5, Effort::Smoke, 4);
        let churned = d.run_encounter_churn(1, 3, 0.5, Effort::Smoke, 0.2, 4);
        assert_eq!(plain, churned);
        // And no whitewasher protocol is actualized by default.
        assert!(d.whitewasher().is_none());
    }

    #[test]
    fn mixed_single_group_is_the_homogeneous_run() {
        let d = toy();
        assert!(!d.supports_mixed());
        let mixed = d.run_mixed(&[(3, 10)], Effort::Smoke, 21);
        assert_eq!(mixed, vec![d.run_homogeneous(3, Effort::Smoke, 21)]);
    }

    #[test]
    fn mixed_pair_is_the_plain_encounter_at_the_count_ratio() {
        let d = toy();
        let mixed = d.run_mixed(&[(0, 3), (4, 9)], Effort::Smoke, 8);
        let (ua, ub) = d.run_encounter(0, 4, 0.25, Effort::Smoke, 8);
        assert_eq!(mixed, vec![ua, ub]);
    }

    #[test]
    fn mixed_fallback_round_robin_weights_by_opponent_mass() {
        let d = toy();
        // Three groups through the pairwise fallback: deterministic, one
        // utility per group, and repeatable.
        let groups = [(0, 4), (2, 4), (4, 16)];
        let a = d.run_mixed(&groups, Effort::Smoke, 5);
        let b = d.run_mixed(&groups, Effort::Smoke, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|u| u.is_finite()));
        // In the free-rider toy the least generous group profits most
        // from any mixture and the most generous group profits least.
        assert!(a[0] > a[2], "freeriders exploit saints: {a:?}");
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn mixed_rejects_empty_groups() {
        let _ = toy().run_mixed(&[(0, 3), (1, 0)], Effort::Smoke, 1);
    }

    #[test]
    fn space_hash_is_shape_sensitive() {
        let d = toy();
        let base = d.space_hash();
        assert_eq!(base, space_shape_hash("toy", d.space()));
        // Different domain name → different hash.
        assert_ne!(base, space_shape_hash("toy2", d.space()));
        // Different level set → different hash.
        let other = DesignSpace::new(
            "toy-space",
            vec![crate::space::Dimension::new(
                "Generosity",
                (0..6).map(|i| format!("g{i}")).collect(),
            )],
        );
        assert_ne!(base, space_shape_hash("toy", &other));
    }

    #[test]
    fn registry_register_lookup_and_replace() {
        register_domain(ToyDomain);
        let found = lookup("toy").expect("registered");
        assert_eq!(found.size(), 5);
        // Re-registration replaces rather than duplicates.
        register_domain(ToyDomain);
        let names: Vec<String> = registry()
            .iter()
            .filter(|d| d.name() == "toy")
            .map(|d| d.name().to_string())
            .collect();
        assert_eq!(names.len(), 1);
        assert!(lookup("no-such-domain").is_none());
    }
}
