//! The simulator abstraction the PRA quantification drives.
//!
//! A domain plugs into DSA by implementing [`EncounterSim`]: given protocol
//! descriptors, it must be able to simulate (a) a homogeneous population
//! and report the mean per-peer utility, and (b) a two-protocol mixed
//! population and report both groups' mean utilities. Utility is
//! application-defined (download throughput for file swarming, coverage
//! for gossip) — exactly the paper's "performance is determined by the
//! application".

/// A domain simulator that can evaluate protocol populations.
///
/// Implementations must be deterministic in `seed` and safe to call from
/// multiple threads concurrently (`Sync`), because the PRA sweep
/// parallelizes over protocols and encounters.
pub trait EncounterSim: Sync {
    /// Domain-specific protocol descriptor.
    type Protocol: Clone + Send + Sync;

    /// Simulates a population in which *every* peer executes `protocol`
    /// and returns the mean per-peer utility (the paper's "overall
    /// performance of the system").
    fn run_homogeneous(&self, protocol: &Self::Protocol, seed: u64) -> f64;

    /// Simulates a mixed population in which a `fraction_a` share of peers
    /// executes `a` and the rest executes `b`; returns
    /// `(mean utility of a-peers, mean utility of b-peers)`.
    fn run_encounter(
        &self,
        a: &Self::Protocol,
        b: &Self::Protocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64);
}

/// Splits an `n`-peer population into a protagonist group holding a
/// `fraction_a` share and returns `(group size, per-peer assignment)`
/// with assignment value 0 for protagonists and 1 for the rest.
///
/// Every adapter's `run_encounter` needs the same split; keeping it here
/// pins the shared invariant that both groups hold at least one peer
/// (the paper's splits land on integers, arbitrary fractions round).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn split_population(n: usize, fraction_a: f64) -> (usize, Vec<usize>) {
    assert!(n >= 2, "a mixed population needs at least two peers");
    let count_a = ((fraction_a * n as f64).round() as usize).clamp(1, n - 1);
    (count_a, (0..n).map(|i| usize::from(i >= count_a)).collect())
}

/// Runs `f` against an all-zeros assignment slice of length `n` without
/// materializing a fresh `vec![0; n]` per call.
///
/// Homogeneous runs assign every peer protocol 0, and every adapter's
/// `run_homogeneous` (plus the single-protocol encounter fast paths) hits
/// this once per sweep cell — the slice is cached per thread and only
/// grows, so steady-state calls are allocation-free.
pub fn with_zero_assignment<R>(n: usize, f: impl FnOnce(&[usize]) -> R) -> R {
    thread_local! {
        static ZEROS: std::cell::RefCell<Vec<usize>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    ZEROS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut zeros) => {
            if zeros.len() < n {
                zeros.resize(n, 0);
            }
            f(&zeros[..n])
        }
        // Re-entrant call (f itself used the helper): fall back to a
        // fresh allocation rather than aliasing the borrowed cache.
        Err(_) => f(&vec![0; n]),
    })
}

#[cfg(test)]
pub(crate) mod testsim {
    //! A tiny analytic domain used by the framework's own tests: protocols
    //! are numbers; utility follows transparent rules so expected PRA
    //! values can be computed by hand.

    use super::EncounterSim;
    use crate::domain::{Domain, Effort};
    use crate::space::{DesignSpace, Dimension};
    use dsa_workloads::seeds::SeedSeq;

    /// Protocols are "generosity" levels g ∈ [0, 1].
    ///
    /// * Homogeneous utility: g (generous populations thrive).
    /// * Encounters: the *less* generous side free-rides on the more
    ///   generous side; its utility gains the difference.
    #[derive(Debug, Default)]
    pub struct FreeriderToy;

    impl EncounterSim for FreeriderToy {
        type Protocol = f64;

        fn run_homogeneous(&self, protocol: &f64, seed: u64) -> f64 {
            // Deterministic jitter below the discrimination threshold, so
            // seeds matter but orderings do not flip.
            let jitter = (SeedSeq::new(seed).seed() % 1000) as f64 * 1e-9;
            protocol + jitter
        }

        fn run_encounter(&self, a: &f64, b: &f64, fraction_a: f64, _seed: u64) -> (f64, f64) {
            let pool = fraction_a * a + (1.0 - fraction_a) * b;
            // Each side receives the pooled generosity but pays its own.
            (pool + (b - a), pool + (a - b))
        }
    }

    /// [`FreeriderToy`] wrapped as a five-point [`Domain`], for testing
    /// the registry and the sweep cache without a real simulator.
    pub struct ToyDomain;

    impl Domain for ToyDomain {
        type Sim = FreeriderToy;

        fn name(&self) -> &'static str {
            "toy"
        }

        fn space(&self) -> DesignSpace {
            DesignSpace::new(
                "toy-space",
                vec![Dimension::new(
                    "Generosity",
                    (0..5).map(|i| format!("g{i}")).collect(),
                )],
            )
        }

        fn protocol(&self, index: usize) -> f64 {
            index as f64 / 4.0
        }

        fn code(&self, index: usize) -> String {
            format!("g{index}")
        }

        fn presets(&self) -> Vec<(&'static str, usize)> {
            vec![("saint", 4), ("scrooge", 0)]
        }

        fn attackers(&self) -> Vec<(&'static str, usize)> {
            vec![("scrooge", 0)]
        }

        fn sim(&self, _effort: Effort, _churn: f64) -> FreeriderToy {
            FreeriderToy
        }
    }
}
