//! Generic design spaces: named dimensions with named actualizations.
//!
//! A [`DesignSpace`] is the cartesian product of its dimensions' levels.
//! Points are addressed either by per-dimension coordinates or by a flat
//! mixed-radix index in `0..size()` — the representation the PRA sweep,
//! the CSV results and the regression encoder all share.

use std::fmt;

/// One design dimension (the paper's "Parameterization" output), e.g.
/// "Stranger Policy", with its actualized levels, e.g. `["None",
/// "Periodic×1", ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Dimension name.
    pub name: String,
    /// Actualization names, in enumeration order.
    pub levels: Vec<String>,
}

impl Dimension {
    /// Creates a dimension.
    ///
    /// # Panics
    ///
    /// Panics if no levels are given.
    #[must_use]
    pub fn new(name: impl Into<String>, levels: Vec<String>) -> Self {
        let d = Self {
            name: name.into(),
            levels,
        };
        assert!(!d.levels.is_empty(), "dimension {} has no levels", d.name);
        d
    }

    /// Number of actualizations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the dimension has no levels (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// A full design space: the cartesian product of dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    name: String,
    dimensions: Vec<Dimension>,
}

impl DesignSpace {
    /// Creates a design space.
    ///
    /// # Panics
    ///
    /// Panics if there are no dimensions.
    #[must_use]
    pub fn new(name: impl Into<String>, dimensions: Vec<Dimension>) -> Self {
        assert!(!dimensions.is_empty(), "design space needs dimensions");
        Self {
            name: name.into(),
            dimensions,
        }
    }

    /// Space name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimensions.
    #[must_use]
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Total number of protocols (product of level counts).
    #[must_use]
    pub fn size(&self) -> usize {
        self.dimensions.iter().map(Dimension::len).product()
    }

    /// Decodes a flat index into per-dimension coordinates (mixed radix,
    /// first dimension most significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    #[must_use]
    pub fn coords(&self, index: usize) -> Vec<usize> {
        assert!(index < self.size(), "index {index} out of {}", self.size());
        let mut rem = index;
        let mut out = vec![0; self.dimensions.len()];
        for (i, d) in self.dimensions.iter().enumerate().rev() {
            out[i] = rem % d.len();
            rem /= d.len();
        }
        out
    }

    /// Encodes per-dimension coordinates into the flat index.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    #[must_use]
    pub fn index(&self, coords: &[usize]) -> usize {
        assert_eq!(
            coords.len(),
            self.dimensions.len(),
            "coordinate arity mismatch"
        );
        let mut idx = 0;
        for (c, d) in coords.iter().zip(&self.dimensions) {
            assert!(*c < d.len(), "coordinate {c} out of range for {}", d.name);
            idx = idx * d.len() + c;
        }
        idx
    }

    /// Human-readable description of the protocol at `index`, e.g.
    /// `"Stranger=WhenNeeded×2, Ranking=Loyal, k=7, Alloc=PropShare"`.
    #[must_use]
    pub fn describe(&self, index: usize) -> String {
        let coords = self.coords(index);
        self.dimensions
            .iter()
            .zip(&coords)
            .map(|(d, &c)| format!("{}={}", d.name, d.levels[c]))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Iterates all flat indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> {
        0..self.size()
    }

    /// The neighbors of a point: all points differing in exactly one
    /// coordinate (the move set of [`crate::search`]'s hill climber).
    #[must_use]
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let coords = self.coords(index);
        let mut out = Vec::new();
        for (i, d) in self.dimensions.iter().enumerate() {
            for level in 0..d.len() {
                if level != coords[i] {
                    let mut c = coords.clone();
                    c[i] = level;
                    out.push(self.index(&c));
                }
            }
        }
        out
    }
}

impl fmt::Display for DesignSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design space '{}' ({} protocols)",
            self.name,
            self.size()
        )?;
        for d in &self.dimensions {
            writeln!(
                f,
                "  {} ({} levels): {}",
                d.name,
                d.len(),
                d.levels.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::new(
            "test",
            vec![
                Dimension::new("A", vec!["a0".into(), "a1".into(), "a2".into()]),
                Dimension::new("B", vec!["b0".into(), "b1".into()]),
                Dimension::new(
                    "C",
                    vec!["c0".into(), "c1".into(), "c2".into(), "c3".into()],
                ),
            ],
        )
    }

    #[test]
    fn size_is_product() {
        assert_eq!(space().size(), 24);
    }

    #[test]
    fn index_coords_roundtrip() {
        let s = space();
        for i in s.indices() {
            assert_eq!(s.index(&s.coords(i)), i);
        }
    }

    #[test]
    fn coords_are_mixed_radix() {
        let s = space();
        assert_eq!(s.coords(0), vec![0, 0, 0]);
        assert_eq!(s.coords(1), vec![0, 0, 1]);
        assert_eq!(s.coords(4), vec![0, 1, 0]);
        assert_eq!(s.coords(8), vec![1, 0, 0]);
        assert_eq!(s.coords(23), vec![2, 1, 3]);
    }

    #[test]
    fn describe_names_levels() {
        let s = space();
        assert_eq!(s.describe(0), "A=a0, B=b0, C=c0");
        assert_eq!(s.describe(23), "A=a2, B=b1, C=c3");
    }

    #[test]
    fn neighbors_differ_in_one_coordinate() {
        let s = space();
        let n = s.neighbors(0);
        // (3−1) + (2−1) + (4−1) = 6 neighbors.
        assert_eq!(n.len(), 6);
        for &x in &n {
            let diff = s
                .coords(0)
                .iter()
                .zip(s.coords(x))
                .filter(|(a, b)| **a != *b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn coords_out_of_range_panics() {
        let _ = space().coords(24);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn index_wrong_arity_panics() {
        let _ = space().index(&[0, 0]);
    }

    #[test]
    fn paper_space_has_3270_points() {
        // The paper's actualization: 10 stranger policies × 109 selection
        // policies × 3 allocation policies.
        let s = DesignSpace::new(
            "p2p-swarming",
            vec![
                Dimension::new("Stranger", (0..10).map(|i| format!("s{i}")).collect()),
                Dimension::new("Selection", (0..109).map(|i| format!("sel{i}")).collect()),
                Dimension::new("Allocation", (0..3).map(|i| format!("r{i}")).collect()),
            ],
        );
        assert_eq!(s.size(), 3270);
    }

    #[test]
    fn display_lists_dimensions() {
        let text = format!("{}", space());
        assert!(text.contains("24 protocols"));
        assert!(text.contains("A (3 levels)"));
    }
}
