//! Micro-benchmarks of the simulation substrates themselves: how fast is
//! one simulated round / tick / regression fit? These bound the cost of
//! scaling any experiment up to paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::swarm::simulate;
use dsa_gametheory::axelrod::{round_robin, TournamentConfig};
use dsa_gametheory::games::prisoners_dilemma;
use dsa_gametheory::strategy::classic_field;
use dsa_stats::encode::NamedColumn;
use dsa_stats::ols;
use dsa_swarm::engine::{run, SimConfig};
use dsa_swarm::presets;
use dsa_workloads::bandwidth::BandwidthDist;
use dsa_workloads::rng::Xoshiro256pp;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    // Cycle simulator: one paper-shaped run (50 peers × 500 rounds).
    let paper_cfg = SimConfig::default();
    let assignment = vec![0usize; paper_cfg.peers];
    c.bench_function("swarm_run_50peers_500rounds", |b| {
        b.iter(|| {
            run(
                black_box(&[presets::bittorrent()]),
                black_box(&assignment),
                black_box(&paper_cfg),
                7,
            )
        })
    });

    // Same paper-shaped run with a k=3 mixed population: exercises the
    // branchy multi-protocol decision paths the homogeneous run skips
    // (different sort orders, freerider short-circuits) — the shape every
    // encounter cell of a sweep actually runs.
    let swarm_mixed = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    let swarm_mixed_assignment: Vec<usize> = (0..paper_cfg.peers)
        .map(|i| i % swarm_mixed.len())
        .collect();
    c.bench_function("swarm_run_mixed_k3_50peers_500rounds", |b| {
        b.iter(|| {
            run(
                black_box(&swarm_mixed),
                black_box(&swarm_mixed_assignment),
                black_box(&paper_cfg),
                7,
            )
        })
    });

    // Piece-level simulator: one tiny swarm to completion.
    let bt_cfg = BtConfig {
        bandwidth: BandwidthDist::Constant(32.0),
        ..BtConfig::tiny()
    };
    let kinds = vec![ClientKind::BitTorrent; bt_cfg.leechers];
    c.bench_function("btsim_tiny_swarm_to_completion", |b| {
        b.iter(|| simulate(black_box(&kinds), black_box(&bt_cfg), 3))
    });

    // Gossip simulator: one default-scale dissemination run.
    let gossip_cfg = dsa_gossip::engine::GossipConfig::default();
    let gossip_assignment = vec![0usize; gossip_cfg.nodes];
    c.bench_function("gossip_run_40nodes_120rounds", |b| {
        b.iter(|| {
            dsa_gossip::engine::run(
                black_box(&[dsa_gossip::protocol::GossipProtocol::baseline()]),
                black_box(&gossip_assignment),
                black_box(&gossip_cfg),
                7,
            )
        })
    });

    // Reputation simulator: one default-scale community run.
    let rep_cfg = dsa_reputation::engine::RepConfig::default();
    let rep_assignment = vec![0usize; rep_cfg.peers];
    c.bench_function("rep_run_24peers_80rounds", |b| {
        b.iter(|| {
            dsa_reputation::engine::run(
                black_box(&[dsa_reputation::presets::bartercast()]),
                black_box(&rep_assignment),
                black_box(&rep_cfg),
                7,
            )
        })
    });

    // Reputation with a k=3 mixed population (gossiped + eigentrust +
    // freerider): hits the staged decision path and the per-owner
    // maintenance path that the homogeneous bartercast run fuses away.
    let rep_mixed = [
        dsa_reputation::presets::bartercast(),
        dsa_reputation::presets::eigentrust(),
        dsa_reputation::presets::freerider(),
    ];
    let rep_mixed_assignment: Vec<usize> =
        (0..rep_cfg.peers).map(|i| i % rep_mixed.len()).collect();
    c.bench_function("rep_run_mixed_k3_24peers_80rounds", |b| {
        b.iter(|| {
            dsa_reputation::engine::run(
                black_box(&rep_mixed),
                black_box(&rep_mixed_assignment),
                black_box(&rep_cfg),
                7,
            )
        })
    });

    // Reputation at a heavier-than-default scale (32 peers × 160 rounds):
    // how the community engine's O(n²)-per-round core grows toward paper
    // scale.
    let rep_paper_cfg = dsa_reputation::engine::RepConfig {
        peers: 32,
        rounds: 160,
        ..dsa_reputation::engine::RepConfig::default()
    };
    let rep_paper_assignment = vec![0usize; rep_paper_cfg.peers];
    c.bench_function("rep_run_32peers_160rounds", |b| {
        b.iter(|| {
            dsa_reputation::engine::run(
                black_box(&[dsa_reputation::presets::bartercast()]),
                black_box(&rep_paper_assignment),
                black_box(&rep_paper_cfg),
                7,
            )
        })
    });

    // PRNG throughput.
    c.bench_function("rng_1k_draws", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });

    // Empirical payoff matrix over the reputation domain's candidate set
    // (24-peer communities at lab effort): the population-dynamics hot
    // path — k(k+1)/2 mixed-population simulations through run_mixed,
    // parallel with per-thread scratch buffers.
    let rep_domain = dsa_reputation::adapter::register();
    let evo_candidates = dsa_evolution::default_candidates(&*rep_domain);
    let evo_cfg = dsa_evolution::EvoConfig {
        encounter_runs: 1,
        threads: 0,
        ..dsa_evolution::EvoConfig::default()
    };
    c.bench_function("evo_payoff_matrix_24", |b| {
        b.iter(|| {
            dsa_evolution::empirical_matrix(
                black_box(&*rep_domain),
                black_box(&evo_candidates),
                dsa_core::domain::Effort::Lab,
                black_box(&evo_cfg),
            )
        })
    });

    // Variance attribution over the full reputation space (288 rows,
    // 11 dummy columns): design-matrix build + main-effects OLS + one
    // nested refit per dimension — the `attribute fit` hot path, on a
    // synthetic response so the bench never touches a sweep cache.
    let rep_space = dsa_reputation::protocol::design_space();
    let rep_rows: Vec<usize> = rep_space.indices().collect();
    let rep_y: Vec<f64> = rep_rows
        .iter()
        .map(|&i| {
            let c = rep_space.coords(i);
            let noise = ((i * 37 % 11) as f64 - 5.0) / 100.0;
            0.3 * c[2] as f64 + 0.2 * c[3] as f64 + 0.05 * c[0] as f64 + noise
        })
        .collect();
    c.bench_function("attrib_fit_rep_288", |b| {
        b.iter(|| {
            let dm = dsa_attribution::DesignMatrix::build(
                black_box(&rep_space),
                black_box(&rep_rows),
                1,
            );
            dsa_attribution::attribute_axis(&dm, "performance", black_box(&rep_y))
        })
    });

    // OLS on a Table 3-shaped problem (3270 × 12); random columns are
    // full-rank with probability 1.
    let n = 3270;
    let mut fill_rng = Xoshiro256pp::seed_from_u64(0x015);
    let cols: Vec<NamedColumn> = (0..12)
        .map(|j| {
            NamedColumn::new(
                format!("x{j}"),
                (0..n).map(|_| fill_rng.next_f64()).collect(),
            )
        })
        .collect();
    let y: Vec<f64> = (0..n).map(|_| fill_rng.next_f64()).collect();
    c.bench_function("ols_fit_3270x12", |b| {
        b.iter(|| ols::fit(black_box(&cols), black_box(&y)).unwrap())
    });

    // Axelrod round-robin with the classic field.
    let tconfig = TournamentConfig {
        repetitions: 1,
        ..TournamentConfig::default()
    };
    c.bench_function("axelrod_classic_field", |b| {
        let game = prisoners_dilemma();
        b.iter(|| round_robin(black_box(&game), classic_field, black_box(&tconfig)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
