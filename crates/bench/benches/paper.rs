//! One Criterion benchmark per paper artifact (table/figure), exercising
//! the exact code path that regenerates it, at smoke scale.
//!
//! These benches are about keeping every reproduction path healthy and
//! measurable — the recorded scientific outputs come from the
//! `experiments` binary at `--scale lab` (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_bench::figures;
use dsa_bench::nashdemo;
use dsa_bench::regress;
use dsa_bench::sweep::SweepData;
use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::experiment::{homogeneous_runs, mixed_runs};
use dsa_core::pra::{quantify, PraConfig};
use dsa_core::results::PraResults;
use dsa_core::tournament::OpponentSampling;
use dsa_gametheory::classes::ClassParams;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::engine::SimConfig;
use dsa_swarm::protocol::SwarmProtocol;
use dsa_workloads::bandwidth::BandwidthDist;
use std::hint::black_box;

/// A structurally faithful synthetic sweep (real protocol list, fabricated
/// measures) so the figure-analysis paths can be benched without paying
/// for simulation.
fn synthetic_sweep() -> SweepData {
    let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
    let n = protocols.len();
    let perf_raw: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 96.0).collect();
    let perf = dsa_stats::describe::normalize_by_max(&perf_raw);
    let rob: Vec<f64> = (0..n).map(|i| (i % 89) as f64 / 88.0).collect();
    let agg: Vec<f64> = rob.iter().map(|r| (r * 0.9 + 0.05).min(1.0)).collect();
    SweepData {
        protocols,
        results: PraResults::new(perf_raw, perf, rob, agg),
        scale_name: "bench".into(),
    }
}

fn micro_pra_config() -> PraConfig {
    PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(4),
        threads: 1,
        seed: 0xBE,
        ..PraConfig::default()
    }
}

fn micro_sim() -> SwarmSim {
    SwarmSim {
        config: SimConfig {
            peers: 30,
            rounds: 40,
            bandwidth: BandwidthDist::Piatek,
            ..SimConfig::default()
        },
    }
}

fn bt_bench_config() -> BtConfig {
    BtConfig {
        bandwidth: BandwidthDist::Constant(32.0),
        ..BtConfig::tiny()
    }
}

fn bench_paper(c: &mut Criterion) {
    let params = ClassParams::example_swarm();

    c.bench_function("fig1_payoff_matrices", |b| {
        b.iter(|| nashdemo::fig1(black_box(10.0), black_box(4.0)))
    });
    c.bench_function("table1_class_analytics", |b| {
        b.iter(|| nashdemo::table1(black_box(&params)))
    });
    c.bench_function("appendix_nash_deviations", |b| {
        b.iter(|| nashdemo::nash_analysis(black_box(&params)))
    });

    // fig2's compute path: a PRA quantification over a protocol subset.
    let sim = micro_sim();
    let subset: Vec<SwarmProtocol> = (0..16)
        .map(|i| SwarmProtocol::from_index(i * 193 % dsa_swarm::protocol::SPACE_SIZE))
        .collect();
    let cfg = micro_pra_config();
    c.bench_function("fig2_pra_micro_sweep", |b| {
        b.iter(|| quantify(black_box(&sim), black_box(&subset), black_box(&cfg)))
    });

    // The analysis/rendering path of every sweep figure.
    let sweep = synthetic_sweep();
    c.bench_function("fig2_scatter_render", |b| {
        b.iter(|| figures::fig2(black_box(&sweep)))
    });
    c.bench_function("fig3_partner_histogram", |b| {
        b.iter(|| figures::fig3_fig4(black_box(&sweep), false))
    });
    c.bench_function("fig4_partner_histogram", |b| {
        b.iter(|| figures::fig3_fig4(black_box(&sweep), true))
    });
    c.bench_function("fig5_stranger_ccdf", |b| {
        b.iter(|| figures::fig5(black_box(&sweep)))
    });
    c.bench_function("fig6_allocation_groups", |b| {
        b.iter(|| figures::fig6_fig7(black_box(&sweep), false))
    });
    c.bench_function("fig7_ranking_groups", |b| {
        b.iter(|| figures::fig6_fig7(black_box(&sweep), true))
    });
    c.bench_function("fig8_robustness_aggressiveness", |b| {
        b.iter(|| figures::fig8(black_box(&sweep)))
    });
    c.bench_function("table3_regression", |b| {
        b.iter(|| regress::table3(black_box(&sweep)))
    });
    c.bench_function("birds_placement", |b| {
        b.iter(|| figures::birds_placement(black_box(&sweep)))
    });

    // Figures 9–10: the piece-level validation paths.
    let bt_cfg = bt_bench_config();
    c.bench_function("fig9_mixed_swarm_encounter", |b| {
        b.iter(|| {
            mixed_runs(
                ClientKind::Birds,
                ClientKind::BitTorrent,
                0.5,
                1,
                black_box(&bt_cfg),
                9,
            )
        })
    });
    c.bench_function("fig10_homogeneous_swarm", |b| {
        b.iter(|| homogeneous_runs(ClientKind::SortS, 1, black_box(&bt_cfg), 10))
    });

    // The gossip-domain demonstration.
    c.bench_function("gossip_homogeneous_run", |b| {
        let sim = dsa_gossip::engine::GossipSim::default();
        let p = dsa_gossip::protocol::GossipProtocol::baseline();
        b.iter(|| dsa_core::sim::EncounterSim::run_homogeneous(black_box(&sim), black_box(&p), 11))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_paper
}
criterion_main!(benches);
