//! Arena accounting: `Scratch::footprint()` across the four engines.
//!
//! The contract: a fresh arena reports (near-)zero, a warm arena reports
//! the heap bytes its buffers hold, reuse never shrinks it (capacities
//! are retained by design — that is the zero-allocation contract), a
//! larger population costs more, and the same workload through two fresh
//! arenas reports identical bytes (footprint is a function of the work,
//! not of history). The last test checks the surfaced gauge:
//! `mem.arena_peak_bytes` recorded during a sweep of identical tasks is
//! bit-identical on 1 and 8 threads — every worker's scratch grows to
//! the same high-water mark, so the max is scheduling-independent.
//!
//! All tests share the process-global obs registries, so each takes the
//! file lock even when it never enables metrics: an engine run racing
//! the gauge test between its `reset` and `snapshot` would pollute the
//! max.

use std::sync::Mutex;

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::swarm::{simulate_with_scratch, BtScratch};
use dsa_gossip::engine::{GossipConfig, GossipScratch};
use dsa_gossip::protocol::GossipProtocol;
use dsa_reputation::engine::{RepConfig, RepScratch};
use dsa_swarm::engine::{run_with_scratch, SimConfig, SwarmScratch};
use dsa_swarm::presets;
use dsa_workloads::bandwidth::BandwidthDist;

static LOCK: Mutex<()> = Mutex::new(());

/// Asserts the footprint contract for one engine, abstracted over how a
/// run is driven: `run(scratch, peers, seed)`.
fn assert_footprint_contract<S, F>(
    mut fresh: impl FnMut() -> S,
    mut run: F,
    fp: impl Fn(&S) -> usize,
) where
    F: FnMut(&mut S, usize, u64),
{
    let mut scratch = fresh();
    let start = fp(&scratch);

    run(&mut scratch, 12, 7);
    let after_small = fp(&scratch);
    assert!(after_small > start, "first run must grow the arena");

    // Reuse at the same shape: monotone (capacities are never released).
    run(&mut scratch, 12, 8);
    let after_reuse = fp(&scratch);
    assert!(after_reuse >= after_small, "{after_reuse} < {after_small}");

    // A larger population costs more bytes.
    run(&mut scratch, 40, 7);
    let after_big = fp(&scratch);
    assert!(after_big > after_reuse, "{after_big} <= {after_reuse}");

    // Shrinking the workload does not shrink the arena.
    run(&mut scratch, 12, 9);
    assert!(fp(&scratch) >= after_big);

    // Footprint is a function of the work: two fresh arenas running the
    // identical workload report identical bytes.
    let (mut a, mut b) = (fresh(), fresh());
    run(&mut a, 20, 11);
    run(&mut b, 20, 11);
    assert_eq!(fp(&a), fp(&b));
}

#[test]
fn swarm_footprint_contract() {
    let _guard = LOCK.lock().unwrap();
    let protos = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    assert_footprint_contract(
        SwarmScratch::default,
        |scratch, peers, seed| {
            let cfg = SimConfig {
                peers,
                rounds: 30,
                ..SimConfig::default()
            };
            let assignment: Vec<usize> = (0..peers).map(|i| i % protos.len()).collect();
            run_with_scratch(&protos, &assignment, &cfg, seed, scratch);
        },
        SwarmScratch::footprint,
    );
}

#[test]
fn gossip_footprint_contract() {
    let _guard = LOCK.lock().unwrap();
    let protos: Vec<GossipProtocol> = GossipProtocol::all().take(3).collect();
    assert_footprint_contract(
        GossipScratch::default,
        |scratch, nodes, seed| {
            let cfg = GossipConfig {
                nodes,
                rounds: 24,
                ..GossipConfig::default()
            };
            let assignment: Vec<usize> = (0..nodes).map(|i| i % protos.len()).collect();
            dsa_gossip::engine::run_with_scratch(&protos, &assignment, &cfg, seed, scratch);
        },
        GossipScratch::footprint,
    );
}

#[test]
fn rep_footprint_contract() {
    let _guard = LOCK.lock().unwrap();
    let protos = [
        dsa_reputation::presets::bartercast(),
        dsa_reputation::presets::eigentrust(),
        dsa_reputation::presets::freerider(),
    ];
    assert_footprint_contract(
        RepScratch::default,
        |scratch, peers, seed| {
            let cfg = RepConfig {
                peers,
                rounds: 24,
                ..RepConfig::default()
            };
            let assignment: Vec<usize> = (0..peers).map(|i| i % protos.len()).collect();
            dsa_reputation::engine::run_with_scratch(&protos, &assignment, &cfg, seed, scratch);
        },
        RepScratch::footprint,
    );
}

#[test]
fn btsim_footprint_contract() {
    let _guard = LOCK.lock().unwrap();
    assert_footprint_contract(
        BtScratch::default,
        |scratch, leechers, seed| {
            let cfg = BtConfig {
                leechers,
                bandwidth: BandwidthDist::Constant(32.0),
                ..BtConfig::tiny()
            };
            let kinds = vec![ClientKind::BitTorrent; leechers];
            simulate_with_scratch(&kinds, &cfg, seed, scratch);
        },
        BtScratch::footprint,
    );
}

#[test]
fn arena_peak_gauge_is_thread_count_invariant() {
    let _guard = LOCK.lock().unwrap();
    let protos = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    let cfg = SimConfig {
        peers: 16,
        rounds: 20,
        ..SimConfig::default()
    };
    let assignment: Vec<usize> = (0..cfg.peers).map(|i| i % protos.len()).collect();

    // A sweep of identical tasks: every worker's arena grows to the same
    // high-water mark, so gauge_max lands on the same bytes no matter
    // how tasks are partitioned across workers.
    let sweep = |threads: usize| -> (f64, f64) {
        dsa_obs::reset();
        dsa_obs::enable_metrics();
        dsa_core::parallel::parallel_map_indexed_scratch(
            32,
            threads,
            SwarmScratch::default,
            |scratch, _i| run_with_scratch(&protos, &assignment, &cfg, 7, scratch).throughput,
        );
        let snap = dsa_obs::snapshot();
        dsa_obs::disable();
        (
            snap.gauges["mem.arena_peak_bytes"],
            snap.gauges["mem.arena.swarm_bytes"],
        )
    };

    let one = sweep(1);
    let eight = sweep(8);
    assert!(one.0 > 0.0, "peak gauge must record real bytes");
    assert!(
        one.1 > 0.0 && one.1 <= one.0,
        "engine gauge bounds the peak"
    );
    assert_eq!(one, eight, "arena peak must not depend on thread count");
}
