//! Proof of the engines' zero-allocation steady state (run with
//! `--features count-allocs`).
//!
//! Method: with the counting global allocator installed, a run of `R`
//! rounds and a run of `2R` rounds through a warm thread-local scratch
//! must perform *exactly the same* number of allocations. Whatever fixed
//! setup/output allocations a run makes (the returned utility vector,
//! protocol slices) appear in both counts; any per-round allocation
//! would make the longer run strictly larger. Doubling the horizon makes
//! the check robust without hard-coding an allocation budget.
//!
//! Both populations are mixed (three protocols) so the checks exercise
//! the branchy decision paths, not just the homogeneous fast paths.
#![cfg(feature = "count-allocs")]

use dsa_bench::alloc_counter::thread_allocations;

fn allocs_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = thread_allocations();
    let out = f();
    let after = thread_allocations();
    drop(out);
    after - before
}

#[test]
fn swarm_round_loop_is_allocation_free() {
    use dsa_swarm::engine::{run, SimConfig};
    use dsa_swarm::presets;

    let protocols = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    let short = SimConfig {
        rounds: 100,
        ..SimConfig::default()
    };
    let long = SimConfig {
        rounds: 200,
        ..SimConfig::default()
    };
    let assignment: Vec<usize> = (0..short.peers).map(|i| i % protocols.len()).collect();

    // Warm the thread-local scratch at both shapes.
    run(&protocols, &assignment, &long, 7);
    run(&protocols, &assignment, &short, 7);

    let allocs_short = allocs_during(|| run(&protocols, &assignment, &short, 7));
    let allocs_long = allocs_during(|| run(&protocols, &assignment, &long, 7));
    assert_eq!(
        allocs_short, allocs_long,
        "swarm run allocations grew with the round count: \
         {allocs_short} for 100 rounds vs {allocs_long} for 200"
    );
}

#[test]
fn swarm_footprint_matches_counted_live_bytes() {
    use dsa_swarm::engine::{run_with_scratch, SimConfig, SwarmScratch};
    use dsa_swarm::presets;

    let protos = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    let cfg = SimConfig {
        peers: 24,
        rounds: 60,
        ..SimConfig::default()
    };
    let assignment: Vec<usize> = (0..cfg.peers).map(|i| i % protos.len()).collect();

    // Warm-up through a throwaway arena so one-time lazy initializations
    // (span machinery, thread-locals) do not land inside the window.
    run_with_scratch(&protos, &assignment, &cfg, 7, &mut SwarmScratch::default());

    let before = dsa_obs::alloc::thread_live_bytes();
    let mut scratch = SwarmScratch::default();
    let out = run_with_scratch(&protos, &assignment, &cfg, 7, &mut scratch);
    drop(out);
    let live = dsa_obs::alloc::thread_live_bytes() - before;
    let fp = i64::try_from(scratch.footprint()).unwrap();

    // With the run's outputs dropped, what is still live on this thread
    // is the arena. `footprint()` walks declared buffers, so it can only
    // miss bytes, never invent them — it must lower-bound the counted
    // live bytes and account for nearly all of them.
    assert!(fp > 0, "warm arena must report a footprint");
    assert!(
        fp <= live,
        "footprint {fp} exceeds counted live bytes {live}"
    );
    assert!(
        live - fp <= live / 8 + 1024,
        "footprint {fp} misses too much of the {live} live bytes: \
         a scratch buffer is not counted"
    );
}

#[test]
fn rep_round_loop_is_allocation_free() {
    use dsa_reputation::engine::{run, RepConfig};
    use dsa_reputation::presets;

    let protocols = [
        presets::bartercast(),
        presets::eigentrust(),
        presets::freerider(),
    ];
    let short = RepConfig {
        rounds: 80,
        ..RepConfig::default()
    };
    let long = RepConfig {
        rounds: 160,
        ..RepConfig::default()
    };
    let assignment: Vec<usize> = (0..short.peers).map(|i| i % protocols.len()).collect();

    run(&protocols, &assignment, &long, 7);
    run(&protocols, &assignment, &short, 7);

    let allocs_short = allocs_during(|| run(&protocols, &assignment, &short, 7));
    let allocs_long = allocs_during(|| run(&protocols, &assignment, &long, 7));
    assert_eq!(
        allocs_short, allocs_long,
        "reputation run allocations grew with the round count: \
         {allocs_short} for 80 rounds vs {allocs_long} for 160"
    );
}
